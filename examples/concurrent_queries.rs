//! Serving concurrent queries from one shared venue.
//!
//! Builds a synthetic mall floor, wraps it in one `Arc<ItGraph>`, and stands
//! up a [`VenueServer`]: a worker pool answering query batches over the
//! shared ITG/A reduced-graph cache. Demonstrates that the batch answers are
//! identical to single-threaded ITG/S and that the cache is built once,
//! server-wide.
//!
//! ```sh
//! cargo run --release --example concurrent_queries
//! ```

use itspq_repro::core::server::VenueServer;
use itspq_repro::prelude::*;
use itspq_repro::synthetic::{
    build_mall, generate_queries, HoursConfig, MallConfig, QueryGenConfig, ShopHours,
};

fn main() {
    // One venue, built once, shared by everything below.
    let hours = ShopHours::sample(&HoursConfig::default().with_t_size(8));
    let graph = ItGraph::shared(build_mall(&MallConfig::single_floor(), &hours));
    let stats = graph.space().stats();
    println!(
        "venue: {} partitions, {} doors, {} checkpoint intervals",
        stats.partitions,
        stats.doors,
        graph.space().checkpoints().len()
    );

    // A morning-to-night traffic mix of 64 queries.
    let mut batch = Vec::new();
    for (i, (h, m)) in [(8, 50), (12, 0), (19, 30), (22, 40)]
        .into_iter()
        .enumerate()
    {
        batch.extend(
            generate_queries(
                &graph,
                &QueryGenConfig::default()
                    .with_count(16)
                    .with_delta(600.0)
                    .with_time(TimeOfDay::hm(h, m))
                    .with_seed(7 + i as u64),
            )
            .into_iter()
            .map(|g| g.query),
        );
    }

    // The server: 4 workers over one Arc<ItGraph>. `warm()` precomputes the
    // reduced graph of every checkpoint interval up front.
    let server = VenueServer::new(graph.clone()).with_workers(4);
    server.warm();
    println!(
        "server: {} workers, {} reduced views cached ({} KB)",
        server.workers(),
        server.cached_views(),
        server.cache_bytes() / 1024
    );

    let t0 = std::time::Instant::now();
    let answers = server.query_batch(&batch);
    let elapsed = t0.elapsed();
    let routed = answers.iter().filter(|r| r.path.is_some()).count();
    println!(
        "batch: {} queries in {:.2} ms ({:.0} queries/s), {} routed",
        batch.len(),
        elapsed.as_secs_f64() * 1e3,
        batch.len() as f64 / elapsed.as_secs_f64(),
        routed
    );

    // Every answer agrees with single-threaded ITG/S on the same graph.
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    let agreeing = batch
        .iter()
        .zip(&answers)
        .filter(|(q, a)| syn.query(q).path.map(|p| p.length) == a.path.as_ref().map(|p| p.length))
        .count();
    println!(
        "agreement with single-threaded ITG/S: {agreeing}/{} answers",
        batch.len()
    );
    assert_eq!(agreeing, batch.len());

    // The warmed cache meant no worker built a view mid-batch.
    assert!(answers.iter().all(|r| r.stats.views_built == 0));
    println!("reduced-graph views built during the batch: 0 (cache was warm)");
}
