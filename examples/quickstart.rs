//! Quickstart: build a small venue by hand, ask for temporal-aware shortest
//! paths, and inspect the answers.
//!
//! Run with: `cargo run --example quickstart`

use itspq_repro::prelude::*;
use itspq_repro::space::Connection;

fn main() {
    // A minimal office floor: two rooms joined by a hallway, plus a private
    // archive reachable only from the hallway during office hours.
    //
    //   [room A] --a-- [hallway] --b-- [room B]
    //                     |
    //                     c (9:00-17:00)
    //                 [archive]  (private)
    let mut b = VenueBuilder::new();
    let room_a = b.add_partition("room A", PartitionKind::Public);
    let hallway = b.add_partition("hallway", PartitionKind::Public);
    let room_b = b.add_partition("room B", PartitionKind::Public);
    let archive = b.add_partition("archive", PartitionKind::Private);

    let door_a = b.add_door(
        "a",
        DoorKind::Public,
        AtiList::hm(&[((7, 0), (20, 0))]),
        itspq_repro::geom::Point::new(0.0, 0.0),
    );
    let door_b = b.add_door(
        "b",
        DoorKind::Public,
        AtiList::hm(&[((7, 0), (20, 0))]),
        itspq_repro::geom::Point::new(10.0, 0.0),
    );
    let door_c = b.add_door(
        "c",
        DoorKind::Private,
        AtiList::hm(&[((9, 0), (17, 0))]),
        itspq_repro::geom::Point::new(5.0, -4.0),
    );
    b.connect(door_a, Connection::TwoWay(room_a, hallway))
        .unwrap();
    b.connect(door_b, Connection::TwoWay(hallway, room_b))
        .unwrap();
    b.connect(door_c, Connection::TwoWay(hallway, archive))
        .unwrap();
    let space = b.build().unwrap();
    println!("venue: {}", space.stats());

    // Wrap the venue in the paper's IT-Graph — `shared` returns an
    // `Arc<ItGraph>`, so every engine below references one venue allocation —
    // and build the ITG/S engine.
    let graph = ItGraph::shared(space);
    let engine = SynEngine::new(graph.clone(), ItspqConfig::default());

    // Query 1: room A -> room B at 10:00 — straightforward.
    let ps = IndoorPoint::new(room_a, itspq_repro::geom::Point::new(-3.0, 0.0));
    let pt = IndoorPoint::new(room_b, itspq_repro::geom::Point::new(13.0, 0.0));
    let q = Query::new(ps, pt, TimeOfDay::hm(10, 0));
    let result = engine.query(&q);
    let path = result.path.expect("open at 10:00");
    println!(
        "10:00  {}  length {:.1} m, duration {}, stats: {}",
        path.format_with(graph.space()),
        path.length,
        path.duration(),
        result.stats
    );

    // Query 2: into the private archive — legal because pt lies there.
    let arch_pt = IndoorPoint::new(archive, itspq_repro::geom::Point::new(5.0, -6.0));
    let q = Query::new(ps, arch_pt, TimeOfDay::hm(10, 0));
    println!(
        "10:00 -> archive: {:?}",
        engine.query(&q).path.map(|p| p.format_with(graph.space()))
    );

    // Query 3: the archive door is closed at 18:00 — no route.
    let q = Query::new(ps, arch_pt, TimeOfDay::hm(18, 0));
    println!(
        "18:00 -> archive: {:?}",
        engine.query(&q).path.map(|p| p.length)
    );

    // ITG/A gives the same answers via reduced time-dependent graphs.
    let asyn = AsynEngine::new(graph.clone(), ItspqConfig::default());
    let q = Query::new(ps, pt, TimeOfDay::hm(10, 0));
    let a = asyn.query(&q);
    println!(
        "ITG/A agrees: {} (cached views: {})",
        a.path.map(|p| p.length).unwrap_or(f64::NAN),
        asyn.cached_views()
    );
}
