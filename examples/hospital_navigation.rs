//! Hospital navigation with visiting hours — the paper's motivating example
//! ("doors leading to patient wards in a hospital may only open during
//! visiting hours").
//!
//! A visitor at the entrance wants to reach a patient in Ward 2. Ward doors
//! open 10:00–12:00 and 14:00–19:00; the staff corridor is private and the
//! pharmacy closes at 18:00. We ask the same query across the day and also
//! demonstrate the waiting extension (arrive early, wait at the ward door).
//!
//! Run with: `cargo run --example hospital_navigation`

use itspq_repro::core::waiting::{earliest_arrival, WaitPolicy};
use itspq_repro::geom::Point;
use itspq_repro::prelude::*;
use itspq_repro::space::Connection;

fn build_hospital() -> (IndoorSpace, IndoorPoint, IndoorPoint) {
    let mut b = VenueBuilder::new();
    let lobby = b.add_partition("lobby", PartitionKind::Public);
    let corridor = b.add_partition("corridor", PartitionKind::Public);
    let staff = b.add_partition("staff corridor", PartitionKind::Private);
    let ward1 = b.add_partition("ward 1", PartitionKind::Public);
    let ward2 = b.add_partition("ward 2", PartitionKind::Public);
    let pharmacy = b.add_partition("pharmacy", PartitionKind::Public);

    let visiting = AtiList::hm(&[((10, 0), (12, 0)), ((14, 0), (19, 0))]);
    let always = AtiList::always_open();

    let main = b.add_door(
        "main",
        DoorKind::Public,
        always.clone(),
        Point::new(0.0, 0.0),
    );
    b.connect(main, Connection::TwoWay(lobby, corridor))
        .unwrap();

    let w1 = b.add_door(
        "ward1",
        DoorKind::Public,
        visiting.clone(),
        Point::new(20.0, 5.0),
    );
    b.connect(w1, Connection::TwoWay(corridor, ward1)).unwrap();

    let w2 = b.add_door("ward2", DoorKind::Public, visiting, Point::new(40.0, 5.0));
    b.connect(w2, Connection::TwoWay(corridor, ward2)).unwrap();

    // Staff corridor: a shortcut between the wards, private.
    let s1 = b.add_door(
        "staff1",
        DoorKind::Private,
        always.clone(),
        Point::new(22.0, 10.0),
    );
    b.connect(s1, Connection::TwoWay(ward1, staff)).unwrap();
    let s2 = b.add_door(
        "staff2",
        DoorKind::Private,
        always.clone(),
        Point::new(38.0, 10.0),
    );
    b.connect(s2, Connection::TwoWay(staff, ward2)).unwrap();

    let ph = b.add_door(
        "pharmacy",
        DoorKind::Public,
        AtiList::hm(&[((8, 0), (18, 0))]),
        Point::new(10.0, -5.0),
    );
    b.connect(ph, Connection::TwoWay(corridor, pharmacy))
        .unwrap();

    let space = b.build().unwrap();
    let visitor = IndoorPoint::new(lobby, Point::new(-5.0, 0.0));
    let patient = IndoorPoint::new(ward2, Point::new(42.0, 8.0));
    (space, visitor, patient)
}

fn main() {
    let (space, visitor, patient) = build_hospital();
    println!("hospital: {}\n", space.stats());
    let graph = ItGraph::new(space);
    let engine = SynEngine::new(graph.clone(), ItspqConfig::default());

    println!("visitor -> ward 2 across the day (no waiting, paper semantics):");
    for hour in [8, 10, 13, 15, 19] {
        let q = Query::new(visitor, patient, TimeOfDay::hm(hour, 0));
        match engine.query(&q).path {
            Some(p) => println!(
                "  {:>5}  {}  ({:.1} m, arrive {})",
                q.time,
                p.format_with(graph.space()),
                p.length,
                p.arrival
            ),
            None => println!("  {:>5}  no such routes (ward doors closed)", q.time),
        }
    }

    // The staff shortcut is never used even when it would be shorter: rule 2.
    let ward1_pt = IndoorPoint::new(graph.space().partitions()[3].id, Point::new(22.0, 8.0));
    let q = Query::new(ward1_pt, patient, TimeOfDay::hm(15, 0));
    let p = engine.query(&q).path.unwrap();
    println!(
        "\nward 1 -> ward 2 at 15:00 goes around, not through the staff \
         corridor: {}",
        p.format_with(graph.space())
    );

    // Waiting extension: arriving at 9:30, a visitor may wait at the ward
    // door until visiting hours start at 10:00.
    let q = Query::new(visitor, patient, TimeOfDay::hm(9, 30));
    assert!(engine.query(&q).path.is_none());
    let timed = earliest_arrival(&graph, &q, &ItspqConfig::default(), WaitPolicy::Unlimited)
        .expect("waiting makes the ward reachable");
    println!(
        "\n9:30 with waiting: arrive {} after waiting {} (walk {:.1} m)",
        timed.arrival, timed.total_wait, timed.walking_distance
    );
    for hop in &timed.hops {
        println!(
            "   door {:>9} reached {} crossed {} (waited {})",
            graph.space().door(hop.door).name,
            hop.reached,
            hop.crossed,
            hop.waited
        );
    }
}
