//! Airport routing with one-way security doors and gate closing times.
//!
//! Exercises the two features that make indoor topology *directed* and
//! *time-dependent*: security lanes are one-way doors (landside → airside
//! only), a private baggage-handling corridor is a forbidden shortcut
//! (rule 2), and gates close at their boarding end times (rule 1).
//!
//! Run with: `cargo run --example airport_security`

use itspq_repro::geom::Point;
use itspq_repro::prelude::*;
use itspq_repro::space::Connection;

fn main() {
    let mut b = VenueBuilder::new();
    let landside = b.add_partition("landside hall", PartitionKind::Public);
    let security = b.add_partition("security lanes", PartitionKind::Public);
    let baggage = b.add_partition("baggage handling", PartitionKind::Private);
    let airside = b.add_partition("airside concourse", PartitionKind::Public);
    let gate_a = b.add_partition("gate A", PartitionKind::Public);
    let gate_b = b.add_partition("gate B", PartitionKind::Public);

    // Security lane: one-way landside -> lanes -> airside, open 4:00-22:00.
    let lane_hours = AtiList::hm(&[((4, 0), (22, 0))]);
    let lane_in = b.add_door(
        "security-in",
        DoorKind::Public,
        lane_hours.clone(),
        Point::new(50.0, 0.0),
    );
    b.connect(
        lane_in,
        Connection::OneWay {
            from: landside,
            to: security,
        },
    )
    .unwrap();
    let lane_out = b.add_door(
        "security-out",
        DoorKind::Public,
        lane_hours,
        Point::new(70.0, 0.0),
    );
    b.connect(
        lane_out,
        Connection::OneWay {
            from: security,
            to: airside,
        },
    )
    .unwrap();

    // Baggage handling: a *much* shorter private corridor between landside
    // and airside. Staff only — rule 2 must keep passengers out.
    let bag_in = b.add_door(
        "baggage-in",
        DoorKind::Private,
        AtiList::always_open(),
        Point::new(30.0, -20.0),
    );
    b.connect(bag_in, Connection::TwoWay(landside, baggage))
        .unwrap();
    let bag_out = b.add_door(
        "baggage-out",
        DoorKind::Private,
        AtiList::always_open(),
        Point::new(40.0, -20.0),
    );
    b.connect(bag_out, Connection::TwoWay(baggage, airside))
        .unwrap();

    // Exit corridor: one-way airside -> landside, always open.
    let exit = b.add_door(
        "exit",
        DoorKind::Public,
        AtiList::always_open(),
        Point::new(60.0, 30.0),
    );
    b.connect(
        exit,
        Connection::OneWay {
            from: airside,
            to: landside,
        },
    )
    .unwrap();

    // Gates: close at boarding end.
    let ga = b.add_door(
        "gateA",
        DoorKind::Public,
        AtiList::hm(&[((6, 0), (9, 30))]),
        Point::new(100.0, 10.0),
    );
    b.connect(ga, Connection::TwoWay(airside, gate_a)).unwrap();
    let gb = b.add_door(
        "gateB",
        DoorKind::Public,
        AtiList::hm(&[((6, 0), (18, 15))]),
        Point::new(100.0, -10.0),
    );
    b.connect(gb, Connection::TwoWay(airside, gate_b)).unwrap();

    let space = b.build().unwrap();
    println!("airport: {}\n", space.stats());
    let graph = ItGraph::new(space);
    let engine = SynEngine::new(graph.clone(), ItspqConfig::default());

    let kerb = IndoorPoint::new(landside, Point::new(0.0, 0.0));
    let seat_a = IndoorPoint::new(gate_a, Point::new(104.0, 10.0));
    let seat_b = IndoorPoint::new(gate_b, Point::new(104.0, -10.0));

    // Rule 1 at work: the walk to gate A takes ~2 minutes; asking close to
    // the 9:30 boarding end flips the answer to "no such routes".
    println!("kerb -> gate A (boarding ends 9:30; the walk takes ~2 min):");
    for (h, m) in [(7, 0), (9, 26), (9, 29)] {
        let q = Query::new(kerb, seat_a, TimeOfDay::hm(h, m));
        match engine.query(&q).path {
            Some(p) => println!(
                "  {:>5}  {} ({:.0} m, arrive {})",
                q.time,
                p.format_with(graph.space()),
                p.length,
                p.arrival
            ),
            None => println!(
                "  {:>5}  no such routes — the gate closes before you reach it",
                q.time
            ),
        }
    }

    // Rule 2 at work: the baggage corridor would be ~60 m shorter but is
    // private; the path must queue through security.
    let q = Query::new(kerb, seat_b, TimeOfDay::hm(12, 0));
    let p = engine.query(&q).path.expect("security lanes are open");
    println!(
        "\nkerb -> gate B at 12:00: {} ({:.0} m)",
        p.format_with(graph.space()),
        p.length
    );
    assert!(
        p.doors().all(|d| d != bag_in && d != bag_out),
        "the private baggage corridor must never be traversed"
    );

    // Directionality: from airside back to landside the path must use the
    // exit corridor, never the security lane in reverse.
    println!("\ngate B -> kerb (deplaning at 12:00):");
    let q = Query::new(seat_b, kerb, TimeOfDay::hm(12, 0));
    let p = engine.query(&q).path.expect("exit corridor is open");
    println!("  {}", p.format_with(graph.space()));
    assert!(
        p.doors().all(|d| d != lane_in && d != lane_out),
        "one-way security doors must not be crossed in reverse"
    );

    // Endpoints inside private partitions are exempt from rule 2: a handler
    // standing in baggage handling is reachable (through a private door).
    let handler = IndoorPoint::new(baggage, Point::new(35.0, -22.0));
    let q = Query::new(kerb, handler, TimeOfDay::hm(12, 0));
    let p = engine
        .query(&q)
        .path
        .expect("endpoint inside a private zone is allowed");
    println!(
        "\nkerb -> baggage handler: {} ({:.0} m)",
        p.format_with(graph.space()),
        p.length
    );
}
