//! A day in the synthetic mall: the paper's evaluation venue end-to-end.
//!
//! Builds the default five-floor mall (705 partitions / 1120 doors), sweeps a
//! fixed query across the day with ITG/S and ITG/A, and shows why a
//! temporal-oblivious snapshot router is unsafe.
//!
//! Run with: `cargo run --release --example mall_day`

use itspq_repro::core::baselines;
use itspq_repro::core::validate_path;
use itspq_repro::prelude::*;
use itspq_repro::synthetic::{
    build_mall, generate_queries, HoursConfig, MallConfig, QueryGenConfig, ShopHours,
};

fn main() {
    let hours = ShopHours::sample(&HoursConfig::paper_default());
    let space = build_mall(&MallConfig::paper_default(), &hours);
    println!("mall: {}", space.stats());
    println!("checkpoints: {}\n", space.checkpoints());

    // One Arc-shared graph: both engines reference the same venue.
    let graph = ItGraph::shared(space);
    let config = ItspqConfig::default();
    let syn = SynEngine::new(graph.clone(), config);
    let asyn = AsynEngine::new(graph.clone(), config);

    // One fixed 1500 m query pair, asked every two hours.
    let q0 = generate_queries(&graph, &QueryGenConfig::default().with_count(1))[0].query;
    println!(
        "query: {} -> {} (≈1500 m)\n",
        graph.space().partition(q0.source.partition).name,
        graph.space().partition(q0.target.partition).name
    );
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>14} {:>12}",
        "t", "ITG/S (m)", "ITG/A (m)", "doors", "tv-rejects", "graph-upd"
    );
    for hour in (0..=22).step_by(2) {
        let q = Query::new(q0.source, q0.target, TimeOfDay::hm(hour, 0));
        let s = syn.query(&q);
        let a = asyn.query(&q);
        let fmt = |p: &Option<Path>| {
            p.as_ref()
                .map_or_else(|| "   no route".into(), |p| format!("{:>11.1}", p.length))
        };
        println!(
            "{:>6} {:>12} {:>12} {:>10} {:>14} {:>12}",
            q.time,
            fmt(&s.path),
            fmt(&a.path),
            s.stats.doors_settled,
            s.stats.tv_rejections,
            a.stats.graph_updates,
        );
        // Every returned path passes the independent rule validator.
        if let Some(p) = &s.path {
            validate_path(graph.space(), p, q.time, config.velocity).unwrap();
        }
    }

    // The snapshot baseline freezes door states at departure. Ask it just
    // before closing time and check its answer against the true semantics.
    println!("\nsnapshot-vs-ITSPQ near closing time:");
    let mut shown = 0;
    'outer: for hour in [19u32, 20, 21] {
        for minute in [45u32, 50, 55] {
            let q = Query::new(q0.source, q0.target, TimeOfDay::hm(hour, minute));
            let snap = baselines::snapshot_shortest_path(&graph, &q, &config);
            if let Some(p) = snap.path {
                let verdict = validate_path(graph.space(), &p, q.time, config.velocity);
                if let Err(v) = verdict {
                    println!(
                        "  {}: snapshot suggests a {:.0} m path that is INVALID: {}",
                        q.time, p.length, v
                    );
                    let real = syn.query(&q);
                    match real.path {
                        Some(rp) => println!(
                            "         ITSPQ instead returns a valid {:.0} m path",
                            rp.length
                        ),
                        None => println!("         ITSPQ correctly answers: no such routes"),
                    }
                    shown += 1;
                    if shown >= 3 {
                        break 'outer;
                    }
                }
            }
        }
    }
    if shown == 0 {
        println!("  (no divergence for this pair today — try another seed)");
    }
}
