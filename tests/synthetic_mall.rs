//! Integration tests over the synthetic evaluation venue: generator
//! statistics, multi-floor routing, query generation and engine agreement at
//! scale.

use itspq_repro::core::{validate_path, AsynMode};
use itspq_repro::prelude::*;
use itspq_repro::synthetic::{
    build_mall, generate_queries, HoursConfig, MallConfig, QueryGenConfig, ShopHours,
};

fn paper_graph(t_size: usize) -> ItGraph {
    let hours = ShopHours::sample(&HoursConfig::default().with_t_size(t_size));
    ItGraph::new(build_mall(&MallConfig::paper_default(), &hours))
}

#[test]
fn default_venue_matches_paper_statistics() {
    let graph = paper_graph(8);
    let stats = graph.space().stats();
    assert_eq!(stats.partitions, 705);
    assert_eq!(stats.doors, 1120);
    assert_eq!(stats.floors, 5);
    // |T| = 8 plus the implicit midnight.
    assert_eq!(stats.checkpoints, 9);
}

#[test]
fn every_t_size_yields_expected_checkpoints() {
    for t in [4usize, 8, 12, 16] {
        let graph = paper_graph(t);
        assert_eq!(
            graph.space().checkpoints().len(),
            t + 1,
            "|T| = {t} plus midnight"
        );
    }
}

#[test]
fn noon_routing_works_and_validates_at_scale() {
    let graph = paper_graph(8);
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    let asyn = AsynEngine::new(graph.clone(), ItspqConfig::default());
    let queries = generate_queries(&graph, &QueryGenConfig::default().with_count(5));
    assert_eq!(queries.len(), 5);
    let mut found = 0;
    for gq in &queries {
        let s = syn.query(&gq.query);
        let a = asyn.query(&gq.query);
        assert_eq!(
            s.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
            a.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
            "ITG/S and ITG/A disagree at noon"
        );
        if let Some(p) = &s.path {
            found += 1;
            validate_path(graph.space(), p, gq.query.time, WALKING_SPEED).unwrap();
            // ITSPQ length can exceed the temporal-oblivious distance but
            // never undercut it.
            assert!(p.length >= gq.realised_distance - 1e-6);
        }
    }
    assert!(
        found >= 4,
        "almost all noon queries should route, got {found}/5"
    );
}

#[test]
fn cross_floor_routes_use_stairs() {
    let graph = paper_graph(8);
    let space = graph.space();
    // A point on floor 0 and one directly above on floor 4.
    let f0 = space
        .partitions()
        .iter()
        .find(|p| p.name == "F0/hall(0,0)")
        .unwrap();
    let f4 = space
        .partitions()
        .iter()
        .find(|p| p.name == "F4/hall(0,0)")
        .unwrap();
    let a = IndoorPoint::new(f0.id, f0.polygon.as_ref().unwrap().centroid());
    let b = IndoorPoint::new(f4.id, f4.polygon.as_ref().unwrap().centroid());
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    let q = Query::new(a, b, TimeOfDay::hm(12, 0));
    let path = syn.query(&q).path.expect("floors are connected");
    validate_path(space, &path, q.time, WALKING_SPEED).unwrap();
    // The route crosses at least 4 stair doors (one per floor transition) and
    // its length includes 4 × 20 m of stairways.
    // 4 up-doors (one per transition) plus entry/exit lobby doors.
    let up_hops = path
        .hops
        .iter()
        .filter(|h| space.door(h.door).name.ends_with("/up"))
        .count();
    assert_eq!(up_hops, 4, "4 floor transitions need 4 up-door hops");
    let lobby_hops = path
        .hops
        .iter()
        .filter(|h| space.door(h.door).name.ends_with("/door"))
        .count();
    assert!(lobby_hops >= 2, "must enter and leave the stairwell");
    // Half flight + 3 full flights + half flight = 80 m of stairway.
    assert!(path.length >= 4.0 * 20.0);
}

#[test]
fn night_shop_queries_fail_fast() {
    let graph = paper_graph(8);
    let space = graph.space();
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    // Two shops on different floors: both closed at 2:00.
    let s1 = space
        .partitions()
        .iter()
        .find(|p| p.name == "F0/shop(0,0)#0")
        .unwrap();
    let s2 = space
        .partitions()
        .iter()
        .find(|p| p.name == "F4/shop(2,2)#3")
        .unwrap();
    let a = IndoorPoint::new(s1.id, s1.polygon.as_ref().unwrap().centroid());
    let b = IndoorPoint::new(s2.id, s2.polygon.as_ref().unwrap().centroid());
    let q = Query::new(a, b, TimeOfDay::hm(2, 0));
    let res = syn.query(&q);
    // The shop's own doors are closed: the search dies at the source.
    assert!(res.path.is_none());
    assert_eq!(res.stats.doors_settled, 0, "source doors closed at 2:00");
    assert!(res.stats.tv_rejections >= 1);
    // The same pair routes fine at noon.
    let noon = syn.query(&Query::new(a, b, TimeOfDay::hm(12, 0)));
    assert!(noon.path.is_some());
}

#[test]
fn hallway_to_hallway_routes_exist_even_at_night() {
    let graph = paper_graph(8);
    let space = graph.space();
    let h1 = space
        .partitions()
        .iter()
        .find(|p| p.name == "F0/hall(0,0)")
        .unwrap();
    let h2 = space
        .partitions()
        .iter()
        .find(|p| p.name == "F0/hall(3,3)")
        .unwrap();
    let a = IndoorPoint::new(h1.id, h1.polygon.as_ref().unwrap().centroid());
    let b = IndoorPoint::new(h2.id, h2.polygon.as_ref().unwrap().centroid());
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    for hour in [2u32, 12, 23] {
        let q = Query::new(a, b, TimeOfDay::hm(hour, 0));
        let path = syn
            .query(&q)
            .path
            .unwrap_or_else(|| panic!("hallways open at {hour}:00"));
        validate_path(space, &path, q.time, WALKING_SPEED).unwrap();
    }
}

#[test]
fn asyn_exact_equals_syn_across_checkpoint_crossings() {
    let graph = paper_graph(8);
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    let exact = AsynEngine::new(
        graph.clone(),
        ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
    );
    // Departures a few minutes before checkpoints force mid-walk crossings.
    for (h, m) in [(8, 50), (9, 55), (16, 55), (19, 50)] {
        let queries = generate_queries(
            &graph,
            &QueryGenConfig::default()
                .with_count(2)
                .with_time(TimeOfDay::hm(h, m))
                .with_seed(7 + u64::from(h)),
        );
        for gq in &queries {
            let s = syn.query(&gq.query).path.map(|p| p.length);
            let x = exact.query(&gq.query).path.map(|p| p.length);
            match (s, x) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "at {h}:{m}: {a} vs {b}"),
                (s, x) => panic!("outcome mismatch at {h}:{m}: {s:?} vs {x:?}"),
            }
        }
    }
}

#[test]
fn faithful_asyn_is_conservative() {
    // AsynMode::Faithful drops relaxations that cross checkpoints, so it may
    // miss paths ITG/S finds, but it must never invent an invalid one, and
    // when both find a path the faithful one is never shorter.
    let graph = paper_graph(8);
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    let faithful = AsynEngine::new(graph.clone(), ItspqConfig::default());
    for (h, m) in [(8, 50), (16, 55), (11, 58)] {
        let queries = generate_queries(
            &graph,
            &QueryGenConfig::default()
                .with_count(2)
                .with_time(TimeOfDay::hm(h, m))
                .with_seed(100 + u64::from(h)),
        );
        for gq in &queries {
            let s = syn.query(&gq.query).path;
            let f = faithful.query(&gq.query).path;
            if let Some(fp) = &f {
                validate_path(graph.space(), fp, gq.query.time, WALKING_SPEED).unwrap();
                let sp = s.as_ref().expect("ITG/S finds a superset of ITG/A paths");
                assert!(fp.length >= sp.length - 1e-9);
            }
        }
    }
}

#[test]
fn serde_round_trip_of_generated_venue() {
    let hours = ShopHours::sample(&HoursConfig::default());
    let space = build_mall(&MallConfig::single_floor(), &hours);
    let json = serde_json::to_string(&space).unwrap();
    let back: IndoorSpace = serde_json::from_str(&json).unwrap();
    assert_eq!(space, back);
    // And the restored venue answers queries identically.
    let g1 = ItGraph::new(space);
    let g2 = ItGraph::new(back);
    let queries = generate_queries(
        &g1,
        &QueryGenConfig::default().with_count(2).with_delta(600.0),
    );
    let e1 = SynEngine::new(g1, ItspqConfig::default());
    let e2 = SynEngine::new(g2, ItspqConfig::default());
    for gq in &queries {
        assert_eq!(
            e1.query(&gq.query).path.map(|p| p.length),
            e2.query(&gq.query).path.map(|p| p.length)
        );
    }
}
