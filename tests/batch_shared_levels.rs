//! Named regression pins for door-level and interval shared execution.
//!
//! Each test constructs one specific source-leg edge case the replay/retime
//! machinery must handle — a source exactly on a door, a zero-length source
//! leg on the *lead*, a sealed source door at departure — and pins the
//! batch answer against per-query `try_query`, byte for byte. A second group
//! of tests pins the `BatchStats` bookkeeping invariants: the accounting
//! identity, view-count monotonicity versus independent execution, and
//! worker-count independence of the whole report.

use itspq_repro::core::server::BatchStrategy;
use itspq_repro::core::{AsynMode, QueryResult};
use itspq_repro::prelude::*;
use itspq_repro::space::paper_example;

/// A paper-example server with sharing engaged (FullRelax) at `strategy`.
fn server(ex: &paper_example::PaperExample, strategy: BatchStrategy) -> VenueServer {
    let config = ServerConfig {
        strategy,
        itspq: ItspqConfig::full_relax().with_asyn_mode(AsynMode::Exact),
        ..ServerConfig::default()
    };
    VenueServer::with_config(ItGraph::shared(ex.space.clone()), config)
}

/// Byte-identity pin: the batch answer for every query must render exactly
/// like its per-query answer (Debug rendering keeps NaN comparisons total).
fn assert_pinned(server: &VenueServer, batch: &[Query], what: &str) {
    let got = server.try_query_batch(batch);
    assert_eq!(got.len(), batch.len());
    for (i, (q, g)) in batch.iter().zip(&got).enumerate() {
        let want = server.try_query(q);
        assert_eq!(
            format!("{:?}", g.as_ref().map(|r| &r.path)),
            format!("{:?}", want.as_ref().map(|r| &r.path)),
            "{what}: batch index {i} diverges from per-query ({q:?})"
        );
    }
}

fn result_found(r: &Result<QueryResult, QueryError>) -> bool {
    matches!(r, Ok(res) if res.path.is_some())
}

#[test]
fn source_exactly_on_a_door_matches_per_query() {
    // A member whose source sits bitwise on d18's position: its source leg
    // to d18 is exactly 0.0, the degenerate case of the replayed relax.
    let ex = paper_example::build();
    let srv = server(&ex, BatchStrategy::SharedDoor);
    let on_door = IndoorPoint::new(ex.p3.partition, ex.space.door(ex.d(18)).position);
    let nine = TimeOfDay::hm(9, 0);
    let batch = vec![
        Query::new(ex.p3, ex.p4, nine),
        Query::new(on_door, ex.p4, nine),
        Query::new(on_door, ex.p2, nine),
        Query::new(ex.p3, ex.p1, nine),
    ];
    let plan = srv.plan(&batch, false);
    assert_eq!(
        plan.shared_queries(),
        4,
        "all four must plan into one group"
    );
    assert_pinned(&srv, &batch, "source on door");
    // The on-door queries do find routes (0-length first leg, not rejected).
    let got = srv.try_query_batch(&batch);
    assert!(result_found(&got[1]) && result_found(&got[2]));
}

#[test]
fn lead_with_zero_length_source_leg_matches_per_query() {
    // The *lead* (earliest departure) starts exactly on a door, so every
    // recorded source-leg relax carries a 0.0 base distance and members with
    // ordinary source legs must replay against it.
    let ex = paper_example::build();
    let srv = server(&ex, BatchStrategy::SharedInterval);
    let on_door = IndoorPoint::new(ex.p3.partition, ex.space.door(ex.d(18)).position);
    let batch = vec![
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 30)),
        Query::new(on_door, ex.p2, TimeOfDay::hm(9, 0)), // earliest: the lead
        Query::new(ex.p3, ex.p1, TimeOfDay::hm(10, 15)),
    ];
    let plan = srv.plan(&batch, false);
    assert_eq!(plan.shared_groups(), 1);
    assert_pinned(&srv, &batch, "zero-length lead source leg");
}

#[test]
fn source_door_sealed_at_departure_matches_per_query() {
    // 23:30: d18 is sealed (Example 1's night case), so the group search
    // records rejected relaxes and genuine no-routes; members from other p3
    // points must reach the identical verdicts.
    let ex = paper_example::build();
    let srv = server(&ex, BatchStrategy::SharedDoor);
    let elsewhere = IndoorPoint::new(ex.p3.partition, indoor_geom_point(1.0, 1.0));
    let night = TimeOfDay::hm(23, 30);
    let batch = vec![
        Query::new(ex.p3, ex.p4, night),
        Query::new(elsewhere, ex.p4, night),
        Query::new(elsewhere, ex.p2, night),
    ];
    assert_pinned(&srv, &batch, "sealed source door");
    // The sealed door really does make the p3→p4 legs unroutable.
    let got = srv.try_query_batch(&batch);
    assert!(!result_found(&got[0]) && !result_found(&got[1]));
}

fn indoor_geom_point(x: f64, y: f64) -> itspq_repro::geom::Point {
    itspq_repro::geom::Point::new(x, y)
}

/// A mixed batch exercising every derivation: exact duplicates, door-spread
/// sources, interval-spread departures, a private-partition fallback.
fn mixed_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
    let other = IndoorPoint::new(ex.p3.partition, indoor_geom_point(2.0, 1.5));
    let private = IndoorPoint::new(ex.v(15), indoor_geom_point(5.0, 0.0));
    vec![
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)), // exact duplicate
        Query::new(other, ex.p2, TimeOfDay::hm(9, 0)), // door-spread
        Query::new(ex.p3, ex.p1, TimeOfDay::hm(9, 40)), // interval-spread
        Query::new(ex.p3, private, TimeOfDay::hm(9, 0)), // private: fallback
        Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)), // singleton
    ]
}

#[test]
fn stats_invariants_hold_at_every_level() {
    let ex = paper_example::build();
    for strategy in [
        BatchStrategy::Independent,
        BatchStrategy::Shared,
        BatchStrategy::SharedDoor,
        BatchStrategy::SharedInterval,
    ] {
        let srv = server(&ex, strategy);
        let (_, stats) = srv.query_batch_with_stats(&mixed_batch(&ex));
        assert!(
            stats.is_consistent(),
            "{strategy:?} broke groups + frontier_reuses == queries - rejected: {stats}"
        );
        assert!(stats.replayed + stats.retimed <= stats.frontier_reuses);
    }
}

#[test]
fn shared_views_never_exceed_independent_views() {
    let ex = paper_example::build();
    let (_, independent) =
        server(&ex, BatchStrategy::Independent).query_batch_with_stats(&mixed_batch(&ex));
    for strategy in [
        BatchStrategy::Shared,
        BatchStrategy::SharedDoor,
        BatchStrategy::SharedInterval,
    ] {
        let (_, shared) = server(&ex, strategy).query_batch_with_stats(&mixed_batch(&ex));
        assert!(
            shared.views_built <= independent.views_built,
            "{strategy:?} built {} views, independent built {}",
            shared.views_built,
            independent.views_built
        );
    }
}

#[test]
fn stats_are_identical_across_worker_counts() {
    let ex = paper_example::build();
    let batch = mixed_batch(&ex);
    for strategy in [
        BatchStrategy::Shared,
        BatchStrategy::SharedDoor,
        BatchStrategy::SharedInterval,
    ] {
        // Pinned so the 4-worker run really threads even on a 1-core host;
        // timings are measured wall-clock and are the one legitimately
        // nondeterministic part of the report, so compare them zeroed.
        let (r1, s1) = server(&ex, strategy)
            .with_pinned_workers(1)
            .query_batch_with_stats(&batch);
        let (r4, s4) = server(&ex, strategy)
            .with_pinned_workers(4)
            .query_batch_with_stats(&batch);
        assert_eq!(
            s1.timings_zeroed(),
            s4.timings_zeroed(),
            "{strategy:?}: stats depend on worker count"
        );
        for (a, b) in r1.iter().zip(&r4) {
            assert_eq!(
                a.path, b.path,
                "{strategy:?}: answers depend on worker count"
            );
        }
    }
}

/// A warm door-level server: frontier donation across same-interval groups.
fn warm_server(ex: &paper_example::PaperExample) -> VenueServer {
    let config = ServerConfig {
        strategy: BatchStrategy::SharedDoor,
        warm_start: true,
        itspq: ItspqConfig::full_relax().with_asyn_mode(AsynMode::Exact),
        ..ServerConfig::default()
    };
    VenueServer::with_config(ItGraph::shared(ex.space.clone()), config)
}

#[test]
fn warm_donor_fully_sealed_at_member_departure_matches_per_query() {
    // 23:30: d18 is sealed, so the donor group's frontier dies immediately
    // (every p3 exit rejected). The 23:40 neighbors are seeded from that
    // dead frontier and must reach the identical "no such routes" verdicts
    // — or fall back — never a phantom route.
    let ex = paper_example::build();
    let srv = warm_server(&ex);
    let elsewhere = IndoorPoint::new(ex.p3.partition, indoor_geom_point(1.0, 1.0));
    let far = IndoorPoint::new(ex.p3.partition, indoor_geom_point(2.5, 0.5));
    let batch = vec![
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)),
        Query::new(elsewhere, ex.p2, TimeOfDay::hm(23, 30)),
        Query::new(far, ex.p4, TimeOfDay::hm(23, 40)), // seeded group
        Query::new(elsewhere, ex.p4, TimeOfDay::hm(23, 40)),
    ];
    let plan = srv.plan(&batch, false);
    assert_eq!(
        plan.searches(),
        1,
        "both night groups must merge behind one donor"
    );
    assert_pinned(&srv, &batch, "sealed donor frontier");
    let got = srv.try_query_batch(&batch);
    assert!(
        !result_found(&got[0]) && !result_found(&got[2]),
        "d18 sealed: the p4 legs must be unroutable"
    );
    let (_, stats) = srv.query_batch_with_stats(&batch);
    assert!(stats.is_consistent(), "{stats}");
    assert!(stats.warm_starts > 0, "{stats}");
}

#[test]
fn warm_merged_singletons_donate_an_empty_frontier_delta() {
    // Two singleton plan groups in one interval: warm merging is the only
    // reason either shares at all. The donor is a lone query whose frontier
    // answers the other — including when the donor's own target is
    // unreachable (empty result, non-empty frontier).
    let ex = paper_example::build();
    let srv = warm_server(&ex);
    let elsewhere = IndoorPoint::new(ex.p3.partition, indoor_geom_point(1.0, 1.0));
    let batch = vec![
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
        Query::new(elsewhere, ex.p2, TimeOfDay::hm(9, 20)),
    ];
    let plan = srv.plan(&batch, false);
    assert_eq!(plan.searches(), 1, "two singletons must merge");
    assert_eq!(plan.shared_queries(), 2);
    assert_pinned(&srv, &batch, "merged singleton donation");
    let (_, stats) = srv.query_batch_with_stats(&batch);
    assert!(stats.is_consistent(), "{stats}");
    assert_eq!(stats.warm_starts, 1, "{stats}");
    assert_eq!(stats.seeded_labels + stats.seed_rejects, 1, "{stats}");
}

#[test]
fn warm_member_source_on_a_donated_settled_door_matches_per_query() {
    // The seeded member starts bitwise on d18's position — a door the
    // donor's sweep settles. Its replay sees a 0.0-length source leg onto a
    // settled label; the answer must still be byte-for-byte per-query.
    let ex = paper_example::build();
    let srv = warm_server(&ex);
    let on_door = IndoorPoint::new(ex.p3.partition, ex.space.door(ex.d(18)).position);
    let elsewhere = IndoorPoint::new(ex.p3.partition, indoor_geom_point(1.0, 1.0));
    let batch = vec![
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
        Query::new(elsewhere, ex.p2, TimeOfDay::hm(9, 0)),
        Query::new(on_door, ex.p4, TimeOfDay::hm(9, 20)), // seeded, on-door
        Query::new(on_door, ex.p1, TimeOfDay::hm(9, 20)),
    ];
    let plan = srv.plan(&batch, false);
    assert_eq!(plan.searches(), 1);
    assert_pinned(&srv, &batch, "seeded source on settled door");
    let got = srv.try_query_batch(&batch);
    assert!(result_found(&got[2]) && result_found(&got[3]));
    let (_, stats) = srv.query_batch_with_stats(&batch);
    assert!(stats.is_consistent(), "{stats}");
    assert!(stats.warm_starts > 0, "{stats}");
}

#[test]
fn warm_earlier_departing_seeded_member_matches_per_query() {
    // The donor (largest group) departs at 9:20; the seeded neighbors
    // depart *earlier* at 9:05 — including one from the donor's own source
    // point, which must not be retimed through the saturating-to-zero
    // timestamp delta. Replay (whose windows use the member's own clock)
    // or fallback must answer them, byte-for-byte.
    let ex = paper_example::build();
    let srv = warm_server(&ex);
    let elsewhere = IndoorPoint::new(ex.p3.partition, indoor_geom_point(1.0, 1.0));
    let far = IndoorPoint::new(ex.p3.partition, indoor_geom_point(2.5, 0.5));
    let batch = vec![
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 20)),
        Query::new(elsewhere, ex.p2, TimeOfDay::hm(9, 20)),
        Query::new(far, ex.p1, TimeOfDay::hm(9, 20)),
        Query::new(ex.p3, ex.p2, TimeOfDay::hm(9, 5)), // seeded, earlier, same pos as lead
        Query::new(elsewhere, ex.p4, TimeOfDay::hm(9, 5)),
    ];
    let plan = srv.plan(&batch, false);
    assert_eq!(plan.searches(), 1, "9:20 trio donates to the 9:05 pair");
    assert_pinned(&srv, &batch, "earlier-departing seeded member");
    let (_, stats) = srv.query_batch_with_stats(&batch);
    assert!(stats.is_consistent(), "{stats}");
    assert!(stats.warm_starts > 0, "{stats}");
}

#[test]
fn warm_start_stats_are_identical_across_worker_counts() {
    // The warm planner groups neighborhoods through an ordered map keyed by
    // (partition, interval); this pin holds the whole non-timing report —
    // including `warm_starts` and `seeded_labels` — equal between a serial
    // and a 4-worker run of the same batch.
    let ex = paper_example::build();
    let elsewhere = IndoorPoint::new(ex.p3.partition, indoor_geom_point(1.0, 1.0));
    let far = IndoorPoint::new(ex.p3.partition, indoor_geom_point(2.5, 0.5));
    let batch = vec![
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
        Query::new(elsewhere, ex.p2, TimeOfDay::hm(9, 20)),
        Query::new(far, ex.p4, TimeOfDay::hm(9, 40)),
        Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)),
        Query::new(elsewhere, ex.p4, TimeOfDay::hm(9, 5)),
    ];
    let (r1, s1) = warm_server(&ex)
        .with_pinned_workers(1)
        .query_batch_with_stats(&batch);
    let (r4, s4) = warm_server(&ex)
        .with_pinned_workers(4)
        .query_batch_with_stats(&batch);
    assert!(s1.warm_starts > 0, "batch must exercise donation: {s1}");
    assert_eq!(
        s1.timings_zeroed(),
        s4.timings_zeroed(),
        "warm-start stats depend on worker count"
    );
    for (a, b) in r1.iter().zip(&r4) {
        assert_eq!(a.path, b.path, "warm answers depend on worker count");
    }
}

#[test]
fn plan_shape_is_a_pure_function_of_the_batch() {
    // Two fresh servers must produce byte-identical plans for the same
    // batch at every sharing level: grouping runs over ordered maps, so no
    // hasher seed can reorder groups or rosters between processes.
    let ex = paper_example::build();
    let batch = mixed_batch(&ex);
    for strategy in [
        BatchStrategy::Shared,
        BatchStrategy::SharedDoor,
        BatchStrategy::SharedInterval,
    ] {
        let a = server(&ex, strategy).plan(&batch, false);
        let b = server(&ex, strategy).plan(&batch, false);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{strategy:?}: plan differs between identical servers"
        );
    }
}
