//! Property-based parity pin for the shared-execution batch engine.
//!
//! The tentpole claim of the server's sharing levels ([`BatchStrategy`]
//! `Shared` / `SharedDoor` / `SharedInterval`) is that sharing is
//! *invisible* in the answers: grouping queries — by identical (source
//! point, departure time), by source partition, or by checkpoint interval —
//! and answering each group from one multi-target frontier (verbatim,
//! replayed against the member's own source legs, or retimed under the
//! margin certificate) returns exactly what per-query execution returns —
//! the same `Path` values bit for bit, the same "no such routes", the same
//! typed errors for malformed queries — for every engine (ITG/S, ITG/A
//! Exact *and* the stateful paper-faithful ITG/A), any worker count, and
//! adversarially skewed batches.
//!
//! These properties drive randomized venues (seeded ATIs on the tiny mall),
//! zipf-like source skew (a tiny source pool with many duplicates),
//! partition-clustered sources with second-granularity time jitter (the
//! door/interval traffic shape, including night hours where doors seal and
//! near-boundary departures that force certified fallbacks), batch sizes,
//! worker counts, and injected malformed queries (NaN coordinates,
//! unknown partitions), asserting byte-identity against the per-query
//! reference the whole way. Failures render compactly: the offending index
//! and query plus outcome summaries, never whole venues or result dumps.

use itspq_repro::core::server::BatchStrategy;
use itspq_repro::core::{AsynMode, QueryResult};
use itspq_repro::prelude::*;
use itspq_repro::synthetic::{build_mall, HoursConfig, MallConfig, ShopHours};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds the tiny mall with seeded ATIs and picks `n` random indoor points.
fn venue_and_points(seed: u64, n: usize) -> (ItGraph, Vec<IndoorPoint>) {
    let hours = ShopHours::sample(&HoursConfig::default().with_seed(seed));
    let space = build_mall(&MallConfig::tiny(), &hours);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let mut points = Vec::with_capacity(n);
    let parts: Vec<_> = space
        .partitions()
        .iter()
        .filter(|p| p.polygon.is_some())
        .map(|p| (p.id, p.polygon.clone().unwrap()))
        .collect();
    for _ in 0..n {
        let (id, poly) = &parts[rng.random_range(0..parts.len())];
        let (min, max) = poly.bounding_box();
        let mut pos = poly.centroid();
        for _ in 0..32 {
            let cand = itspq_repro::geom::Point::new(
                rng.random_range(min.x..=max.x),
                rng.random_range(min.y..=max.y),
            );
            if poly.contains(cand) {
                pos = cand;
                break;
            }
        }
        points.push(IndoorPoint::new(*id, pos));
    }
    (ItGraph::new(space), points)
}

/// A zipf-like skewed batch: sources from a pool of `pool` points (heavy
/// duplication ⇒ shareable groups), random targets, a few distinct times
/// including night hours that yield genuine "no such routes" answers.
fn skewed_batch(pts: &[IndoorPoint], seed: u64, size: usize, pool: usize) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
    let times = [
        TimeOfDay::hm(9, 0),
        TimeOfDay::hm(12, 0),
        TimeOfDay::hm(23, 30),
        TimeOfDay::hm(4, 0),
    ];
    let pool = pool.clamp(1, pts.len());
    (0..size)
        .map(|_| {
            Query::new(
                pts[rng.random_range(0..pool)],
                pts[rng.random_range(0..pts.len())],
                times[rng.random_range(0..times.len())],
            )
        })
        .collect()
}

/// Overwrites one batch slot with a NaN-source query and (if the batch has
/// ≥ 2 entries) another with an unknown-partition target.
fn inject_malformed(batch: &mut [Query], seed: u64) {
    if batch.is_empty() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA11);
    let i = rng.random_range(0..batch.len());
    batch[i].source = IndoorPoint::new(
        batch[i].source.partition,
        itspq_repro::geom::Point::new(f64::NAN, 1.0),
    );
    if batch.len() >= 2 {
        let j = (i + 1) % batch.len();
        batch[j].target =
            IndoorPoint::new(PartitionId(9_999), itspq_repro::geom::Point::new(1.0, 1.0));
    }
}

/// `per` random points in each of the first `parts` traversable polygon
/// partitions: many *distinct* source points concentrated in few partitions —
/// the batch shape door-level sharing exists for.
fn partition_clustered_points(
    graph: &ItGraph,
    seed: u64,
    parts: usize,
    per: usize,
) -> Vec<IndoorPoint> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD0012);
    let chosen: Vec<_> = graph
        .space()
        .partitions()
        .iter()
        .filter(|p| p.polygon.is_some() && p.kind.traversable())
        .take(parts)
        .map(|p| (p.id, p.polygon.clone().unwrap()))
        .collect();
    let mut pts = Vec::new();
    for (id, poly) in &chosen {
        let (min, max) = poly.bounding_box();
        for _ in 0..per {
            let mut pos = poly.centroid();
            for _ in 0..32 {
                let cand = itspq_repro::geom::Point::new(
                    rng.random_range(min.x..=max.x),
                    rng.random_range(min.y..=max.y),
                );
                if poly.contains(cand) {
                    pos = cand;
                    break;
                }
            }
            pts.push(IndoorPoint::new(*id, pos));
        }
    }
    pts
}

/// Sources from the partition-clustered pool, departures jittered by seconds
/// around a few base instants (9:00, 12:00, and 23:30 where night sealing
/// yields genuine no-routes): exact duplicates, same-instant different-point
/// pairs, and same-interval different-instant pairs all occur.
fn clustered_batch(
    cluster: &[IndoorPoint],
    targets: &[IndoorPoint],
    seed: u64,
    size: usize,
) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC10C);
    let bases = [32_400.0, 43_200.0, 84_600.0];
    let jitter = [0.0, 0.0, 17.5, 45.0, 171.0];
    (0..size)
        .map(|_| {
            let t =
                bases[rng.random_range(0..bases.len())] + jitter[rng.random_range(0..jitter.len())];
            Query::new(
                cluster[rng.random_range(0..cluster.len())],
                targets[rng.random_range(0..targets.len())],
                TimeOfDay::from_seconds(t).expect("in range by construction"),
            )
        })
        .collect()
}

/// Byte-identity witness that is total over NaN: two answers are the same
/// iff they render identically (a NaN coordinate makes `==` reflexively
/// false while the values are still bit-for-bit equal).
fn rendered<T: std::fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// Compact one-line outcome summary for failure messages: counts and key
/// figures instead of a full `Path`/venue dump.
fn outcome_kind(r: &Result<QueryResult, QueryError>) -> String {
    match r {
        Ok(res) => match &res.path {
            Some(p) => format!("path({} hops, len {:.3})", p.hops.len(), p.length),
            None => "no-route".into(),
        },
        Err(e) => format!("rejected({e:?})"),
    }
}

/// A server with sharing actually engaged (FullRelax) at `strategy` level.
fn sharing_server(
    graph: &ItGraph,
    method: ServeMethod,
    mode: AsynMode,
    workers: usize,
    strategy: BatchStrategy,
) -> VenueServer {
    let config = ServerConfig {
        workers,
        // Pinned: the properties range workers over {1, 4} to hunt for
        // scheduling-dependent answers, which requires the pool to really
        // have 4 threads even on a single-core CI host.
        pin_workers: true,
        method,
        strategy,
        itspq: ItspqConfig::full_relax().with_asyn_mode(mode),
        ..ServerConfig::default()
    };
    VenueServer::with_config(graph.clone(), config)
}

/// Every sharing level, coarsest last.
const LEVELS: [BatchStrategy; 3] = [
    BatchStrategy::Shared,
    BatchStrategy::SharedDoor,
    BatchStrategy::SharedInterval,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Headline parity: shared batch answers are byte-identical to per-query
    /// `try_query` answers — paths, no-routes and typed errors alike — on
    /// skewed batches with malformed queries mixed in.
    #[test]
    fn shared_batch_is_byte_identical_to_try_query(
        seed in 0u64..300,
        size in 1usize..24,
        workers in 1usize..5,
    ) {
        let (graph, pts) = venue_and_points(seed, 8);
        let mut batch = skewed_batch(&pts, seed, size, 2);
        inject_malformed(&mut batch, seed);
        let server = sharing_server(&graph, ServeMethod::Asyn, AsynMode::Exact, workers, BatchStrategy::Shared);
        let shared = server.try_query_batch(&batch);
        prop_assert_eq!(shared.len(), batch.len());
        for (i, (q, got)) in batch.iter().zip(&shared).enumerate() {
            let want = server.try_query(q);
            match (got, want) {
                (Ok(g), Ok(w)) => prop_assert_eq!(
                    rendered(&g.path), rendered(&w.path),
                    "paths diverge at index {} (seed {})", i, seed
                ),
                (Err(g), Err(w)) => prop_assert_eq!(rendered(g), rendered(&w)),
                (g, w) => prop_assert!(
                    false,
                    "outcome mismatch at index {i} (seed {seed}): query {q:?} \
                     got {} want {}",
                    outcome_kind(g), outcome_kind(&w)
                ),
            }
        }
    }

    /// The same parity holds for every engine — including the *stateful*
    /// paper-faithful ITG/A, whose checker cursor must evolve through the
    /// identical door-relaxation sequence in shared and per-query runs.
    #[test]
    fn every_method_shares_without_changing_answers(
        seed in 0u64..200,
        size in 2usize..16,
    ) {
        let (graph, pts) = venue_and_points(seed, 6);
        let batch = skewed_batch(&pts, seed, size, 2);
        for (method, mode) in [
            (ServeMethod::Syn, AsynMode::Exact),
            (ServeMethod::Asyn, AsynMode::Exact),
            (ServeMethod::Asyn, AsynMode::Faithful),
        ] {
            let server = sharing_server(&graph, method, mode, 2, BatchStrategy::Shared);
            let shared = server.try_query_batch(&batch);
            for (i, (q, got)) in batch.iter().zip(&shared).enumerate() {
                let want = server.try_query(q).expect("batch is well-formed");
                let got = got.as_ref().expect("batch is well-formed");
                prop_assert_eq!(
                    &got.path, &want.path,
                    "{:?}/{:?} diverges at index {} (seed {})", method, mode, i, seed
                );
            }
        }
    }

    /// Answers are independent of the worker count and of the strategy:
    /// `Shared` on any pool size equals `Independent` on one thread.
    #[test]
    fn worker_count_and_strategy_do_not_change_answers(
        seed in 0u64..200,
        size in 1usize..20,
        workers in 2usize..6,
    ) {
        let (graph, pts) = venue_and_points(seed, 6);
        let mut batch = skewed_batch(&pts, seed, size, 3);
        // NaN only: raw `query_batch` runs malformed queries unvalidated,
        // which must degrade to no-route identically everywhere.
        if size >= 3 {
            batch[0].source =
                IndoorPoint::new(batch[0].source.partition, itspq_repro::geom::Point::new(f64::NAN, 1.0));
        }
        let reference = {
            let mut config = *sharing_server(&graph, ServeMethod::Asyn, AsynMode::Exact, 1, BatchStrategy::Shared).config();
            config.strategy = BatchStrategy::Independent;
            VenueServer::with_config(graph.clone(), config).query_batch(&batch)
        };
        let shared = sharing_server(&graph, ServeMethod::Asyn, AsynMode::Exact, workers, BatchStrategy::Shared)
            .query_batch(&batch);
        prop_assert_eq!(shared.len(), reference.len());
        for (i, (a, b)) in shared.iter().zip(&reference).enumerate() {
            prop_assert_eq!(
                rendered(&a.path), rendered(&b.path),
                "index {} (seed {})", i, seed
            );
        }
    }

    /// The execution report is arithmetically consistent with the plan, and
    /// duplicated sources actually produce frontier reuse.
    #[test]
    fn batch_stats_are_consistent(
        seed in 0u64..200,
        size in 4usize..24,
    ) {
        let (graph, pts) = venue_and_points(seed, 6);
        // Keep targets in traversable partitions so every query is
        // shared-eligible; private-target fallbacks are covered by the
        // parity properties above.
        let pts: Vec<IndoorPoint> = pts
            .into_iter()
            .filter(|p| graph.space().partition(p.partition).kind.traversable())
            .collect();
        if pts.len() < 2 {
            return Ok(()); // all-private draw: nothing to group
        }
        // Pool of 1: every query shares one source point, so with more
        // queries than distinct departure times, pigeonhole forces a group.
        let batch = skewed_batch(&pts, seed, size, 1);
        let server = sharing_server(&graph, ServeMethod::Asyn, AsynMode::Exact, 2, BatchStrategy::Shared);
        let plan = server.plan(&batch, false);
        let (results, stats) = server.query_batch_with_stats(&batch);
        prop_assert_eq!(results.len(), batch.len());
        prop_assert_eq!(stats.queries, batch.len());
        prop_assert_eq!(stats.groups, plan.searches());
        prop_assert_eq!(stats.shared_queries, plan.shared_queries());
        prop_assert_eq!(
            stats.frontier_reuses,
            plan.shared_queries() - plan.shared_groups()
        );
        prop_assert!(stats.groups <= stats.queries);
        // One source, ≤ 4 distinct departure times, ≥ 4 queries: pigeonhole
        // guarantees at least one ≥ 2-member group.
        prop_assert!(
            stats.frontier_reuses > 0,
            "a single-source batch of {} must share (seed {seed})", batch.len()
        );
        prop_assert!(stats.sharing_ratio() < 1.0);
    }

    /// Door-level and interval sharing are byte-identical to per-query
    /// execution for every sharing level, every engine (ITG/S, ITG/A Exact,
    /// stateful ITG/A Faithful) and workers ∈ {1, 4}, on partition-clustered
    /// batches with jittered departures, sealed night doors and malformed
    /// queries (NaN source, unknown-partition target) mixed in.
    #[test]
    fn door_and_interval_sharing_match_per_query(
        seed in 0u64..150,
        size in 2usize..18,
        worker_sel in 0usize..2,
    ) {
        let workers = [1, 4][worker_sel];
        let (graph, pts) = venue_and_points(seed, 6);
        let cluster = partition_clustered_points(&graph, seed, 2, 3);
        prop_assert!(!cluster.is_empty());
        let mut batch = clustered_batch(&cluster, &pts, seed, size);
        inject_malformed(&mut batch, seed);
        for strategy in LEVELS {
            for (method, mode) in [
                (ServeMethod::Syn, AsynMode::Exact),
                (ServeMethod::Asyn, AsynMode::Exact),
                (ServeMethod::Asyn, AsynMode::Faithful),
            ] {
                let server = sharing_server(&graph, method, mode, workers, strategy);
                let shared = server.try_query_batch(&batch);
                prop_assert_eq!(shared.len(), batch.len());
                for (i, (q, got)) in batch.iter().zip(&shared).enumerate() {
                    let want = server.try_query(q);
                    prop_assert_eq!(
                        rendered(&got.as_ref().map(|r| &r.path)),
                        rendered(&want.as_ref().map(|r| &r.path)),
                        "{:?}/{:?}/{:?} w{} diverges at index {} (seed {}): \
                         query {:?} got {} want {}",
                        strategy, method, mode, workers, i, seed, q,
                        outcome_kind(got), outcome_kind(&want)
                    );
                }
            }
        }
    }

    /// Every sharing level keeps the batch books balanced, and the whole
    /// report — replays, retimes, fallbacks, views, warm-start seeding — is
    /// independent of the worker count (phase timings, the one wall-clock
    /// part, compared zeroed).
    #[test]
    fn leveled_stats_are_consistent_and_worker_independent(
        seed in 0u64..150,
        size in 4usize..20,
        warm in any::<bool>(),
    ) {
        let (graph, pts) = venue_and_points(seed, 6);
        let cluster = partition_clustered_points(&graph, seed, 2, 3);
        prop_assert!(!cluster.is_empty());
        let batch = clustered_batch(&cluster, &pts, seed, size);
        for strategy in LEVELS {
            let one = sharing_server(&graph, ServeMethod::Asyn, AsynMode::Exact, 1, strategy)
                .with_warm_start(warm);
            let four = sharing_server(&graph, ServeMethod::Asyn, AsynMode::Exact, 4, strategy)
                .with_warm_start(warm);
            let (_, s1) = one.query_batch_with_stats(&batch);
            let (_, s4) = four.query_batch_with_stats(&batch);
            prop_assert!(
                s1.is_consistent(),
                "{:?} (warm {}) broke the accounting identity (seed {}): {}",
                strategy, warm, seed, s1
            );
            prop_assert_eq!(
                s1.timings_zeroed(), s4.timings_zeroed(),
                "stats depend on worker count under {:?} (warm {}, seed {})",
                strategy, warm, seed
            );
        }
    }

    /// Warm-start frontier donation is answer-invisible: with `warm_start`
    /// enabled, door- and interval-level sharing stay byte-identical to
    /// per-query execution for every engine (ITG/S, ITG/A Exact, stateful
    /// ITG/A Faithful) and workers ∈ {1, 4}, on partition-clustered batches
    /// with jittered departures, sealed night doors and malformed queries
    /// (NaN source, unknown-partition target) mixed in.
    #[test]
    fn warm_start_sharing_matches_per_query(
        seed in 0u64..150,
        size in 2usize..18,
        worker_sel in 0usize..2,
    ) {
        let workers = [1, 4][worker_sel];
        let (graph, pts) = venue_and_points(seed, 6);
        let cluster = partition_clustered_points(&graph, seed, 2, 3);
        prop_assert!(!cluster.is_empty());
        let mut batch = clustered_batch(&cluster, &pts, seed, size);
        inject_malformed(&mut batch, seed);
        for strategy in [BatchStrategy::SharedDoor, BatchStrategy::SharedInterval] {
            for (method, mode) in [
                (ServeMethod::Syn, AsynMode::Exact),
                (ServeMethod::Asyn, AsynMode::Exact),
                (ServeMethod::Asyn, AsynMode::Faithful),
            ] {
                let server = sharing_server(&graph, method, mode, workers, strategy)
                    .with_warm_start(true);
                let shared = server.try_query_batch(&batch);
                prop_assert_eq!(shared.len(), batch.len());
                for (i, (q, got)) in batch.iter().zip(&shared).enumerate() {
                    let want = server.try_query(q);
                    prop_assert_eq!(
                        rendered(&got.as_ref().map(|r| &r.path)),
                        rendered(&want.as_ref().map(|r| &r.path)),
                        "warm {:?}/{:?}/{:?} w{} diverges at index {} (seed {}): \
                         query {:?} got {} want {}",
                        strategy, method, mode, workers, i, seed, q,
                        outcome_kind(got), outcome_kind(&want)
                    );
                }
            }
        }
    }
}
