//! Integration tests over the paper's running example (Figure 1, Table I,
//! Example 1 and the §II-A mapping examples), exercised through the public
//! umbrella API.

use itspq_repro::core::{baselines, validate_path, AsynMode, ExpandPolicy};
use itspq_repro::prelude::*;
use itspq_repro::space::paper_example;

fn engines() -> (paper_example::PaperExample, SynEngine, AsynEngine) {
    let ex = paper_example::build();
    let graph = ItGraph::new(ex.space.clone());
    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    let asyn = AsynEngine::new(graph, ItspqConfig::default());
    (ex, syn, asyn)
}

#[test]
fn example1_morning_query_returns_d18_path() {
    let (ex, syn, asyn) = engines();
    let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0));
    for (name, res) in [("ITG/S", syn.query(&q)), ("ITG/A", asyn.query(&q))] {
        let path = res
            .path
            .unwrap_or_else(|| panic!("{name}: path must exist at 9:00"));
        assert_eq!(
            path.doors().collect::<Vec<_>>(),
            vec![ex.d(18)],
            "{name}: Example 1 expects (p3, d18, p4)"
        );
        assert!((path.length - 12.0).abs() < 1e-9, "{name}: length 12 m");
        validate_path(&ex.space, &path, q.time, WALKING_SPEED).expect("valid path");
    }
}

#[test]
fn example1_night_query_has_no_route() {
    let (ex, syn, asyn) = engines();
    let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30));
    assert!(syn.query(&q).path.is_none(), "ITG/S: d18 closed at 23:30");
    assert!(asyn.query(&q).path.is_none(), "ITG/A: d18 closed at 23:30");
}

#[test]
fn example1_shortcut_is_used_when_v15_is_not_private() {
    // Counterfactual: rebuild the example with v15 public; the 10 m shortcut
    // through d15/d16 must win at 9:00 (both doors open from 8:00).
    use itspq_repro::space::Connection;
    let ex = paper_example::build();
    let mut b = VenueBuilder::new();
    // Rebuild only the Example-1 cluster: v13, v14, v15 (public this time).
    let v13 = b.add_partition("v13", PartitionKind::Public);
    let v14 = b.add_partition("v14", PartitionKind::Public);
    let v15 = b.add_partition("v15-public", PartitionKind::Public);
    let d15 = b.add_door(
        "d15",
        DoorKind::Public,
        ex.space.door(ex.d(15)).atis.clone(),
        ex.space.door(ex.d(15)).position,
    );
    let d16 = b.add_door(
        "d16",
        DoorKind::Public,
        ex.space.door(ex.d(16)).atis.clone(),
        ex.space.door(ex.d(16)).position,
    );
    let d18 = b.add_door(
        "d18",
        DoorKind::Public,
        ex.space.door(ex.d(18)).atis.clone(),
        ex.space.door(ex.d(18)).position,
    );
    b.connect(d15, Connection::TwoWay(v13, v15)).unwrap();
    b.connect(d16, Connection::TwoWay(v15, v14)).unwrap();
    b.connect(d18, Connection::TwoWay(v13, v14)).unwrap();
    let space = b.build().unwrap();
    let engine = SynEngine::new(ItGraph::new(space), ItspqConfig::default());
    let q = Query::new(
        IndoorPoint::new(v13, ex.p3.position),
        IndoorPoint::new(v14, ex.p4.position),
        TimeOfDay::hm(9, 0),
    );
    let path = engine.query(&q).path.unwrap();
    assert_eq!(path.doors().collect::<Vec<_>>(), vec![d15, d16]);
    assert!((path.length - 10.0).abs() < 1e-9);
}

#[test]
fn all_paper_mapping_examples_hold() {
    let (ex, _, _) = engines();
    let s = &ex.space;
    assert_eq!(s.d2p(ex.d(3)), vec![ex.v(3), ex.v(16)]);
    assert_eq!(s.d2p_leaveable(ex.d(3)), &[ex.v(3)]);
    assert_eq!(s.d2p_enterable(ex.d(3)), &[ex.v(16)]);
    let doors = |ns: &[u32]| ns.iter().map(|&n| ex.d(n)).collect::<Vec<_>>();
    assert_eq!(s.p2d(ex.v(3)), doors(&[1, 2, 3, 5, 6]));
    assert_eq!(s.p2d_leaveable(ex.v(3)), doors(&[1, 2, 3, 5, 6]));
    assert_eq!(s.p2d_enterable(ex.v(3)), doors(&[1, 2, 5, 6]));
}

#[test]
fn one_way_d3_is_never_crossed_backwards() {
    // Any route into v3's cluster from the lower hallways must avoid d3
    // (it only opens v3 -> v16).
    let (ex, syn, _) = engines();
    let from = IndoorPoint::new(ex.v(16), itspq_repro::geom::Point::new(7.0, 26.0));
    let to = ex.p1; // in v3
    let q = Query::new(from, to, TimeOfDay::hm(12, 0));
    let path = syn.query(&q).path.expect("v3 reachable the long way");
    // d3 may appear only if crossed v3 -> v16, impossible here (we start in
    // v16 and end in v3), so it must not appear at all.
    assert!(path.doors().all(|d| d != ex.d(3)));
    validate_path(&ex.space, &path, q.time, WALKING_SPEED).unwrap();
}

#[test]
fn engines_agree_on_a_time_sweep() {
    let (ex, syn, _) = engines();
    let asyn_exact = AsynEngine::new(
        ItGraph::new(ex.space.clone()),
        ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
    );
    let pairs = [
        (ex.p1, ex.p2),
        (ex.p2, ex.p3),
        (ex.p3, ex.p1),
        (ex.p4, ex.p2),
    ];
    for hour in 0..24 {
        for (a, b) in pairs {
            let q = Query::new(a, b, TimeOfDay::hm(hour, 0));
            let s = syn.query(&q).path.map(|p| p.length);
            let x = asyn_exact.query(&q).path.map(|p| p.length);
            match (s, x) {
                (None, None) => {}
                (Some(ls), Some(lx)) => assert!(
                    (ls - lx).abs() < 1e-9,
                    "ITG/S {ls} vs ITG/A(Exact) {lx} at {hour}:00"
                ),
                (s, x) => panic!("outcome mismatch at {hour}:00: {s:?} vs {x:?}"),
            }
        }
    }
}

#[test]
fn full_relax_never_longer_than_paper_pruned() {
    let (ex, _, _) = engines();
    let graph = ItGraph::new(ex.space.clone());
    let pruned = SynEngine::new(graph.clone(), ItspqConfig::default());
    let full = SynEngine::new(
        graph,
        ItspqConfig::default().with_expand(ExpandPolicy::FullRelax),
    );
    let pairs = [
        (ex.p1, ex.p2),
        (ex.p2, ex.p4),
        (ex.p3, ex.p2),
        (ex.p1, ex.p4),
    ];
    for hour in [6u32, 9, 12, 15, 18, 21] {
        for (a, b) in pairs {
            let q = Query::new(a, b, TimeOfDay::hm(hour, 0));
            let lp = pruned.query(&q).path.map(|p| p.length);
            let lf = full.query(&q).path.map(|p| p.length);
            if let (Some(lp), Some(lf)) = (lp, lf) {
                assert!(
                    lf <= lp + 1e-9,
                    "FullRelax ({lf}) must not exceed PaperPruned ({lp}) at {hour}:00"
                );
            }
            if lp.is_some() {
                assert!(lf.is_some(), "FullRelax explores a superset at {hour}:00");
            }
        }
    }
}

#[test]
fn exhaustive_oracle_matches_full_relax_on_example() {
    let (ex, _, _) = engines();
    let graph = ItGraph::new(ex.space.clone());
    let cfg = ItspqConfig::full_relax();
    let engine = SynEngine::new(graph.clone(), cfg);
    let pairs = [(ex.p1, ex.p2), (ex.p3, ex.p4), (ex.p2, ex.p1)];
    for hour in [7u32, 9, 12, 17, 22] {
        for (a, b) in pairs {
            let q = Query::new(a, b, TimeOfDay::hm(hour, 0));
            let oracle = baselines::exhaustive_shortest(&graph, &q, &cfg, 12);
            let engine_path = engine.query(&q).path;
            match (&oracle, &engine_path) {
                (None, None) => {}
                (Some(o), Some(e)) => assert!(
                    (o.length - e.length).abs() < 1e-6,
                    "oracle {} vs engine {} at {hour}:00",
                    o.length,
                    e.length
                ),
                _ => panic!(
                    "oracle/engine outcome mismatch at {hour}:00: {:?} vs {:?}",
                    oracle.map(|p| p.length),
                    engine_path.map(|p| p.length)
                ),
            }
        }
    }
}

#[test]
fn static_baseline_uses_paths_that_itspq_rejects_at_night() {
    let (ex, syn, _) = engines();
    let graph = ItGraph::new(ex.space.clone());
    let cfg = ItspqConfig::default();
    let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30));
    let static_path = baselines::static_shortest_path(&graph, &q, &cfg)
        .path
        .expect("static routing ignores closing times");
    assert!(validate_path(&ex.space, &static_path, q.time, WALKING_SPEED).is_err());
    assert!(syn.query(&q).path.is_none());
}

#[test]
fn query_results_report_plausible_stats() {
    let (ex, syn, asyn) = engines();
    let q = Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0));
    let s = syn.query(&q);
    let a = asyn.query(&q);
    assert!(s.stats.doors_settled >= s.path.as_ref().map_or(0, |p| p.hops.len()));
    assert!(s.stats.heap_pops >= s.stats.doors_settled);
    assert!(s.stats.tv_checks >= s.stats.tv_rejections);
    assert!(a.stats.reduced_graph_bytes > 0, "ITG/A accounts its views");
    assert_eq!(s.stats.reduced_graph_bytes, 0, "ITG/S has no views");
}
