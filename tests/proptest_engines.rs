//! Property-based tests of the ITSPQ engines on randomised workloads.
//!
//! Venues come from the synthetic generator (tiny mall, randomised ATI seeds)
//! so topology invariants hold by construction; queries draw random endpoints
//! and times. Invariants checked:
//!
//! * ITG/S and ITG/A(Exact) paths always pass the independent rule validator;
//!   ITG/A(Faithful) may break rule 1 only (the paper's documented
//!   unsoundness, see `arrive_too_early.rs`), never rule 2 or topology;
//! * ITG/S ≡ ITG/A(Exact);
//! * `FullRelax` never returns a longer path than `PaperPruned`;
//! * results are sound w.r.t. the exhaustive oracle: the oracle never loses
//!   to the engine, and proves infeasibility only when the engine agrees;
//! * engines are deterministic; hop bookkeeping is monotone.

use indoor_time::SECONDS_PER_DAY;
use itspq_repro::core::{baselines, validate_path, AsynMode};
use itspq_repro::prelude::*;
use itspq_repro::synthetic::{build_mall, HoursConfig, MallConfig, ShopHours};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds the tiny mall with seeded ATIs and picks `n` random indoor points.
fn venue_and_points(seed: u64, n: usize) -> (ItGraph, Vec<IndoorPoint>) {
    let hours = ShopHours::sample(&HoursConfig::default().with_seed(seed));
    let space = build_mall(&MallConfig::tiny(), &hours);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let mut points = Vec::with_capacity(n);
    let parts: Vec<_> = space
        .partitions()
        .iter()
        .filter(|p| p.polygon.is_some())
        .map(|p| (p.id, p.polygon.clone().unwrap()))
        .collect();
    for _ in 0..n {
        let (id, poly) = &parts[rng.random_range(0..parts.len())];
        let (min, max) = poly.bounding_box();
        let mut pos = poly.centroid();
        for _ in 0..32 {
            let cand = itspq_repro::geom::Point::new(
                rng.random_range(min.x..=max.x),
                rng.random_range(min.y..=max.y),
            );
            if poly.contains(cand) {
                pos = cand;
                break;
            }
        }
        points.push(IndoorPoint::new(*id, pos));
    }
    (ItGraph::new(space), points)
}

fn arb_time() -> impl Strategy<Value = TimeOfDay> {
    (0u32..SECONDS_PER_DAY as u32).prop_map(|s| TimeOfDay::from_seconds(f64::from(s)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ITG/S and the sound ITG/A(Exact) always satisfy both ITSPQ rules.
    /// The paper-faithful ITG/A may violate rule 1 after a premature graph
    /// update (see `arrive_too_early.rs`) but never rule 2 or topology.
    #[test]
    fn engine_paths_always_validate(seed in 0u64..500, t in arb_time()) {
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        for cfg in [ItspqConfig::default(), ItspqConfig::full_relax()] {
            let syn = SynEngine::new(graph.clone(), cfg);
            if let Some(p) = syn.query(&q).path {
                prop_assert!(validate_path(graph.space(), &p, t, cfg.velocity).is_ok(),
                    "invalid ITG/S path (seed {seed}, t {t})");
            }
            let exact = AsynEngine::new(graph.clone(), cfg.with_asyn_mode(AsynMode::Exact));
            if let Some(p) = exact.query(&q).path {
                prop_assert!(validate_path(graph.space(), &p, t, cfg.velocity).is_ok(),
                    "invalid ITG/A(Exact) path (seed {seed}, t {t})");
            }
            let faithful = AsynEngine::new(graph.clone(), cfg);
            if let Some(p) = faithful.query(&q).path {
                match validate_path(graph.space(), &p, t, cfg.velocity) {
                    Ok(()) => {}
                    Err(itspq_repro::core::PathViolation::DoorClosed { .. }) => {
                        // The paper's documented unsoundness: rule 1 only.
                    }
                    Err(v) => prop_assert!(false,
                        "ITG/A(Faithful) broke more than rule 1: {v} (seed {seed}, t {t})"),
                }
            }
        }
    }

    /// ITG/S and ITG/A in Exact mode are interchangeable.
    #[test]
    fn syn_equals_asyn_exact(seed in 0u64..500, t in arb_time()) {
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
        let exact = AsynEngine::new(
            graph.clone(),
            ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
        );
        let a = syn.query(&q).path.map(|p| p.length);
        let b = exact.query(&q).path.map(|p| p.length);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}"),
            (a, b) => prop_assert!(false, "outcome mismatch: {a:?} vs {b:?}"),
        }
    }

    /// When the paper-faithful ITG/A returns a path that is actually valid,
    /// a full-relaxation ITG/S search must find one at least as short (the
    /// valid relaxations form a superset).
    #[test]
    fn faithful_asyn_valid_paths_are_dominated(seed in 0u64..500, t in arb_time()) {
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        let faithful = AsynEngine::new(graph.clone(), ItspqConfig::default());
        if let Some(fp) = faithful.query(&q).path {
            if validate_path(graph.space(), &fp, t, WALKING_SPEED).is_ok() {
                let full = SynEngine::new(graph.clone(), ItspqConfig::full_relax());
                let sp = full.query(&q).path;
                prop_assert!(sp.is_some(), "valid ITG/A path missed by full ITG/S");
                prop_assert!(fp.length >= sp.unwrap().length - 1e-9);
            }
        }
    }

    /// Full relaxation dominates the paper's pruned expansion.
    #[test]
    fn full_relax_dominates_pruned(seed in 0u64..500, t in arb_time()) {
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        let pruned = SynEngine::new(graph.clone(), ItspqConfig::default()).query(&q).path;
        let full = SynEngine::new(graph.clone(), ItspqConfig::full_relax()).query(&q).path;
        if let Some(p) = &pruned {
            let f = full.as_ref().expect("FullRelax explores a superset");
            prop_assert!(f.length <= p.length + 1e-9,
                "FullRelax {} vs PaperPruned {}", f.length, p.length);
        }
    }

    /// Relation to the exhaustive oracle. The paper's no-waiting semantics
    /// are non-FIFO: a *longer* path can become valid by arriving after a
    /// door opens, and a Dijkstra-style search (the paper's and ours) prunes
    /// it — so the engine may miss paths the oracle finds (the
    /// "arrive-too-early" anomaly, demonstrated deterministically in
    /// `arrive_too_early_anomaly`). The sound half of the relation is an
    /// invariant: whatever the engine finds is valid, so the oracle must find
    /// something at least as short; and if the oracle proves no valid path
    /// exists, the engine cannot find one.
    #[test]
    fn engine_results_are_sound_wrt_oracle(seed in 0u64..200, t in arb_time()) {
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        let cfg = ItspqConfig::full_relax();
        let engine = SynEngine::new(graph.clone(), cfg).query(&q).path;
        let oracle = baselines::exhaustive_shortest(&graph, &q, &cfg, 10);
        if let Some(e) = &engine {
            let o = oracle.as_ref().expect("engine found a valid path; so must the oracle");
            prop_assert!(o.length <= e.length + 1e-6,
                "oracle {} worse than engine {}", o.length, e.length);
        }
        if oracle.is_none() {
            prop_assert!(engine.is_none(), "no valid path exists, engine returned one");
        }
    }

    /// Engines are deterministic functions of (venue, query).
    #[test]
    fn engines_are_deterministic(seed in 0u64..300, t in arb_time()) {
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
        let r1 = syn.query(&q);
        let r2 = syn.query(&q);
        prop_assert_eq!(r1.path, r2.path);
        prop_assert_eq!(r1.stats, r2.stats);
    }

    /// Path hop arrival timestamps increase monotonically and match the
    /// distance/velocity bookkeeping.
    #[test]
    fn hop_arrivals_are_monotone(seed in 0u64..300, t in arb_time()) {
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
        if let Some(p) = syn.query(&q).path {
            let mut last = p.departure;
            for hop in &p.hops {
                prop_assert!(hop.arrival >= last);
                let expect = p.departure + WALKING_SPEED.travel_time(hop.distance);
                prop_assert!((hop.arrival.seconds() - expect.seconds()).abs() < 1e-6);
                last = hop.arrival;
            }
            prop_assert!(p.arrival >= last);
            prop_assert!((p.duration().seconds()
                - WALKING_SPEED.travel_time(p.length).seconds()).abs() < 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Waiting invariants: unlimited waiting succeeds whenever the no-wait
    /// engine does, never arrives later, and every crossing happens while the
    /// door is open.
    #[test]
    fn waiting_dominates_no_wait(seed in 0u64..300, t in arb_time()) {
        use itspq_repro::core::waiting::{earliest_arrival, WaitPolicy};
        let (graph, pts) = venue_and_points(seed, 2);
        let q = Query::new(pts[0], pts[1], t);
        let cfg = ItspqConfig::full_relax();
        let engine = SynEngine::new(graph.clone(), cfg).query(&q).path;
        let waited = earliest_arrival(&graph, &q, &cfg, WaitPolicy::Unlimited);
        if let Some(p) = &engine {
            let w = waited.as_ref().expect("waiting explores a superset");
            prop_assert!(w.arrival.seconds() <= p.arrival.seconds() + 1e-6,
                "waiting arrived later ({} vs {})", w.arrival, p.arrival);
        }
        if let Some(w) = &waited {
            for hop in &w.hops {
                prop_assert!(graph.space().door(hop.door).atis.is_open_at(hop.crossed));
                prop_assert!(hop.crossed >= hop.reached);
            }
        }
    }

    /// One-to-many reachability lower-bounds every point query.
    #[test]
    fn reachability_bounds_queries(seed in 0u64..200, t in arb_time()) {
        use itspq_repro::core::one_to_many::reachability;
        let (graph, pts) = venue_and_points(seed, 2);
        let cfg = ItspqConfig::full_relax();
        let map = reachability(&graph, pts[0], t, &cfg);
        let q = Query::new(pts[0], pts[1], t);
        if let Some(p) = SynEngine::new(graph.clone(), cfg).query(&q).path {
            prop_assert!(p.length >= map.to_partition(pts[1].partition) - 1e-9,
                "query {} beat the reachability bound {}",
                p.length, map.to_partition(pts[1].partition));
        }
    }
}
