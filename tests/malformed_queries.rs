//! Regression tests: malformed queries surface as typed [`QueryError`]s —
//! and even unvalidated, a degenerate query must never panic a search.
//!
//! Motivation: the engines run on `VenueServer` worker threads, where a
//! panic poisons the whole batch. A NaN coordinate or an out-of-range
//! partition therefore has to be a *value* on every path: `try_query`
//! rejects it up front, and the raw `query` path (heap ordering, travel-time
//! projection, reconstruction) is total over non-finite distances.

use indoor_geom::Point;
use indoor_space::{paper_example, IndoorPoint, PartitionId};
use indoor_time::TimeOfDay;
use itspq_core::{AsynEngine, ItGraph, ItspqConfig, Query, QueryError, SynEngine, VenueServer};

fn nan_query(ex: &paper_example::PaperExample) -> Query {
    let src = IndoorPoint::new(ex.p3.partition, Point::new(f64::NAN, 2.0));
    Query::new(src, ex.p4, TimeOfDay::hm(12, 0))
}

#[test]
fn syn_try_query_rejects_nan_source() {
    let ex = paper_example::build();
    let engine = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
    let err = engine.try_query(&nan_query(&ex)).unwrap_err();
    assert!(
        matches!(
            err,
            QueryError::NonFinitePosition {
                endpoint: "source",
                ..
            }
        ),
        "unexpected error: {err:?}"
    );
    // The error formats usefully.
    assert!(err.to_string().contains("source"));
}

#[test]
fn asyn_try_query_rejects_infinite_target() {
    let ex = paper_example::build();
    let engine = AsynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
    let bad = IndoorPoint::new(ex.p4.partition, Point::new(f64::INFINITY, 0.0));
    let err = engine
        .try_query(&Query::new(ex.p3, bad, TimeOfDay::hm(12, 0)))
        .unwrap_err();
    assert!(matches!(
        err,
        QueryError::NonFinitePosition {
            endpoint: "target",
            ..
        }
    ));
}

#[test]
fn try_query_rejects_unknown_partition() {
    let ex = paper_example::build();
    let engine = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
    let bad = IndoorPoint::new(PartitionId(9_999), Point::new(1.0, 1.0));
    let err = engine
        .try_query(&Query::new(ex.p3, bad, TimeOfDay::hm(12, 0)))
        .unwrap_err();
    match err {
        QueryError::UnknownPartition {
            endpoint,
            index,
            num_partitions,
        } => {
            assert_eq!(endpoint, "target");
            assert_eq!(index, 9_999);
            assert_eq!(num_partitions, ex.space.num_partitions());
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn try_query_accepts_well_formed_queries() {
    let ex = paper_example::build();
    let engine = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
    let res = engine
        .try_query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)))
        .expect("well-formed query");
    assert!((res.path.expect("feasible at 9:00").length - 12.0).abs() < 1e-9);
}

#[test]
fn server_try_query_rejects_without_poisoning() {
    let ex = paper_example::build();
    let server = VenueServer::new(ItGraph::shared(ex.space.clone()));
    assert!(server.try_query(&nan_query(&ex)).is_err());
    // The server still answers well-formed queries afterwards.
    let ok = server
        .try_query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)))
        .expect("well-formed query");
    assert!(ok.path.is_some());
}

#[test]
fn unvalidated_nan_query_degrades_to_no_route_not_panic() {
    // Even bypassing validation, a NaN coordinate must not panic the search:
    // NaN distances lose every relaxation contest under the total order, so
    // the expansion simply never leaves the source partition.
    let ex = paper_example::build();
    let syn = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
    let asyn = AsynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
    let q = nan_query(&ex);
    assert!(syn.query(&q).path.is_none());
    assert!(asyn.query(&q).path.is_none());
}

#[test]
fn unvalidated_infinite_query_degrades_to_no_route_not_panic() {
    // An infinite coordinate projects an infinite travel time; the saturating
    // projection keeps it a value and `inf < inf` never improves a label.
    let ex = paper_example::build();
    let syn = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
    let src = IndoorPoint::new(ex.p3.partition, Point::new(f64::INFINITY, 2.0));
    let res = syn.query(&Query::new(src, ex.p4, TimeOfDay::hm(12, 0)));
    assert!(res.path.is_none());
}

#[test]
fn ksp_and_reachability_survive_nan_input() {
    let ex = paper_example::build();
    let g = ItGraph::new(ex.space.clone());
    let q = nan_query(&ex);
    assert!(itspq_core::k_shortest_paths(&g, &q, &ItspqConfig::full_relax(), 3).is_empty());
    let map = itspq_core::one_to_many::reachability(
        &g,
        q.source,
        TimeOfDay::hm(12, 0),
        &ItspqConfig::default(),
    );
    // Only the (degenerate) source partition is "reachable" at distance 0.
    assert_eq!(map.reachable_partitions(), 1);
}
