//! A deterministic demonstration of the **arrive-too-early anomaly** left
//! open by the paper's no-waiting semantics (DESIGN.md §6.4).
//!
//! Setup: two routes from `ps` to `pt`. The short one crosses door `gate`
//! which only opens at 8:00. Departing at 7:55, the short route arrives at
//! the gate *before* 8:00 — invalid. A longer detour arrives *after* 8:00 and
//! is perfectly valid. A Dijkstra-style search (the paper's Algorithm 1 with
//! either check) keeps only the shortest distance per door, rejects the gate
//! at its earliest arrival, and on this topology answers "no such routes",
//! while the exhaustive oracle proves a valid path exists.
//!
//! The waiting extension resolves the anomaly: wait at the gate until 8:00.

use itspq_repro::core::waiting::{earliest_arrival, WaitPolicy};
use itspq_repro::core::{baselines, validate_path, AsynMode};
use itspq_repro::geom::Point;
use itspq_repro::prelude::*;
use itspq_repro::space::Connection;

/// `ps` —(short hall / long hall)→ [gate room] —gate→ [target room].
///
/// Both halls lead to the same gate room; the gate door is the only way into
/// the target. Short hall: 100 m to the gate. Long hall: 450 m to the gate.
/// At 5 km/h, 100 m ≈ 72 s and 450 m ≈ 324 s. Departing at 7:55:30, the short
/// route reaches the gate at ≈7:56:42 (closed), the long one at ≈8:00:54
/// (open).
fn build() -> (IndoorSpace, IndoorPoint, IndoorPoint) {
    let mut b = VenueBuilder::new();
    let start = b.add_partition("start", PartitionKind::Public);
    let short_hall = b.add_partition("short hall", PartitionKind::Public);
    let long_hall = b.add_partition("long hall", PartitionKind::Public);
    let gate_room = b.add_partition("gate room", PartitionKind::Public);
    let target = b.add_partition("target", PartitionKind::Public);

    let always = AtiList::always_open();
    let d_short = b.add_door(
        "short-in",
        DoorKind::Public,
        always.clone(),
        Point::new(10.0, 10.0),
    );
    b.connect(d_short, Connection::TwoWay(start, short_hall))
        .unwrap();
    let d_long = b.add_door(
        "long-in",
        DoorKind::Public,
        always.clone(),
        Point::new(10.0, -10.0),
    );
    b.connect(d_long, Connection::TwoWay(start, long_hall))
        .unwrap();

    // Both halls end at the gate room.
    let d_short_out = b.add_door(
        "short-out",
        DoorKind::Public,
        always.clone(),
        Point::new(100.0, 10.0),
    );
    b.connect(d_short_out, Connection::TwoWay(short_hall, gate_room))
        .unwrap();
    let d_long_out = b.add_door(
        "long-out",
        DoorKind::Public,
        always.clone(),
        Point::new(100.0, -10.0),
    );
    b.connect(d_long_out, Connection::TwoWay(long_hall, gate_room))
        .unwrap();
    // The long hall really is long: override its interior distance.
    b.set_distance(long_hall, d_long, d_long_out, 430.0)
        .unwrap();

    let gate = b.add_door(
        "gate",
        DoorKind::Public,
        AtiList::hm(&[((8, 0), (20, 0))]),
        Point::new(110.0, 0.0),
    );
    b.connect(gate, Connection::TwoWay(gate_room, target))
        .unwrap();

    let space = b.build().unwrap();
    let ps = IndoorPoint::new(start, Point::new(0.0, 0.0));
    let pt = IndoorPoint::new(target, Point::new(115.0, 0.0));
    (space, ps, pt)
}

#[test]
fn dijkstra_style_engines_miss_the_late_path() {
    let (space, ps, pt) = build();
    let graph = ItGraph::new(space);
    let q = Query::new(ps, pt, TimeOfDay::hms(7, 55, 30));

    // ITG/S (either expansion policy) and the sound ITG/A(Exact) answer
    // "no such routes": Dijkstra keeps only the shortest distance per door.
    for cfg in [ItspqConfig::default(), ItspqConfig::full_relax()] {
        assert!(SynEngine::new(graph.clone(), cfg).query(&q).path.is_none());
        let exact = AsynEngine::new(graph.clone(), cfg.with_asyn_mode(AsynMode::Exact));
        assert!(exact.query(&q).path.is_none());
    }

    // Yet a valid (longer) path exists: the oracle takes the long hall.
    let oracle = baselines::exhaustive_shortest(&graph, &q, &ItspqConfig::default(), 8)
        .expect("the detour is valid");
    assert!(oracle
        .doors()
        .any(|d| graph.space().door(d).name == "long-out"));
    validate_path(graph.space(), &oracle, q.time, WALKING_SPEED).unwrap();

    // Sanity: five minutes later the gate is open and the engine takes the
    // short route, which is now valid.
    let q2 = Query::new(ps, pt, TimeOfDay::hm(8, 1));
    let path = SynEngine::new(graph.clone(), ItspqConfig::default())
        .query(&q2)
        .path
        .expect("short route valid once the gate is open");
    assert!(path
        .doors()
        .any(|d| graph.space().door(d).name == "short-out"));
    assert!(path.length < oracle.length);
}

#[test]
fn faithful_asyn_accepts_an_invalid_path_here() {
    // A second face of the same corner, faithful to the paper's Algorithm 4:
    // relaxing the LONG hall's exit (arrival 8:00:54) advances the single
    // current graph past the 8:00 checkpoint; the SHORT route's later
    // relaxation of the gate (arrival 7:56:53) is then judged against the
    // 8:00 interval and accepted — although the gate is closed at 7:56:53.
    let (space, ps, pt) = build();
    let graph = ItGraph::new(space);
    let q = Query::new(ps, pt, TimeOfDay::hms(7, 55, 30));
    let faithful = AsynEngine::new(graph.clone(), ItspqConfig::default());
    let res = faithful.query(&q);
    assert!(
        res.stats.graph_updates >= 1,
        "the premature update must occur"
    );
    let path = res
        .path
        .expect("the paper's ITG/A accepts the short route here");
    let verdict = validate_path(graph.space(), &path, q.time, WALKING_SPEED);
    assert!(
        matches!(
            verdict,
            Err(itspq_repro::core::PathViolation::DoorClosed { .. })
        ),
        "the accepted path crosses the still-closed gate: {verdict:?}"
    );
}

#[test]
fn waiting_extension_resolves_the_anomaly() {
    let (space, ps, pt) = build();
    let graph = ItGraph::new(space);
    let q = Query::new(ps, pt, TimeOfDay::hms(7, 55, 30));
    let timed = earliest_arrival(&graph, &q, &ItspqConfig::default(), WaitPolicy::Unlimited)
        .expect("waiting at the gate until 8:00 works");
    // Earliest arrival takes the SHORT route and waits at the gate, beating
    // the oracle's no-wait detour on arrival time.
    assert!(timed
        .hops
        .iter()
        .any(|h| graph.space().door(h.door).name == "short-out"));
    assert!(timed.total_wait.seconds() > 0.0);
    let oracle = baselines::exhaustive_shortest(&graph, &q, &ItspqConfig::default(), 8).unwrap();
    assert!(
        timed.arrival < oracle.arrival,
        "waiting beats detouring here"
    );
}
