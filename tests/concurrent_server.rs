//! The concurrent batched front-end on the synthetic mall: worker-pool
//! answers must be identical to single-threaded ITG/S, answer for answer,
//! and the shared reduced-graph cache must be populated once per checkpoint
//! interval — never once per worker.

use std::sync::Arc;

use itspq_repro::core::server::{ServeMethod, VenueServer};
use itspq_repro::prelude::*;
use itspq_repro::synthetic::{
    build_mall, generate_queries, HoursConfig, MallConfig, QueryGenConfig, ShopHours,
    SourceDistribution,
};

fn mall_graph(cfg: MallConfig) -> Arc<ItGraph> {
    let hours = ShopHours::sample(&HoursConfig::default().with_t_size(8));
    ItGraph::shared(build_mall(&cfg, &hours))
}

/// A mixed-time workload: several departure times, some minutes before
/// checkpoints so walks cross interval boundaries mid-route.
fn mall_workload(graph: &ItGraph, per_time: usize, delta: f64) -> Vec<Query> {
    let mut queries = Vec::new();
    for (i, (h, m)) in [(8, 50), (12, 0), (15, 55), (19, 30), (22, 40)]
        .into_iter()
        .enumerate()
    {
        queries.extend(
            generate_queries(
                graph,
                &QueryGenConfig::default()
                    .with_count(per_time)
                    .with_delta(delta)
                    .with_time(TimeOfDay::hm(h, m))
                    .with_seed(40 + i as u64),
            )
            .into_iter()
            .map(|g| g.query),
        );
    }
    queries
}

#[test]
fn four_workers_match_sequential_itg_s_on_the_mall() {
    let graph = mall_graph(MallConfig::paper_default());
    let queries = mall_workload(&graph, 8, 1500.0);
    assert_eq!(queries.len(), 40);

    let server = VenueServer::new(graph.clone()).with_workers(4);
    let batch = server.query_batch(&queries);

    let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
    let mut found = 0;
    for (q, a) in queries.iter().zip(&batch) {
        let s = syn.query(q);
        assert_eq!(
            s.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
            a.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
            "batched answer disagrees with ITG/S at {}",
            q.time
        );
        if let (Some(sp), Some(ap)) = (&s.path, &a.path) {
            assert!((sp.length - ap.length).abs() < 1e-9);
            found += 1;
        }
    }
    assert!(found > 20, "most mall queries should route, got {found}/40");
}

#[test]
fn external_threads_hammering_one_server_agree_with_itg_s() {
    // Not query_batch: four caller-managed threads all using `query(&self)`
    // on one shared server, the "many front-end handlers" deployment shape.
    let graph = mall_graph(MallConfig::single_floor());
    let queries = mall_workload(&graph, 6, 600.0);
    let server = VenueServer::new(graph.clone());

    let per_thread: Vec<Vec<Option<f64>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    queries
                        .iter()
                        .map(|q| server.query(q).path.map(|p| p.length))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let syn = SynEngine::new(graph, ItspqConfig::default());
    let expected: Vec<Option<f64>> = queries
        .iter()
        .map(|q| syn.query(q).path.map(|p| p.length))
        .collect();
    for lengths in &per_thread {
        assert_eq!(lengths, &expected);
    }
}

#[test]
fn reduced_graph_cache_is_populated_once_not_per_worker() {
    let graph = mall_graph(MallConfig::single_floor());
    let queries = mall_workload(&graph, 6, 600.0);
    let server = VenueServer::new(graph.clone()).with_workers(4);

    // Cold server: the batch builds each touched interval exactly once,
    // server-wide, even with four workers missing concurrently.
    let answers = server.query_batch(&queries);
    let built: usize = answers.iter().map(|r| r.stats.views_built).sum();
    assert!(built >= 2, "the mixed-time batch touches several intervals");
    assert_eq!(
        built,
        server.cached_views(),
        "views built across all workers must equal distinct cached intervals"
    );
    assert!(server.cached_views() <= graph.space().checkpoints().len());

    // Warm server: a second pass builds nothing at all.
    let again = server.query_batch(&queries);
    assert!(again.iter().all(|r| r.stats.views_built == 0));
}

#[test]
fn threads_submitting_overlapping_skewed_batches_stay_in_input_order() {
    // The shared-execution deployment shape: many front-end handlers each
    // submitting zipf-skewed batches to one server whose planner groups
    // duplicate (source, time) pairs into single multi-target searches.
    let graph = mall_graph(MallConfig::single_floor());
    let sharing_config = |workers| ServerConfig {
        workers,
        method: ServeMethod::Asyn,
        strategy: BatchStrategy::Shared,
        itspq: ItspqConfig::full_relax(),
        ..ServerConfig::default()
    };

    // Zipf-skewed sources from a hot pool of 3: heavy duplication makes the
    // planner form multi-member groups in every batch.
    let batches: Vec<Vec<Query>> = [(9, 0), (12, 0), (18, 30), (21, 15)]
        .into_iter()
        .enumerate()
        .map(|(i, (h, m))| {
            generate_queries(
                &graph,
                &QueryGenConfig::default()
                    .with_count(12)
                    .with_delta(600.0)
                    .with_time(TimeOfDay::hm(h, m))
                    .with_seed(90 + i as u64)
                    .with_source(SourceDistribution::Zipf {
                        exponent: 1.5,
                        pool: 3,
                    }),
            )
            .into_iter()
            .map(|g| g.query)
            .collect()
        })
        .collect();

    let server = VenueServer::with_config(graph.clone(), sharing_config(4));
    for b in &batches {
        assert!(
            server.plan(b, false).shared_queries() >= 2,
            "zipf-skewed batches must actually form shared groups"
        );
    }

    // Per-query reference answers, one per (batch, input index).
    let reference: Vec<Vec<Option<Path>>> = batches
        .iter()
        .map(|b| b.iter().map(|q| server.query(q).path).collect())
        .collect();

    // Four external threads hammer the one server with overlapping batches,
    // each starting at a different rotation so distinct batches are in
    // flight simultaneously; every result must land at its input index.
    std::thread::scope(|scope| {
        for t in 0..4 {
            let (server, batches, reference) = (&server, &batches, &reference);
            scope.spawn(move || {
                for round in 0..batches.len() {
                    let b = (t + round) % batches.len();
                    let got = server.query_batch(&batches[b]);
                    assert_eq!(got.len(), batches[b].len());
                    for (i, r) in got.iter().enumerate() {
                        assert_eq!(
                            r.path, reference[b][i],
                            "thread {t} batch {b} answer out of place at {i}"
                        );
                    }
                }
            });
        }
    });

    // Worker-count independence: 1 and 2 workers agree with the 4-worker
    // answers (and with the per-query reference) path for path.
    for workers in [1, 2] {
        let alt = VenueServer::with_config(graph.clone(), sharing_config(workers));
        for (b, expect) in batches.iter().zip(&reference) {
            let got = alt.query_batch(b);
            for (r, e) in got.iter().zip(expect) {
                assert_eq!(&r.path, e);
            }
        }
    }
}

#[test]
fn syn_method_needs_no_cache_and_still_agrees() {
    let graph = mall_graph(MallConfig::single_floor());
    let queries = mall_workload(&graph, 4, 600.0);
    let syn_server = VenueServer::new(graph.clone())
        .with_workers(4)
        .with_method(ServeMethod::Syn);
    let asyn_server = VenueServer::new(graph).with_workers(4);
    let s = syn_server.query_batch(&queries);
    let a = asyn_server.query_batch(&queries);
    for (x, y) in s.iter().zip(&a) {
        assert_eq!(
            x.path.as_ref().map(|p| p.length),
            y.path.as_ref().map(|p| p.length)
        );
    }
    assert_eq!(syn_server.cached_views(), 0);
    assert!(asyn_server.cached_views() > 0);
}
