//! Property-based tests for the temporal substrate.

use indoor_time::{AtiList, CheckpointSet, Interval, TimeOfDay, Timestamp, SECONDS_PER_DAY};
use proptest::prelude::*;

fn arb_time() -> impl Strategy<Value = TimeOfDay> {
    (0u32..86_400).prop_map(|s| TimeOfDay::from_seconds(f64::from(s)).unwrap())
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0u32..86_399, 1u32..=86_400).prop_filter_map("non-empty interval", |(a, len)| {
        let end = (a + len).min(86_400);
        if end <= a {
            return None;
        }
        Some(
            Interval::new(
                TimeOfDay::from_seconds(f64::from(a)).unwrap(),
                TimeOfDay::from_seconds(f64::from(end)).unwrap(),
            )
            .unwrap(),
        )
    })
}

fn arb_ati() -> impl Strategy<Value = AtiList> {
    prop::collection::vec(arb_interval(), 0..6)
        .prop_map(|ivs| AtiList::from_intervals(ivs).unwrap())
}

proptest! {
    /// Normalised ATI lists are sorted, disjoint and non-adjacent.
    #[test]
    fn ati_normalisation_invariants(atis in arb_ati()) {
        let ivs = atis.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].end() < w[1].start(),
                "intervals must be disjoint and non-adjacent: {} vs {}", w[0], w[1]);
        }
    }

    /// Membership in the normalised list equals membership in any source interval.
    #[test]
    fn ati_membership_matches_sources(ivs in prop::collection::vec(arb_interval(), 0..6),
                                      t in arb_time()) {
        let atis = AtiList::from_intervals(ivs.clone()).unwrap();
        let expected = ivs.iter().any(|iv| iv.contains(t));
        prop_assert_eq!(atis.is_open(t), expected);
    }

    /// Total open time is preserved (merging never loses or duplicates time).
    #[test]
    fn ati_open_seconds_bounded(ivs in prop::collection::vec(arb_interval(), 0..6)) {
        let atis = AtiList::from_intervals(ivs.clone()).unwrap();
        let naive_sum: f64 = ivs.iter().map(|iv| iv.duration_seconds()).sum();
        prop_assert!(atis.open_seconds() <= naive_sum + 1e-9);
        prop_assert!(atis.open_seconds() <= SECONDS_PER_DAY + 1e-9);
        if let Some(max_single) = ivs
            .iter()
            .map(|iv| iv.duration_seconds())
            .max_by(|a, b| a.partial_cmp(b).unwrap())
        {
            prop_assert!(atis.open_seconds() >= max_single - 1e-9);
        }
    }

    /// The door state is constant strictly inside checkpoint intervals.
    #[test]
    fn state_constant_between_checkpoints(atis in arb_ati(), t in arb_time()) {
        let cps = CheckpointSet::from_atis([&atis]);
        let (lo, hi) = cps.interval_of(t);
        let state = atis.is_open(t);
        // Probe a few instants in the same checkpoint interval.
        let hi_s = hi.map_or(SECONDS_PER_DAY, |h| h.seconds());
        for frac in [0.1, 0.5, 0.9] {
            let probe = lo.seconds() + (hi_s - lo.seconds()) * frac;
            let probe_t = TimeOfDay::from_seconds(probe.min(SECONDS_PER_DAY - 1.0)).unwrap();
            if probe_t >= lo && (hi.is_none() || probe_t < hi.unwrap()) {
                prop_assert_eq!(atis.is_open(probe_t), state,
                    "state changed inside checkpoint interval [{}, {:?}) at {}", lo, hi, probe_t);
            }
        }
    }

    /// previous(t) <= t < next(t) whenever next exists.
    #[test]
    fn checkpoint_bracketing(times in prop::collection::vec(arb_time(), 0..12), t in arb_time()) {
        let cps = CheckpointSet::from_times(times);
        let prev = cps.previous(t);
        prop_assert!(prev <= t);
        if let Some(next) = cps.next(t) {
            prop_assert!(t < next);
            // No checkpoint lies strictly between prev and next.
            for &cp in cps.times() {
                prop_assert!(!(prev < cp && cp < next));
            }
        }
    }

    /// next_instant is strictly increasing and lands on a checkpoint clock time.
    #[test]
    fn next_instant_is_future_checkpoint(times in prop::collection::vec(arb_time(), 0..12),
                                         secs in 0.0f64..2.0 * SECONDS_PER_DAY) {
        let cps = CheckpointSet::from_times(times);
        let ts = Timestamp::from_seconds(secs).unwrap();
        let ni = cps.next_instant(ts);
        prop_assert!(ni > ts);
        let clock = ni.time_of_day();
        prop_assert!(cps.times().contains(&clock),
            "next_instant clock time {} not a checkpoint", clock);
    }

    /// Timestamp::time_of_day is idempotent under day shifts.
    #[test]
    fn timestamp_day_reduction(secs in 0.0f64..SECONDS_PER_DAY) {
        let t0 = Timestamp::from_seconds(secs).unwrap();
        let t1 = Timestamp::from_seconds(secs + SECONDS_PER_DAY).unwrap();
        prop_assert!((t0.time_of_day().seconds() - t1.time_of_day().seconds()).abs() < 1e-6);
    }

    /// Serde round-trip preserves ATI lists exactly.
    #[test]
    fn ati_serde_round_trip(atis in arb_ati()) {
        let json = serde_json::to_string(&atis).unwrap();
        let back: AtiList = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(atis, back);
    }
}
