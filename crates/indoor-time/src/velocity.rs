//! Walking-speed model.

use serde::{Deserialize, Serialize};

use crate::{DurationSecs, TimeError};

/// A walking velocity in metres per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Velocity(f64);

/// The paper's human average walking speed: 5 km/h.
pub const WALKING_SPEED: Velocity = Velocity(5000.0 / 3600.0);

impl Velocity {
    /// Creates a velocity from metres per second.
    ///
    /// # Errors
    /// Returns [`TimeError::InvalidVelocity`] unless `mps` is finite and
    /// positive.
    pub fn from_mps(mps: f64) -> Result<Self, TimeError> {
        if !mps.is_finite() || mps <= 0.0 {
            return Err(TimeError::InvalidVelocity(mps));
        }
        Ok(Velocity(mps))
    }

    /// Creates a velocity from kilometres per hour.
    ///
    /// # Errors
    /// Returns [`TimeError::InvalidVelocity`] unless `kmh` is finite and
    /// positive.
    pub fn from_kmh(kmh: f64) -> Result<Self, TimeError> {
        Self::from_mps(kmh * 1000.0 / 3600.0)
    }

    /// Metres per second.
    #[must_use]
    pub fn mps(self) -> f64 {
        self.0
    }

    /// Kilometres per hour.
    #[must_use]
    pub fn kmh(self) -> f64 {
        self.0 * 3.6
    }

    /// The walking time `Δt = dist / velocity` for a distance in metres.
    ///
    /// Total over all inputs via [`DurationSecs::saturating`]: negative and
    /// NaN distances take zero time, an infinite (unreachable) distance
    /// takes [`DurationSecs::MAX_SATURATED`] — an arrival past every ATI,
    /// so the projection rejects the door instead of panicking the search.
    #[must_use]
    pub fn travel_time(self, distance_m: f64) -> DurationSecs {
        DurationSecs::saturating(distance_m / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_walking_speed() {
        assert!((WALKING_SPEED.kmh() - 5.0).abs() < 1e-12);
        assert!((WALKING_SPEED.mps() - 1.388_888_9).abs() < 1e-6);
    }

    #[test]
    fn travel_time() {
        // 5 km at 5 km/h takes one hour.
        assert!((WALKING_SPEED.travel_time(5000.0).seconds() - 3600.0).abs() < 1e-9);
        assert_eq!(WALKING_SPEED.travel_time(0.0).seconds(), 0.0);
        assert_eq!(WALKING_SPEED.travel_time(-3.0).seconds(), 0.0);
    }

    #[test]
    fn travel_time_is_total_over_degenerate_distances() {
        assert_eq!(
            WALKING_SPEED.travel_time(f64::INFINITY),
            DurationSecs::MAX_SATURATED
        );
        assert_eq!(WALKING_SPEED.travel_time(f64::NAN), DurationSecs::ZERO);
    }

    #[test]
    fn constructors_validate() {
        assert!(Velocity::from_mps(0.0).is_err());
        assert!(Velocity::from_mps(-1.0).is_err());
        assert!(Velocity::from_mps(f64::NAN).is_err());
        assert!((Velocity::from_kmh(3.6).unwrap().mps() - 1.0).abs() < 1e-12);
    }
}
