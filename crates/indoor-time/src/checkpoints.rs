//! Checkpoint sets: the distinct open/close instants of a venue.
//!
//! The paper calls the time points at which any door opens or closes
//! *checkpoints*; the indoor topology is constant between two consecutive
//! checkpoints. `CheckpointSet` provides the `Find_Previous_Checkpoint` and
//! `Find_Next_Checkpoint` primitives of Algorithms 3 and 4.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AtiList, TimeOfDay, Timestamp};

/// The sorted set `T` of distinct checkpoints of a venue.
///
/// Midnight (0:00) is always a member so that every instant of the day has a
/// previous checkpoint, matching the paper's piecewise-constant topology view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointSet {
    /// Sorted, de-duplicated checkpoints. Invariant: non-empty, first is 0:00,
    /// all < 24:00.
    times: Vec<TimeOfDay>,
}

impl CheckpointSet {
    /// Builds the checkpoint set from explicit time points. Duplicates are
    /// removed, 24:00 boundaries are dropped (they alias 0:00) and midnight is
    /// inserted if missing.
    #[must_use]
    pub fn from_times(mut times: Vec<TimeOfDay>) -> Self {
        times.retain(|t| *t < TimeOfDay::END_OF_DAY);
        times.push(TimeOfDay::MIDNIGHT);
        times.sort();
        times.dedup();
        CheckpointSet { times }
    }

    /// Collects every interval boundary of the given ATI lists into a
    /// checkpoint set (the paper's construction of `T` from door ATIs).
    pub fn from_atis<'a>(atis: impl IntoIterator<Item = &'a AtiList>) -> Self {
        let times = atis
            .into_iter()
            .flat_map(|a| a.boundaries())
            .collect::<Vec<_>>();
        Self::from_times(times)
    }

    /// The checkpoints in ascending order (first is always 0:00).
    #[must_use]
    pub fn times(&self) -> &[TimeOfDay] {
        &self.times
    }

    /// Number of checkpoints, counting the implicit midnight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// A checkpoint set never is empty (midnight is implicit), so this always
    /// returns `false`; provided for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the interval (between consecutive checkpoints) containing `t`.
    #[must_use]
    pub fn interval_index(&self, t: TimeOfDay) -> usize {
        // partition_point returns the count of checkpoints <= t; midnight
        // guarantees at least one.
        self.times.partition_point(|cp| *cp <= t).saturating_sub(1)
    }

    /// `Find_Previous_Checkpoint(t, T)`: the latest checkpoint at or before
    /// clock time `t` (always defined thanks to the implicit midnight).
    #[must_use]
    pub fn previous(&self, t: TimeOfDay) -> TimeOfDay {
        self.times[self.interval_index(t)]
    }

    /// `Find_Next_Checkpoint(cp, T)`: the earliest checkpoint strictly after
    /// `t`, or `None` if `t` falls in the last interval of the day.
    #[must_use]
    pub fn next(&self, t: TimeOfDay) -> Option<TimeOfDay> {
        let idx = self.times.partition_point(|cp| *cp <= t);
        self.times.get(idx).copied()
    }

    /// The timeline instant of the next checkpoint strictly after timestamp
    /// `ts`, looking past midnight into following days. Always defined because
    /// midnight recurs daily.
    #[must_use]
    pub fn next_instant(&self, ts: Timestamp) -> Timestamp {
        let day_base = f64::from(ts.day_offset()) * crate::SECONDS_PER_DAY;
        match self.next(ts.time_of_day()) {
            Some(cp) => Timestamp::from_seconds(day_base + cp.seconds()),
            // Wrap to the first checkpoint (midnight) of the next day.
            None => Timestamp::from_seconds(day_base + crate::SECONDS_PER_DAY),
        }
        // itspq-lint: allow(no-panic-in-lib, "day_base and checkpoint offsets are finite and non-negative by construction of TimeOfDay")
        .expect("checkpoint instants are finite and non-negative")
    }

    /// The half-open interval `[previous(t), next(t))` of constant topology
    /// containing `t`; the end is `None` in the last interval of the day.
    #[must_use]
    pub fn interval_of(&self, t: TimeOfDay) -> (TimeOfDay, Option<TimeOfDay>) {
        (self.previous(t), self.next(t))
    }

    /// Interval-identity witness: whether two timeline instants fall into the
    /// *same* constant-topology interval — same day **and** same checkpoint
    /// interval within that day.
    ///
    /// This is the exact condition under which every temporal-variation
    /// verdict transfers from one instant to the other: door open/closed
    /// status, the reduced graph of the interval, and the side of every
    /// checkpoint instant on the whole timeline are all constant across a
    /// `[previous, next)` interval. Shared batch execution uses it to certify
    /// that a query replayed at a shifted arrival time makes the identical
    /// `TV_Check` decisions.
    #[must_use]
    pub fn same_topology_interval(&self, a: Timestamp, b: Timestamp) -> bool {
        a.day_offset() == b.day_offset()
            && self.interval_index(a.time_of_day()) == self.interval_index(b.time_of_day())
    }

    /// The margin (in seconds) from `ts` to the next checkpoint instant on
    /// the timeline: how far an arrival can slip later without leaving its
    /// constant-topology interval. Always strictly positive (`next_instant`
    /// is strictly after `ts`).
    #[must_use]
    pub fn margin_to_next(&self, ts: Timestamp) -> f64 {
        (self.next_instant(ts) - ts).seconds()
    }

    /// The half-open timeline window `[lo, hi)` — in raw timeline seconds —
    /// of the constant-topology interval containing `ts`: `lo` is the
    /// instant of the latest checkpoint at or before `ts` on `ts`'s day,
    /// `hi` the instant of the next checkpoint after it (next-day midnight
    /// in the day's last interval, exactly as [`CheckpointSet::next_instant`]
    /// computes it).
    ///
    /// For finite timestamps this is the *membership form* of
    /// [`CheckpointSet::same_topology_interval`]:
    ///
    /// `same_topology_interval(a, b)  ⟺  lo(a) <= b.seconds() < hi(a)`
    ///
    /// (same day offset and same within-day interval index on the left;
    /// the equivalence is pinned by tests, including across the midnight
    /// wrap). Replay verification precomputes these bounds once per recorded
    /// relaxation so each member's interval-identity check is two `f64`
    /// comparisons instead of two binary searches. The margin of
    /// [`CheckpointSet::margin_to_next`] is `hi - ts.seconds()` for free.
    ///
    /// Degenerate (non-finite) timestamps return an empty window, so no
    /// instant — not even the input itself — certifies against them.
    #[must_use]
    pub fn timeline_interval(&self, ts: Timestamp) -> (f64, f64) {
        let day_base = f64::from(ts.day_offset()) * crate::SECONDS_PER_DAY;
        let tod = ts.time_of_day();
        let lo = day_base + self.previous(tod).seconds();
        let hi = match self.next(tod) {
            Some(cp) => day_base + cp.seconds(),
            // Wrap to the first checkpoint (midnight) of the next day.
            None => day_base + crate::SECONDS_PER_DAY,
        };
        (lo, hi)
    }
}

impl fmt::Display for CheckpointSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.times.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtiList;

    fn sample() -> CheckpointSet {
        CheckpointSet::from_times(vec![
            TimeOfDay::hm(8, 0),
            TimeOfDay::hm(16, 0),
            TimeOfDay::hm(9, 0),
            TimeOfDay::hm(8, 0), // duplicate
        ])
    }

    #[test]
    fn construction_dedups_and_inserts_midnight() {
        let cps = sample();
        assert_eq!(
            cps.times(),
            &[
                TimeOfDay::MIDNIGHT,
                TimeOfDay::hm(8, 0),
                TimeOfDay::hm(9, 0),
                TimeOfDay::hm(16, 0)
            ]
        );
        assert_eq!(cps.len(), 4);
        assert!(!cps.is_empty());
    }

    #[test]
    fn from_atis_collects_boundaries() {
        let a = AtiList::hm(&[((8, 0), (16, 0))]);
        let b = AtiList::hm(&[((0, 0), (6, 0)), ((6, 30), (23, 0))]);
        let cps = CheckpointSet::from_atis([&a, &b]);
        assert_eq!(
            cps.times(),
            &[
                TimeOfDay::MIDNIGHT,
                TimeOfDay::hm(6, 0),
                TimeOfDay::hm(6, 30),
                TimeOfDay::hm(8, 0),
                TimeOfDay::hm(16, 0),
                TimeOfDay::hm(23, 0),
            ]
        );
    }

    #[test]
    fn always_open_contributes_only_midnight() {
        let cps = CheckpointSet::from_atis([&AtiList::always_open()]);
        assert_eq!(cps.times(), &[TimeOfDay::MIDNIGHT]);
    }

    #[test]
    fn previous_and_next() {
        let cps = sample();
        assert_eq!(cps.previous(TimeOfDay::hm(7, 59)), TimeOfDay::MIDNIGHT);
        assert_eq!(cps.previous(TimeOfDay::hm(8, 0)), TimeOfDay::hm(8, 0));
        assert_eq!(cps.previous(TimeOfDay::hm(12, 0)), TimeOfDay::hm(9, 0));
        assert_eq!(cps.next(TimeOfDay::hm(8, 0)), Some(TimeOfDay::hm(9, 0)));
        assert_eq!(cps.next(TimeOfDay::hm(12, 0)), Some(TimeOfDay::hm(16, 0)));
        assert_eq!(cps.next(TimeOfDay::hm(16, 0)), None);
        assert_eq!(cps.next(TimeOfDay::hm(23, 0)), None);
    }

    #[test]
    fn interval_index_partitions_day() {
        let cps = sample();
        assert_eq!(cps.interval_index(TimeOfDay::MIDNIGHT), 0);
        assert_eq!(cps.interval_index(TimeOfDay::hm(8, 30)), 1);
        assert_eq!(cps.interval_index(TimeOfDay::hm(9, 0)), 2);
        assert_eq!(cps.interval_index(TimeOfDay::hm(23, 59)), 3);
    }

    #[test]
    fn next_instant_wraps_to_next_day() {
        let cps = sample();
        let late = Timestamp::from_time_of_day(TimeOfDay::hm(20, 0));
        assert_eq!(cps.next_instant(late).seconds(), crate::SECONDS_PER_DAY);
        let morning = Timestamp::from_time_of_day(TimeOfDay::hm(3, 0));
        assert_eq!(cps.next_instant(morning).seconds(), 8.0 * 3600.0);
        // Next day: 1d + 3:00 -> 1d + 8:00.
        let next_day = Timestamp::from_seconds(crate::SECONDS_PER_DAY + 3.0 * 3600.0).unwrap();
        assert_eq!(
            cps.next_instant(next_day).seconds(),
            crate::SECONDS_PER_DAY + 8.0 * 3600.0
        );
    }

    #[test]
    fn same_topology_interval_witnesses_identity() {
        let cps = sample(); // checkpoints at 0:00, 8:00, 9:00, 16:00
        let ts = |t: TimeOfDay| Timestamp::from_time_of_day(t);
        // Same interval, same day.
        assert!(cps.same_topology_interval(ts(TimeOfDay::hm(10, 0)), ts(TimeOfDay::hm(15, 59))));
        // Reflexive on boundaries.
        assert!(cps.same_topology_interval(ts(TimeOfDay::hm(8, 0)), ts(TimeOfDay::hm(8, 0))));
        // Crossing a checkpoint breaks the witness.
        assert!(!cps.same_topology_interval(ts(TimeOfDay::hm(8, 59)), ts(TimeOfDay::hm(9, 0))));
        // Same clock interval on different days is *not* the same instant set.
        let next_day = Timestamp::from_seconds(crate::SECONDS_PER_DAY + 10.0 * 3600.0).unwrap();
        assert!(!cps.same_topology_interval(ts(TimeOfDay::hm(10, 0)), next_day));
        let next_day_too = Timestamp::from_seconds(crate::SECONDS_PER_DAY + 11.0 * 3600.0).unwrap();
        assert!(cps.same_topology_interval(next_day, next_day_too));
    }

    #[test]
    fn margin_to_next_is_positive_and_exact() {
        let cps = sample();
        let at = Timestamp::from_time_of_day(TimeOfDay::hm(8, 30));
        assert!((cps.margin_to_next(at) - 1800.0).abs() < 1e-9);
        // Exactly on a checkpoint: the margin spans the whole next interval.
        let on = Timestamp::from_time_of_day(TimeOfDay::hm(9, 0));
        assert!((cps.margin_to_next(on) - 7.0 * 3600.0).abs() < 1e-9);
        // Last interval of the day wraps to next-day midnight.
        let late = Timestamp::from_time_of_day(TimeOfDay::hm(20, 0));
        assert!((cps.margin_to_next(late) - 4.0 * 3600.0).abs() < 1e-9);
        assert!(cps.margin_to_next(late) > 0.0);
    }

    #[test]
    fn timeline_interval_is_membership_form_of_same_topology_interval() {
        let cps = sample(); // checkpoints at 0:00, 8:00, 9:00, 16:00
        let day = crate::SECONDS_PER_DAY;
        let anchors = [
            Timestamp::from_time_of_day(TimeOfDay::hm(0, 0)),
            Timestamp::from_time_of_day(TimeOfDay::hm(8, 30)),
            Timestamp::from_time_of_day(TimeOfDay::hm(9, 0)),
            Timestamp::from_time_of_day(TimeOfDay::hm(20, 0)), // last interval: wraps
            Timestamp::from_seconds(day + 10.0 * 3600.0).unwrap(), // next day
        ];
        let probes: Vec<Timestamp> = (0..2 * 24 * 4)
            .map(|q| Timestamp::from_seconds(f64::from(q) * 900.0).unwrap())
            .collect();
        for a in anchors {
            let (lo, hi) = cps.timeline_interval(a);
            assert!(
                lo <= a.seconds() && a.seconds() < hi,
                "window contains its anchor"
            );
            // Bit-exact margin agreement: both sides compute
            // `day_base + checkpoint.seconds() - ts.seconds()`.
            assert_eq!(cps.margin_to_next(a), hi - a.seconds());
            for &b in &probes {
                assert_eq!(
                    cps.same_topology_interval(a, b),
                    lo <= b.seconds() && b.seconds() < hi,
                    "membership form diverges at anchor {a:?}, probe {b:?}"
                );
            }
        }
        // Day wrap: 20:00's window closes at next-day midnight exactly.
        let (_, hi) = cps.timeline_interval(Timestamp::from_time_of_day(TimeOfDay::hm(20, 0)));
        assert_eq!(hi, day);
    }

    #[test]
    fn interval_of() {
        let cps = sample();
        assert_eq!(
            cps.interval_of(TimeOfDay::hm(10, 0)),
            (TimeOfDay::hm(9, 0), Some(TimeOfDay::hm(16, 0)))
        );
        assert_eq!(
            cps.interval_of(TimeOfDay::hm(17, 0)),
            (TimeOfDay::hm(16, 0), None)
        );
    }

    #[test]
    fn display() {
        assert_eq!(
            CheckpointSet::from_times(vec![TimeOfDay::hm(8, 0)]).to_string(),
            "{0:00, 8:00}"
        );
    }
}
