//! Non-negative time spans.

use std::fmt;
use std::ops::{Add, Div, Mul};

use serde::{Deserialize, Serialize};

use crate::TimeError;

/// A non-negative span of time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DurationSecs(f64);

impl DurationSecs {
    /// The zero duration.
    pub const ZERO: DurationSecs = DurationSecs(0.0);

    /// The saturation bound of [`DurationSecs::saturating`]: one year, far
    /// beyond any ATI on the daily timeline.
    pub const MAX_SATURATED: DurationSecs = DurationSecs(365.0 * 86_400.0);

    /// Creates a duration from seconds.
    ///
    /// # Errors
    /// Returns [`TimeError::NegativeDuration`] if `secs` is negative or not
    /// finite.
    pub fn new(secs: f64) -> Result<Self, TimeError> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(TimeError::NegativeDuration(secs));
        }
        Ok(DurationSecs(secs))
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        DurationSecs((minutes * 60.0).max(0.0))
    }

    /// Creates a duration from seconds, clamping instead of failing:
    /// negatives and NaN become [`DurationSecs::ZERO`], `+∞` and anything
    /// above one year become [`DurationSecs::MAX_SATURATED`].
    ///
    /// This is the total function behind travel-time projections: an
    /// unreachable (infinite) distance yields a span that overshoots every
    /// ATI instead of panicking mid-search.
    #[must_use]
    pub fn saturating(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            DurationSecs::ZERO
        } else if secs >= Self::MAX_SATURATED.0 {
            Self::MAX_SATURATED
        } else {
            DurationSecs(secs)
        }
    }

    /// The span in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The span in minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }
}

impl Eq for DurationSecs {}

impl PartialOrd for DurationSecs {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DurationSecs {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order, so a NaN smuggled in through arithmetic on a valid
        // duration compares (as the largest value) instead of panicking.
        self.0.total_cmp(&other.0)
    }
}

impl Add for DurationSecs {
    type Output = DurationSecs;

    fn add(self, rhs: DurationSecs) -> DurationSecs {
        DurationSecs(self.0 + rhs.0)
    }
}

impl Mul<f64> for DurationSecs {
    type Output = DurationSecs;

    fn mul(self, rhs: f64) -> DurationSecs {
        DurationSecs((self.0 * rhs).max(0.0))
    }
}

impl Div<f64> for DurationSecs {
    type Output = DurationSecs;

    fn div(self, rhs: f64) -> DurationSecs {
        DurationSecs((self.0 / rhs).max(0.0))
    }
}

impl fmt::Display for DurationSecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60.0 {
            write!(f, "{:.1}min", self.minutes())
        } else {
            write!(f, "{:.1}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_and_non_finite() {
        assert!(DurationSecs::new(-0.5).is_err());
        assert!(DurationSecs::new(f64::INFINITY).is_err());
        assert!(DurationSecs::new(f64::NAN).is_err());
        assert!(DurationSecs::new(0.0).is_ok());
    }

    #[test]
    fn arithmetic() {
        let a = DurationSecs::new(90.0).unwrap();
        let b = DurationSecs::new(30.0).unwrap();
        assert_eq!((a + b).seconds(), 120.0);
        assert_eq!((a * 2.0).seconds(), 180.0);
        assert_eq!((a / 3.0).seconds(), 30.0);
        assert_eq!(a.minutes(), 1.5);
    }

    #[test]
    fn from_minutes_clamps() {
        assert_eq!(DurationSecs::from_minutes(2.0).seconds(), 120.0);
        assert_eq!(DurationSecs::from_minutes(-1.0), DurationSecs::ZERO);
    }

    #[test]
    fn saturating_clamps_every_degenerate_input() {
        assert_eq!(DurationSecs::saturating(5.0).seconds(), 5.0);
        assert_eq!(DurationSecs::saturating(-1.0), DurationSecs::ZERO);
        assert_eq!(DurationSecs::saturating(f64::NAN), DurationSecs::ZERO);
        assert_eq!(
            DurationSecs::saturating(f64::INFINITY),
            DurationSecs::MAX_SATURATED
        );
        assert_eq!(DurationSecs::saturating(1e300), DurationSecs::MAX_SATURATED);
    }

    #[test]
    fn display() {
        assert_eq!(DurationSecs::new(42.0).unwrap().to_string(), "42.0s");
        assert_eq!(DurationSecs::new(120.0).unwrap().to_string(), "2.0min");
    }
}
