//! Non-negative time spans.

use std::fmt;
use std::ops::{Add, Div, Mul};

use serde::{Deserialize, Serialize};

use crate::TimeError;

/// A non-negative span of time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DurationSecs(f64);

impl DurationSecs {
    /// The zero duration.
    pub const ZERO: DurationSecs = DurationSecs(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Errors
    /// Returns [`TimeError::NegativeDuration`] if `secs` is negative or not
    /// finite.
    pub fn new(secs: f64) -> Result<Self, TimeError> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(TimeError::NegativeDuration(secs));
        }
        Ok(DurationSecs(secs))
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub fn from_minutes(minutes: f64) -> Self {
        DurationSecs((minutes * 60.0).max(0.0))
    }

    /// The span in seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The span in minutes.
    #[must_use]
    pub fn minutes(self) -> f64 {
        self.0 / 60.0
    }
}

impl Eq for DurationSecs {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for DurationSecs {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("DurationSecs is finite")
    }
}

impl Add for DurationSecs {
    type Output = DurationSecs;

    fn add(self, rhs: DurationSecs) -> DurationSecs {
        DurationSecs(self.0 + rhs.0)
    }
}

impl Mul<f64> for DurationSecs {
    type Output = DurationSecs;

    fn mul(self, rhs: f64) -> DurationSecs {
        DurationSecs((self.0 * rhs).max(0.0))
    }
}

impl Div<f64> for DurationSecs {
    type Output = DurationSecs;

    fn div(self, rhs: f64) -> DurationSecs {
        DurationSecs((self.0 / rhs).max(0.0))
    }
}

impl fmt::Display for DurationSecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 60.0 {
            write!(f, "{:.1}min", self.minutes())
        } else {
            write!(f, "{:.1}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_negative_and_non_finite() {
        assert!(DurationSecs::new(-0.5).is_err());
        assert!(DurationSecs::new(f64::INFINITY).is_err());
        assert!(DurationSecs::new(f64::NAN).is_err());
        assert!(DurationSecs::new(0.0).is_ok());
    }

    #[test]
    fn arithmetic() {
        let a = DurationSecs::new(90.0).unwrap();
        let b = DurationSecs::new(30.0).unwrap();
        assert_eq!((a + b).seconds(), 120.0);
        assert_eq!((a * 2.0).seconds(), 180.0);
        assert_eq!((a / 3.0).seconds(), 30.0);
        assert_eq!(a.minutes(), 1.5);
    }

    #[test]
    fn from_minutes_clamps() {
        assert_eq!(DurationSecs::from_minutes(2.0).seconds(), 120.0);
        assert_eq!(DurationSecs::from_minutes(-1.0), DurationSecs::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(DurationSecs::new(42.0).unwrap().to_string(), "42.0s");
        assert_eq!(DurationSecs::new(120.0).unwrap().to_string(), "2.0min");
    }
}
