//! Active Time Intervals (ATIs) of a door.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Interval, TimeError, TimeOfDay, Timestamp};

/// An `((open_h, open_m), (close_h, close_m))` literal used by [`AtiList::hm`].
pub type HmPair = ((u32, u32), (u32, u32));

/// A door's Active Time Intervals: the set of day times at which the door is
/// open.
///
/// Stored as a normalised sequence of [`Interval`]s — sorted by start, pairwise
/// disjoint and non-adjacent (adjacent/overlapping inputs are merged during
/// construction), matching the paper's ATI arrays such as
/// `⟨[0:00, 6:00), [6:30, 23:00)⟩` for door d9.
///
/// An empty list means the door is never open.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<Interval>", into = "Vec<Interval>")]
pub struct AtiList {
    intervals: Vec<Interval>,
}

impl AtiList {
    /// A door that is always open: `⟨[0:00, 24:00)⟩`.
    #[must_use]
    pub fn always_open() -> Self {
        AtiList {
            intervals: vec![Interval::FULL_DAY],
        }
    }

    /// A door that is never open.
    #[must_use]
    pub fn never_open() -> Self {
        AtiList {
            intervals: Vec::new(),
        }
    }

    /// Builds a normalised ATI list from arbitrary intervals: the input is
    /// sorted and overlapping or adjacent intervals are merged.
    ///
    /// # Errors
    /// Currently infallible for valid [`Interval`] values; the `Result` is kept
    /// so that deserialisation of raw interval pairs can report errors.
    pub fn from_intervals(mut intervals: Vec<Interval>) -> Result<Self, TimeError> {
        intervals.sort();
        let mut merged: Vec<Interval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.pop() {
                Some(last) => match last.merge(iv) {
                    Some(m) => merged.push(m),
                    None => {
                        merged.push(last);
                        merged.push(iv);
                    }
                },
                None => merged.push(iv),
            }
        }
        Ok(AtiList { intervals: merged })
    }

    /// Builds an ATI list from `(open, close)` hour/minute pairs; panics on
    /// invalid literals. Mirrors the paper's Table I notation, e.g.
    /// `AtiList::hm(&[((0, 0), (6, 0)), ((6, 30), (23, 0))])` for d9.
    #[must_use]
    pub fn hm(pairs: &[HmPair]) -> Self {
        let intervals = pairs.iter().map(|&(s, e)| Interval::hm(s, e)).collect();
        // itspq-lint: allow(no-panic-in-lib, "documented literal constructor; from_intervals is infallible for valid Interval values")
        Self::from_intervals(intervals).expect("literal ATI list")
    }

    /// The normalised intervals, sorted by start time.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Whether the door is open at clock time `t`.
    #[must_use]
    pub fn is_open(&self, t: TimeOfDay) -> bool {
        // Binary search on start times: candidate is the last interval whose
        // start is <= t.
        match self.intervals.partition_point(|iv| iv.start() <= t) {
            0 => false,
            idx => self.intervals[idx - 1].contains(t),
        }
    }

    /// Whether the door is open at timeline instant `ts` (reduced to its clock
    /// time; a walk crossing midnight consults the same daily schedule).
    #[must_use]
    pub fn is_open_at(&self, ts: Timestamp) -> bool {
        self.is_open(ts.time_of_day())
    }

    /// Whether this list is exactly `[0:00, 24:00)`.
    #[must_use]
    pub fn is_always_open(&self) -> bool {
        self.intervals == [Interval::FULL_DAY]
    }

    /// Whether this list has no open time at all.
    #[must_use]
    pub fn is_never_open(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether this door has temporal variation (it is neither always open nor
    /// permanently closed).
    #[must_use]
    pub fn has_variation(&self) -> bool {
        !self.is_always_open() && !self.is_never_open()
    }

    /// Total number of open seconds per day.
    #[must_use]
    pub fn open_seconds(&self) -> f64 {
        self.intervals.iter().map(|iv| iv.duration_seconds()).sum()
    }

    /// The next instant strictly after `t` at which the open/closed state
    /// changes, or `None` if the state never changes again within the day.
    #[must_use]
    pub fn next_change_after(&self, t: TimeOfDay) -> Option<TimeOfDay> {
        self.boundaries().find(|&b| b > t)
    }

    /// All state-change instants (interval starts and ends) in ascending order.
    pub fn boundaries(&self) -> impl Iterator<Item = TimeOfDay> + '_ {
        self.intervals.iter().flat_map(|iv| [iv.start(), iv.end()])
    }

    /// The earliest timeline instant at or after `ts` at which the door is
    /// open — `ts` itself if already open, otherwise the next interval start
    /// (looking into the following day if needed). `None` for a door that is
    /// never open.
    #[must_use]
    pub fn next_open_at(&self, ts: Timestamp) -> Option<Timestamp> {
        if self.intervals.is_empty() {
            return None;
        }
        if self.is_open_at(ts) {
            return Some(ts);
        }
        let clock = ts.time_of_day();
        let day_base = f64::from(ts.day_offset()) * crate::SECONDS_PER_DAY;
        let next_start = self
            .intervals
            .iter()
            .map(|iv| iv.start())
            .find(|&s| s > clock);
        let instant = match next_start {
            Some(s) => day_base + s.seconds(),
            // Wrap to the first opening of the next day.
            None => day_base + crate::SECONDS_PER_DAY + self.intervals[0].start().seconds(),
        };
        // Finite day base plus an in-day offset is always a valid timestamp;
        // `.ok()` turns a broken invariant into "never opens" instead of a
        // panic.
        Timestamp::from_seconds(instant).ok()
    }
}

impl TryFrom<Vec<Interval>> for AtiList {
    type Error = TimeError;

    fn try_from(v: Vec<Interval>) -> Result<Self, TimeError> {
        AtiList::from_intervals(v)
    }
}

impl From<AtiList> for Vec<Interval> {
    fn from(a: AtiList) -> Vec<Interval> {
        a.intervals
    }
}

impl fmt::Display for AtiList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_merges_and_sorts() {
        let atis = AtiList::hm(&[((12, 0), (16, 0)), ((8, 0), (12, 0)), ((18, 0), (19, 0))]);
        assert_eq!(
            atis.intervals(),
            &[
                Interval::hm((8, 0), (16, 0)),
                Interval::hm((18, 0), (19, 0))
            ]
        );
    }

    #[test]
    fn normalisation_merges_overlaps() {
        let atis = AtiList::hm(&[((8, 0), (14, 0)), ((10, 0), (16, 0)), ((15, 0), (15, 30))]);
        assert_eq!(atis.intervals(), &[Interval::hm((8, 0), (16, 0))]);
    }

    #[test]
    fn membership_paper_d9() {
        // d9: ⟨[0:00, 6:00), [6:30, 23:00)⟩
        let d9 = AtiList::hm(&[((0, 0), (6, 0)), ((6, 30), (23, 0))]);
        assert!(d9.is_open(TimeOfDay::hm(5, 59)));
        assert!(!d9.is_open(TimeOfDay::hm(6, 0)));
        assert!(!d9.is_open(TimeOfDay::hm(6, 15)));
        assert!(d9.is_open(TimeOfDay::hm(6, 30)));
        assert!(d9.is_open(TimeOfDay::hm(22, 59)));
        assert!(!d9.is_open(TimeOfDay::hm(23, 0)));
        assert!(d9.has_variation());
    }

    #[test]
    fn always_and_never() {
        assert!(AtiList::always_open().is_open(TimeOfDay::hm(0, 0)));
        assert!(AtiList::always_open().is_open(TimeOfDay::hms(23, 59, 59)));
        assert!(!AtiList::always_open().has_variation());
        assert!(!AtiList::never_open().is_open(TimeOfDay::hm(12, 0)));
        assert!(AtiList::never_open().is_never_open());
    }

    #[test]
    fn timestamp_membership_wraps() {
        let atis = AtiList::hm(&[((0, 0), (6, 0))]);
        // 24:30 on the timeline is 0:30 next day -> open per daily schedule.
        let late = Timestamp::from_seconds(24.5 * 3600.0).unwrap();
        assert!(atis.is_open_at(late));
    }

    #[test]
    fn next_change() {
        let atis = AtiList::hm(&[((8, 0), (16, 0)), ((18, 0), (20, 0))]);
        assert_eq!(
            atis.next_change_after(TimeOfDay::hm(7, 0)),
            Some(TimeOfDay::hm(8, 0))
        );
        assert_eq!(
            atis.next_change_after(TimeOfDay::hm(8, 0)),
            Some(TimeOfDay::hm(16, 0))
        );
        assert_eq!(
            atis.next_change_after(TimeOfDay::hm(17, 0)),
            Some(TimeOfDay::hm(18, 0))
        );
        assert_eq!(atis.next_change_after(TimeOfDay::hm(20, 0)), None);
        assert_eq!(
            AtiList::never_open().next_change_after(TimeOfDay::MIDNIGHT),
            None
        );
    }

    #[test]
    fn open_seconds() {
        let atis = AtiList::hm(&[((8, 0), (9, 0)), ((10, 0), (10, 30))]);
        assert_eq!(atis.open_seconds(), 3600.0 + 1800.0);
        assert_eq!(AtiList::always_open().open_seconds(), 86_400.0);
    }

    #[test]
    fn next_open_at_handles_all_cases() {
        let atis = AtiList::hm(&[((8, 0), (16, 0)), ((18, 0), (20, 0))]);
        let at = |h: u32, m: u32| Timestamp::from_time_of_day(TimeOfDay::hm(h, m));
        // Already open: unchanged.
        assert_eq!(atis.next_open_at(at(9, 0)), Some(at(9, 0)));
        // Before first opening.
        assert_eq!(atis.next_open_at(at(7, 0)), Some(at(8, 0)));
        // Between intervals.
        assert_eq!(atis.next_open_at(at(16, 30)), Some(at(18, 0)));
        // After the last interval: wraps to 8:00 next day.
        let next = atis.next_open_at(at(21, 0)).unwrap();
        assert_eq!(next.day_offset(), 1);
        assert_eq!(next.time_of_day(), TimeOfDay::hm(8, 0));
        // Never-open doors have no opening.
        assert_eq!(AtiList::never_open().next_open_at(at(9, 0)), None);
        // Always-open doors open immediately.
        assert_eq!(
            AtiList::always_open().next_open_at(at(23, 59)),
            Some(at(23, 59))
        );
    }

    #[test]
    fn serde_round_trip_normalises() {
        let json = "[{\"start\":43200.0,\"end\":57600.0},{\"start\":28800.0,\"end\":43200.0}]";
        let atis: AtiList = serde_json::from_str(json).unwrap();
        assert_eq!(atis.intervals(), &[Interval::hm((8, 0), (16, 0))]);
        let back = serde_json::to_string(&atis).unwrap();
        let again: AtiList = serde_json::from_str(&back).unwrap();
        assert_eq!(atis, again);
    }

    #[test]
    fn display() {
        let d13 = AtiList::hm(&[((5, 0), (17, 0)), ((18, 0), (23, 0))]);
        assert_eq!(d13.to_string(), "⟨[5:00, 17:00), [18:00, 23:00)⟩");
    }
}
