//! Half-open time intervals `[start, end)`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{TimeError, TimeOfDay};

/// A half-open interval `[start, end)` within one day.
///
/// This is the unit the paper uses for a door's active time: `[8:00, 16:00)`
/// means the door opens at 8:00 and closes at 16:00. `end` must lie strictly
/// after `start`; the paper's always-open interval is `[0:00, 24:00)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    start: TimeOfDay,
    end: TimeOfDay,
}

impl Interval {
    /// The full day, `[0:00, 24:00)`.
    pub const FULL_DAY: Interval = Interval {
        start: TimeOfDay::MIDNIGHT,
        end: TimeOfDay::END_OF_DAY,
    };

    /// Creates `[start, end)`.
    ///
    /// # Errors
    /// Returns [`TimeError::EmptyInterval`] unless `start < end`.
    pub fn new(start: TimeOfDay, end: TimeOfDay) -> Result<Self, TimeError> {
        if start >= end {
            return Err(TimeError::EmptyInterval {
                start: start.seconds(),
                end: end.seconds(),
            });
        }
        Ok(Interval { start, end })
    }

    /// Convenience constructor from `(hour, minute)` pairs; panics on invalid
    /// input. Intended for literals such as `Interval::hm((8, 0), (16, 0))`.
    #[must_use]
    pub fn hm(start: (u32, u32), end: (u32, u32)) -> Self {
        Interval::new(TimeOfDay::hm(start.0, start.1), TimeOfDay::hm(end.0, end.1))
            // itspq-lint: allow(no-panic-in-lib, "documented panicking literal constructor for Table I-style fixtures")
            .expect("interval literal must be non-empty")
    }

    /// Interval start (inclusive).
    #[must_use]
    pub fn start(self) -> TimeOfDay {
        self.start
    }

    /// Interval end (exclusive).
    #[must_use]
    pub fn end(self) -> TimeOfDay {
        self.end
    }

    /// Length of the interval in seconds.
    #[must_use]
    pub fn duration_seconds(self) -> f64 {
        self.end.seconds() - self.start.seconds()
    }

    /// Whether `t` lies inside `[start, end)`.
    #[must_use]
    pub fn contains(self, t: TimeOfDay) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the two intervals share at least one instant.
    #[must_use]
    pub fn overlaps(self, other: Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the two intervals overlap or touch (can be merged into one).
    #[must_use]
    pub fn mergeable(self, other: Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The union of two mergeable intervals; `None` if they are disjoint and
    /// non-adjacent.
    #[must_use]
    pub fn merge(self, other: Interval) -> Option<Interval> {
        if !self.mergeable(other) {
            return None;
        }
        Some(Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        })
    }

    /// The intersection of two intervals; `None` if they do not overlap.
    #[must_use]
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Interval {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        })
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        let t = TimeOfDay::hm(9, 0);
        assert!(Interval::new(t, t).is_err());
        assert!(Interval::new(TimeOfDay::hm(10, 0), t).is_err());
    }

    #[test]
    fn membership_is_half_open() {
        let i = Interval::hm((8, 0), (16, 0));
        assert!(i.contains(TimeOfDay::hm(8, 0)));
        assert!(i.contains(TimeOfDay::hm(15, 59)));
        assert!(!i.contains(TimeOfDay::hm(16, 0)));
        assert!(!i.contains(TimeOfDay::hm(7, 59)));
    }

    #[test]
    fn full_day_contains_everything_but_24() {
        assert!(Interval::FULL_DAY.contains(TimeOfDay::MIDNIGHT));
        assert!(Interval::FULL_DAY.contains(TimeOfDay::hms(23, 59, 59)));
        assert!(!Interval::FULL_DAY.contains(TimeOfDay::END_OF_DAY));
    }

    #[test]
    fn overlap_and_merge() {
        let a = Interval::hm((8, 0), (12, 0));
        let b = Interval::hm((11, 0), (16, 0));
        let c = Interval::hm((12, 0), (13, 0));
        let d = Interval::hm((14, 0), (15, 0));

        assert!(a.overlaps(b));
        assert!(!a.overlaps(c)); // touching is not overlapping
        assert!(a.mergeable(c)); // but touching merges
        assert_eq!(a.merge(b), Some(Interval::hm((8, 0), (16, 0))));
        assert_eq!(a.merge(c), Some(Interval::hm((8, 0), (13, 0))));
        assert_eq!(a.merge(d), None);
        assert_eq!(a.intersect(b), Some(Interval::hm((11, 0), (12, 0))));
        assert_eq!(a.intersect(c), None);
    }

    #[test]
    fn duration() {
        assert_eq!(Interval::hm((8, 0), (9, 30)).duration_seconds(), 5400.0);
        assert_eq!(Interval::FULL_DAY.duration_seconds(), 86_400.0);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::hm((8, 0), (16, 0)).to_string(), "[8:00, 16:00)");
    }

    #[test]
    fn serde_round_trip() {
        let i = Interval::hm((6, 30), (23, 0));
        let json = serde_json::to_string(&i).unwrap();
        let back: Interval = serde_json::from_str(&json).unwrap();
        assert_eq!(i, back);
    }
}
