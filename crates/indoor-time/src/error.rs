//! Error type for temporal operations.

use std::fmt;

/// Errors raised when constructing temporal values.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeError {
    /// A time value outside its valid domain (seconds shown).
    OutOfRange(f64),
    /// A negative or non-finite duration (seconds shown).
    NegativeDuration(f64),
    /// An interval whose end does not lie strictly after its start.
    EmptyInterval {
        /// Interval start in seconds since midnight.
        start: f64,
        /// Interval end in seconds since midnight.
        end: f64,
    },
    /// A velocity that is zero, negative or not finite (m/s shown).
    InvalidVelocity(f64),
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::OutOfRange(s) => write!(f, "time value out of range: {s} s"),
            TimeError::NegativeDuration(s) => {
                write!(f, "duration must be finite and non-negative, got {s} s")
            }
            TimeError::EmptyInterval { start, end } => {
                write!(f, "interval end ({end} s) must be after start ({start} s)")
            }
            TimeError::InvalidVelocity(v) => {
                write!(f, "velocity must be finite and positive, got {v} m/s")
            }
        }
    }
}

impl std::error::Error for TimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(TimeError::OutOfRange(-3.0).to_string().contains("-3"));
        assert!(TimeError::NegativeDuration(-1.0)
            .to_string()
            .contains("non-negative"));
        assert!(TimeError::EmptyInterval {
            start: 5.0,
            end: 5.0
        }
        .to_string()
        .contains("after start"));
        assert!(TimeError::InvalidVelocity(0.0)
            .to_string()
            .contains("positive"));
    }
}
