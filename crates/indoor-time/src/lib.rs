//! Temporal model for indoor venues with temporal variations.
//!
//! This crate is the time substrate of the ITSPQ reproduction (Liu et al.,
//! ICDE 2020). It provides:
//!
//! * [`TimeOfDay`] — a clock time within one day, with second resolution kept
//!   as `f64` seconds so that arrival times computed from metric distances and
//!   walking speed stay exact enough for interval membership tests;
//! * [`Timestamp`] — a point on a continuous timeline (seconds since the start
//!   of day 0) that may run past midnight while a path is being walked;
//! * [`DurationSecs`] — a non-negative span of time;
//! * [`Interval`] — a half-open `[open, close)` interval of the day, the unit
//!   the paper uses to express door opening hours;
//! * [`AtiList`] — a door's *Active Time Intervals* (normalised, sorted,
//!   disjoint), with membership and next-change queries;
//! * [`CheckpointSet`] — the set `T` of all open/close times in a venue, with
//!   the `Find_Previous_Checkpoint` / `Find_Next_Checkpoint` operations used by
//!   the paper's Algorithm 3 and 4;
//! * [`Velocity`] and [`WALKING_SPEED`] — the paper's 5 km/h walking-speed
//!   model used to convert distances into arrival times.
//!
//! # Example
//!
//! ```
//! use indoor_time::{AtiList, Interval, TimeOfDay, Timestamp, WALKING_SPEED};
//!
//! // Door d2 of the paper's Table I: open 8:00-16:00.
//! let atis = AtiList::from_intervals(vec![
//!     Interval::new(TimeOfDay::hm(8, 0), TimeOfDay::hm(16, 0)).unwrap(),
//! ]).unwrap();
//!
//! let depart = Timestamp::from_time_of_day(TimeOfDay::hm(9, 0));
//! let arrival = depart + WALKING_SPEED.travel_time(125.0); // 125 m away
//! assert!(atis.is_open_at(arrival));
//! ```

#![forbid(unsafe_code)]

mod ati;
mod checkpoints;
mod duration;
mod error;
mod interval;
mod time;
mod velocity;

pub use ati::{AtiList, HmPair};
pub use checkpoints::CheckpointSet;
pub use duration::DurationSecs;
pub use error::TimeError;
pub use interval::Interval;
pub use time::{TimeOfDay, Timestamp, SECONDS_PER_DAY};
pub use velocity::{Velocity, WALKING_SPEED};
