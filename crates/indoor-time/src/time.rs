//! Clock times and timeline timestamps.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::{DurationSecs, TimeError};

/// Number of seconds in one day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// A clock time within a single day, stored as seconds since midnight.
///
/// The value is always within `[0, 86 400]`; the upper bound (24:00) is
/// permitted so that the paper's fully-open interval `[0:00, 24:00)` can be
/// expressed as a regular [`crate::Interval`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TimeOfDay(f64);

impl TimeOfDay {
    /// Midnight (0:00).
    pub const MIDNIGHT: TimeOfDay = TimeOfDay(0.0);
    /// End of day (24:00). Valid only as an interval *end*.
    pub const END_OF_DAY: TimeOfDay = TimeOfDay(SECONDS_PER_DAY);

    /// Creates a time from seconds since midnight.
    ///
    /// # Errors
    /// Returns [`TimeError::OutOfRange`] if `secs` is not finite or lies
    /// outside `[0, 86 400]`.
    pub fn from_seconds(secs: f64) -> Result<Self, TimeError> {
        if !secs.is_finite() || !(0.0..=SECONDS_PER_DAY).contains(&secs) {
            return Err(TimeError::OutOfRange(secs));
        }
        Ok(TimeOfDay(secs))
    }

    /// Creates a time from hours and minutes. Panics on out-of-range input;
    /// intended for literals such as `TimeOfDay::hm(9, 30)`.
    #[must_use]
    pub fn hm(hours: u32, minutes: u32) -> Self {
        Self::hms(hours, minutes, 0)
    }

    /// Creates a time from hours, minutes and seconds. Panics on out-of-range
    /// input; intended for literals.
    #[must_use]
    pub fn hms(hours: u32, minutes: u32, seconds: u32) -> Self {
        assert!(hours <= 24, "hours out of range: {hours}");
        assert!(minutes < 60, "minutes out of range: {minutes}");
        assert!(seconds < 60, "seconds out of range: {seconds}");
        let total = f64::from(hours) * 3600.0 + f64::from(minutes) * 60.0 + f64::from(seconds);
        assert!(
            total <= SECONDS_PER_DAY,
            "time past end of day: {hours}:{minutes}:{seconds}"
        );
        TimeOfDay(total)
    }

    /// Seconds since midnight.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Hour component (0–24).
    #[must_use]
    pub fn hour(self) -> u32 {
        (self.0 / 3600.0) as u32
    }

    /// Minute component (0–59).
    #[must_use]
    pub fn minute(self) -> u32 {
        ((self.0 % 3600.0) / 60.0) as u32
    }
}

impl Eq for TimeOfDay {}

impl PartialOrd for TimeOfDay {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeOfDay {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Values are finite by construction; total_cmp keeps the order total
        // even if arithmetic ever smuggles a NaN through.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0.round() as u64;
        let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
        if s == 0 {
            write!(f, "{h}:{m:02}")
        } else {
            write!(f, "{h}:{m:02}:{s:02}")
        }
    }
}

/// A point on a continuous timeline measured in seconds from midnight of the
/// query day.
///
/// Unlike [`TimeOfDay`], a `Timestamp` may exceed 24 h: a path that starts at
/// 23:50 keeps accumulating walking time past midnight. Interval membership
/// reduces timestamps modulo one day (see [`crate::AtiList::is_open_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Timestamp(f64);

impl Timestamp {
    /// Creates a timestamp from raw seconds.
    ///
    /// # Errors
    /// Returns [`TimeError::OutOfRange`] if `secs` is not finite or negative.
    pub fn from_seconds(secs: f64) -> Result<Self, TimeError> {
        if !secs.is_finite() || secs < 0.0 {
            return Err(TimeError::OutOfRange(secs));
        }
        Ok(Timestamp(secs))
    }

    /// Places a clock time on the timeline of the query day.
    #[must_use]
    pub fn from_time_of_day(t: TimeOfDay) -> Self {
        Timestamp(t.seconds())
    }

    /// Seconds since midnight of the query day.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The clock time this timestamp corresponds to (reduced modulo one day).
    #[must_use]
    pub fn time_of_day(self) -> TimeOfDay {
        TimeOfDay(self.0.rem_euclid(SECONDS_PER_DAY))
    }

    /// How many whole days past the query day this timestamp lies.
    #[must_use]
    pub fn day_offset(self) -> u32 {
        (self.0 / SECONDS_PER_DAY) as u32
    }
}

impl Eq for Timestamp {}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timestamp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<TimeOfDay> for Timestamp {
    fn from(t: TimeOfDay) -> Self {
        Timestamp::from_time_of_day(t)
    }
}

impl Add<DurationSecs> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: DurationSecs) -> Timestamp {
        Timestamp(self.0 + rhs.seconds())
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = DurationSecs;

    fn sub(self, rhs: Timestamp) -> DurationSecs {
        // Finite minus finite clamped at zero: saturating is exact here and
        // total if either operand is ever degenerate.
        DurationSecs::saturating(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_offset();
        if day == 0 {
            write!(f, "{}", self.time_of_day())
        } else {
            write!(f, "{}+{}d", self.time_of_day(), day)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_of_day_constructors() {
        assert_eq!(TimeOfDay::hm(0, 0), TimeOfDay::MIDNIGHT);
        assert_eq!(TimeOfDay::hm(24, 0), TimeOfDay::END_OF_DAY);
        assert_eq!(TimeOfDay::hm(8, 30).seconds(), 8.0 * 3600.0 + 30.0 * 60.0);
        assert_eq!(TimeOfDay::hms(8, 30, 15).seconds(), 8.5 * 3600.0 + 15.0);
    }

    #[test]
    fn time_of_day_rejects_out_of_range() {
        assert!(TimeOfDay::from_seconds(-1.0).is_err());
        assert!(TimeOfDay::from_seconds(SECONDS_PER_DAY + 0.1).is_err());
        assert!(TimeOfDay::from_seconds(f64::NAN).is_err());
        assert!(TimeOfDay::from_seconds(0.0).is_ok());
        assert!(TimeOfDay::from_seconds(SECONDS_PER_DAY).is_ok());
    }

    #[test]
    #[should_panic(expected = "minutes out of range")]
    fn hm_panics_on_bad_minutes() {
        let _ = TimeOfDay::hm(5, 60);
    }

    #[test]
    #[should_panic(expected = "time past end of day")]
    fn hm_panics_past_end_of_day() {
        let _ = TimeOfDay::hms(24, 0, 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TimeOfDay::hm(9, 5).to_string(), "9:05");
        assert_eq!(TimeOfDay::hms(23, 59, 59).to_string(), "23:59:59");
        assert_eq!(TimeOfDay::MIDNIGHT.to_string(), "0:00");
    }

    #[test]
    fn components() {
        let t = TimeOfDay::hms(13, 45, 20);
        assert_eq!(t.hour(), 13);
        assert_eq!(t.minute(), 45);
    }

    #[test]
    fn timestamp_wraps_past_midnight() {
        let ts = Timestamp::from_seconds(SECONDS_PER_DAY + 90.0).unwrap();
        assert_eq!(ts.day_offset(), 1);
        assert_eq!(ts.time_of_day(), TimeOfDay::hms(0, 1, 30));
        assert_eq!(ts.to_string(), "0:01:30+1d");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t0 = Timestamp::from_time_of_day(TimeOfDay::hm(12, 0));
        let t1 = t0 + DurationSecs::new(120.0).unwrap();
        assert_eq!(t1.time_of_day(), TimeOfDay::hm(12, 2));
        assert_eq!((t1 - t0).seconds(), 120.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            TimeOfDay::hm(9, 0),
            TimeOfDay::hm(8, 0),
            TimeOfDay::hm(10, 0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                TimeOfDay::hm(8, 0),
                TimeOfDay::hm(9, 0),
                TimeOfDay::hm(10, 0)
            ]
        );
    }

    #[test]
    fn serde_round_trip() {
        let t = TimeOfDay::hm(16, 30);
        let json = serde_json::to_string(&t).unwrap();
        let back: TimeOfDay = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
