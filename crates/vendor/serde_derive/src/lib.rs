//! Derive macros for the vendored `serde` stub.
//!
//! Supports the shapes this workspace actually uses:
//!
//! * structs with named fields (any visibility) — encoded as a map;
//! * tuple structs — encoded as a sequence (or transparently, see below);
//! * enums with unit variants only — encoded as the variant name string;
//! * container attributes `#[serde(transparent)]` and
//!   `#[serde(try_from = "T", into = "T")]`.
//!
//! Generics and data-carrying enum variants are rejected with a compile error
//! rather than silently mis-encoded.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct Attrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
    attrs: Attrs,
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(&input, true)
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(&input, false)
}

fn expand(input: &TokenStream, ser: bool) -> TokenStream {
    let item = match parse_item(input.clone()) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let code = if ser {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => error(&format!("serde_derive internal codegen error: {e}")),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal compile_error")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = Attrs::default();

    // Leading attributes (doc comments, #[serde(...)], ...).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_outer_attr(&g.stream(), &mut attrs);
                    i += 2;
                } else {
                    return Err("stray `#` before item".into());
                }
            }
            _ => break,
        }
    }

    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found `{other}`")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generics (on `{name}`)"
        ));
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::Named(parse_named_fields(&g.stream())?)
            } else {
                Shape::Enum(parse_unit_variants(&g.stream(), &name)?)
            }
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Shape::Tuple(count_tuple_fields(&g.stream()))
        }
        other => return Err(format!("unsupported item body for `{name}`: {other:?}")),
    };

    Ok(Item { name, shape, attrs })
}

/// Interprets one outer attribute body (the bracketed part after `#`),
/// recording `#[serde(...)]` container options.
fn parse_outer_attr(stream: &TokenStream, attrs: &mut Attrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let TokenTree::Ident(id) = &args[j] {
            let key = id.to_string();
            let value = match (args.get(j + 1), args.get(j + 2)) {
                (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                    if eq.as_char() == '=' =>
                {
                    j += 2;
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                _ => None,
            };
            match (key.as_str(), value) {
                ("transparent", None) => attrs.transparent = true,
                ("try_from", Some(v)) => attrs.try_from = Some(v),
                ("into", Some(v)) => attrs.into = Some(v),
                _ => {} // Unknown options are ignored, like unknown lints.
            }
        }
        j += 1;
    }
}

/// Splits a token sequence at top-level commas, treating `<...>` nesting as
/// opaque (delimiter groups are already opaque in a token stream).
fn split_top_level(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream.clone() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Skips field/variant attributes and visibility, returning the next index.
fn skip_attrs_and_vis(chunk: &[TokenTree], mut j: usize) -> usize {
    loop {
        match chunk.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                j += 1;
                if matches!(chunk.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    j += 1;
                }
            }
            _ => return j,
        }
    }
}

fn parse_named_fields(stream: &TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream) {
        let j = skip_attrs_and_vis(&chunk, 0);
        match (chunk.get(j), chunk.get(j + 1)) {
            (Some(TokenTree::Ident(id)), Some(TokenTree::Punct(c))) if c.as_char() == ':' => {
                fields.push(id.to_string());
            }
            _ => return Err("could not parse a named struct field".into()),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_unit_variants(stream: &TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let j = skip_attrs_and_vis(&chunk, 0);
        match chunk.get(j) {
            Some(TokenTree::Ident(id)) => {
                if chunk.get(j + 1).is_some() {
                    return Err(format!(
                        "serde stub derive supports unit enum variants only; \
                         `{enum_name}::{id}` carries data"
                    ));
                }
                variants.push(id.to_string());
            }
            _ => return Err(format!("could not parse a variant of `{enum_name}`")),
        }
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.attrs.into {
        format!(
            "let __proxy: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__proxy)"
        )
    } else {
        match &item.shape {
            Shape::Tuple(1) if item.attrs.transparent => {
                "::serde::Serialize::to_value(&self.0)".to_string()
            }
            Shape::Named(fields) if item.attrs.transparent && fields.len() == 1 => {
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            }
            Shape::Named(fields) => {
                let mut b = String::from("let mut __map = ::std::vec::Vec::new();\n");
                for f in fields {
                    b.push_str(&format!(
                        "__map.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})?));\n"
                    ));
                }
                b.push_str("Ok(::serde::Value::Map(__map))");
                b
            }
            Shape::Tuple(n) => {
                let mut b = String::from("let mut __seq = ::std::vec::Vec::new();\n");
                for idx in 0..*n {
                    b.push_str(&format!(
                        "__seq.push(::serde::Serialize::to_value(&self.{idx})?);\n"
                    ));
                }
                b.push_str("Ok(::serde::Value::Seq(__seq))");
                b
            }
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!("{name}::{v} => Ok(::serde::Value::String({v:?}.to_string())),")
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::std::result::Result<::serde::Value, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(try_from) = &item.attrs.try_from {
        format!(
            "let __proxy: {try_from} = ::serde::Deserialize::from_value(__value)?;\n\
             ::std::convert::TryFrom::try_from(__proxy).map_err(::serde::Error::custom)"
        )
    } else {
        match &item.shape {
            Shape::Tuple(1) if item.attrs.transparent => {
                format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
            }
            Shape::Named(fields) if item.attrs.transparent && fields.len() == 1 => {
                format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_value(__value)? }})",
                    fields[0]
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__private::field(__map, {f:?})?,"))
                    .collect();
                format!(
                    "let __map = ::serde::__private::as_map(__value)?;\n\
                     Ok({name} {{\n{}\n}})",
                    inits.join("\n")
                )
            }
            Shape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|idx| format!("::serde::Deserialize::from_value(&__seq[{idx}])?,"))
                    .collect();
                format!(
                    "let __seq = match __value {{\n\
                     ::serde::Value::Seq(s) if s.len() == {n} => s,\n\
                     _ => return Err(::serde::Error::custom(\
                     \"expected a sequence of {n}\")),\n}};\n\
                     Ok({name}({}))",
                    inits.join(" ")
                )
            }
            Shape::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                    .collect();
                format!(
                    "let ::serde::Value::String(__s) = __value else {{\n\
                     return Err(::serde::Error::custom(\"expected a variant name string\"));\n}};\n\
                     match __s.as_str() {{\n{}\n\
                     other => Err(::serde::Error::custom(format!(\
                     \"unknown variant `{{other}}`\"))),\n}}",
                    arms.join("\n")
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
