//! A minimal, offline stand-in for the `serde` crate.
//!
//! The real `serde` models serialisation as a streaming visitor protocol; this
//! stub models it as conversion to and from an owned [`Value`] tree, which is
//! all the ITSPQ workspace needs (JSON round-trips through `serde_json`).
//! The public names mirror the real crate closely enough that `use
//! serde::{Deserialize, Serialize}` and `#[derive(Serialize, Deserialize)]`
//! with the `transparent` and `try_from`/`into` container attributes work
//! unchanged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data model value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (order preserved for round-trips).
    Map(Vec<(String, Value)>),
}

/// A number that remembers whether it was written as an integer or a float,
/// so `5` round-trips as `5` and `12.0` as `12.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy only beyond 2^53).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

/// Serialisation/deserialisation error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    ///
    /// # Errors
    /// Propagates conversion failures (e.g. non-finite floats at the JSON
    /// layer use this channel).
    fn to_value(&self) -> Result<Value, Error>;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data-model tree.
    ///
    /// # Errors
    /// Returns an error when the value shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Marker alias used by some generic code in the real serde.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

fn unexpected(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    };
    Error(format!("expected {expected}, found {kind}"))
}

impl Serialize for bool {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Bool(*self))
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Result<Value, Error> {
                Ok(Value::Number(Number::U(*self as u64)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("integer {u} out of range"))),
                    Value::Number(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range"))),
                    other => Err(unexpected("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Result<Value, Error> {
                let v = i64::from(*self);
                Ok(Value::Number(if v < 0 { Number::I(v) } else { Number::U(v as u64) }))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(Number::U(u)) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("integer {u} out of range"))),
                    Value::Number(Number::I(i)) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range"))),
                    other => Err(unexpected("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Result<Value, Error> {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).map(|v| v as isize)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Number(Number::F(*self)))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Number(Number::F(f64::from(*self))))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.clone()))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.to_owned()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.to_string()))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected a single character, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Result<Value, Error> {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Result<Value, Error> {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Seq(
            self.iter()
                .map(Serialize::to_value)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Result<Value, Error> {
        match self {
            None => Ok(Value::Null),
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Result<Value, Error> {
                Ok(Value::Seq(vec![$(self.$idx.to_value()?),+]))
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected a tuple of {expected}, got {}", items.len())));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(unexpected("tuple sequence", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Result<Value, Error> {
        self.as_slice().to_value()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Result<Value, Error> {
        // Sort keys for a deterministic encoding.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Ok(Value::Map(
            keys.into_iter()
                .map(|k| Ok((k.clone(), self[k].to_value()?)))
                .collect::<Result<_, Error>>()?,
        ))
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Result<Value, Error> {
        Ok(Value::Map(
            self.iter()
                .map(|(k, v)| Ok((k.clone(), v.to_value()?)))
                .collect::<Result<_, Error>>()?,
        ))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("map", other)),
        }
    }
}

/// Support code referenced by `serde_derive`-generated impls. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in a struct's map encoding and deserialises it;
    /// missing keys deserialise as `null` (so `Option` fields default to
    /// `None`).
    ///
    /// # Errors
    /// Propagates the field's own deserialisation error.
    pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, Error> {
        let found = entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        match found {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Unwraps a map encoding or errors.
    ///
    /// # Errors
    /// Returns an error when the value is not a map.
    pub fn as_map(value: &Value) -> Result<&[(String, Value)], Error> {
        match value {
            Value::Map(entries) => Ok(entries),
            _ => Err(Error::custom("expected a map")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert!(bool::from_value(&Value::Bool(true)).unwrap());
        assert_eq!(u32::from_value(&Value::Number(Number::U(7))).unwrap(), 7);
        assert!(u32::from_value(&Value::Number(Number::I(-1))).is_err());
        assert_eq!(f64::from_value(&Value::Number(Number::U(5))).unwrap(), 5.0);
        let v: Vec<u8> = Vec::from_value(&vec![1u8, 2, 3].to_value().unwrap()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value().unwrap(), Value::Null);
        let back: Option<u32> = Option::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
        let back: Option<u32> = Option::from_value(&Value::Number(Number::U(3))).unwrap();
        assert_eq!(back, Some(3));
    }
}
