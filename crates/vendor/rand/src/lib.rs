//! A minimal, offline stand-in for the `rand` crate.
//!
//! Provides the surface this workspace uses: [`rngs::StdRng`] (a xoshiro256**
//! generator), [`SeedableRng::seed_from_u64`], the [`Rng`] core trait and the
//! [`RngExt`] extension with [`RngExt::random_range`] over integer and float
//! ranges. Deterministic and not cryptographically secure — exactly what a
//! reproducible benchmark workload wants.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Samples uniformly from a range (`a..b` or `a..=b`; integers or floats).
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng> RngExt for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample(self, rng: &mut impl Rng) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                // Wrapping subtraction handles wide signed ranges
                // (e.g. i64::MIN..i64::MAX) without debug overflow.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                ((self.start as u64).wrapping_add(rng.next_u64() % span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                ((lo as u64).wrapping_add(rng.next_u64() % span)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut impl Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator of this stub: xoshiro256**, seeded via
    /// splitmix64. Deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.random_range(-2.5f64..=7.5);
            assert!((-2.5..=7.5).contains(&f));
            let i = rng.random_range(5u32..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn full_width_and_wide_signed_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        // Exercised in debug builds, where arithmetic overflow panics.
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
        let _ = rng.random_range(i64::MIN..i64::MAX);
        let v = rng.random_range(i32::MIN..=i32::MAX);
        let _ = v;
        let w = rng.random_range(-5i32..5);
        assert!((-5..5).contains(&w));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0u64..u64::MAX) == b.random_range(0u64..u64::MAX))
            .count();
        assert!(same < 4);
    }
}
