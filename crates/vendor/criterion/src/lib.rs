//! A minimal, offline stand-in for `criterion`.
//!
//! Runs each benchmark for roughly the configured measurement time and
//! prints the mean iteration latency — no statistics, plots or baselines.
//! Understands enough of the cargo bench protocol to behave: `--test` (from
//! `cargo test --benches`) runs every benchmark exactly once, and a
//! positional argument filters benchmarks by substring.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, as the real crate provides.
pub use std::hint::black_box;

/// The benchmark context handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Real-criterion flags that take a value: consume it so it is
                // not mistaken for a positional benchmark filter.
                "--sample-size"
                | "--measurement-time"
                | "--warm-up-time"
                | "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--profile-time"
                | "--color"
                | "--output-format"
                | "--significance-level"
                | "--noise-threshold" => {
                    args.next();
                }
                // Other flags (cargo's --bench, --quiet, ...) are ignored.
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            _measurement_kind: std::marker::PhantomData,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(name.to_string(), f);
        g.finish();
        self
    }
}

/// Measurement strategies; only wall-clock time exists in this stub.
pub mod measurement {
    /// Wall-clock time measurement (the default).
    pub struct WallTime;
}

/// A named benchmark id, optionally parameterised (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from a parameter value only.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    criterion: &'a mut Criterion,
    warm_up: Duration,
    measurement: Duration,
    _measurement_kind: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Sets the nominal sample count. Accepted for API compatibility; this
    /// stub sizes runs by time, not samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            test_mode: self.criterion.test_mode,
            total_iters: 0,
            total_time: Duration::ZERO,
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra in this stub).
    pub fn finish(self) {}
}

/// Runs the measured routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    total_iters: u64,
    total_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly for the configured measurement time (or
    /// exactly once under `--test`) and records the mean latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.total_iters = 1;
            self.total_time = Duration::from_nanos(1);
            return;
        }
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            black_box(routine());
            iters += 1;
        }
        self.total_iters = iters.max(1);
        self.total_time = start.elapsed();
    }

    fn report(&self, name: &str) {
        if self.total_iters == 0 {
            println!("{name:<60} (no measurement: bencher was not driven)");
            return;
        }
        if self.test_mode {
            println!("{name:<60} ok (test mode)");
            return;
        }
        let mean = self.total_time.as_secs_f64() / self.total_iters as f64;
        println!(
            "{name:<60} time: {:>12} iters: {}",
            format_seconds(mean),
            self.total_iters
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("t");
        g.bench_function("case", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("only-this".into()),
            test_mode: true,
        };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("t");
        g.bench_function("other", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 0);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(format_seconds(2.5e-9), "2.50 ns");
        assert_eq!(format_seconds(2.5e-3), "2.50 ms");
    }
}
