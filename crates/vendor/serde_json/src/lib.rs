//! A minimal, offline stand-in for `serde_json`.
//!
//! Prints and parses the JSON encoding of the vendored `serde` [`Value`]
//! tree. Integers print without a fractional part, floats print via Rust's
//! shortest round-trippable formatting, so `DoorId(5)` encodes as `5` and
//! `12.0` as `12.0`, matching the real crate closely enough for this
//! workspace's round-trip tests.

use std::fmt;

use serde::{Deserialize, Number, Serialize, Value};

/// JSON encoding or decoding error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialises a value to compact JSON text.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them) or any
/// error from the type's `Serialize` impl.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = value.to_value()?;
    let mut out = String::new();
    write_value(&tree, &mut out)?;
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::I(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::F(f)) => {
            if !f.is_finite() {
                return Err(Error(format!("cannot serialise non-finite float {f}")));
            }
            // `{:?}` on f64 is the shortest representation that round-trips,
            // and always contains `.` or `e` for finite values.
            out.push_str(&format!("{f:?}"));
        }
        Value::String(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                char::from_u32(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00))
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                }
                None => return Err(Error("unterminated string".into())),
                _ => unreachable!(),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("bad \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        let n = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
            )
        } else if let Some(neg) = text.strip_prefix('-') {
            let _ = neg;
            Number::I(
                text.parse::<i64>()
                    .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
            )
        } else {
            Number::U(
                text.parse::<u64>()
                    .map_err(|e| Error(format!("bad number `{text}`: {e}")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&12.0f64).unwrap(), "12.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("12.0").unwrap(), 12.0);
        assert_eq!(from_str::<f64>("5").unwrap(), 5.0);
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn nested_round_trips() {
        let v = vec![vec![1.5f64, 2.0], vec![]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1.5,2.0],[]]");
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn whitespace_and_errors() {
        let ok: Vec<u8> = from_str(" [ 1 , 2 ]\n").unwrap();
        assert_eq!(ok, vec![1, 2]);
        assert!(from_str::<u32>("5x").is_err());
        assert!(from_str::<u32>("\"five\"").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
