//! A minimal, offline stand-in for `parking_lot`, wrapping `std::sync`
//! primitives with the real crate's poison-free API: lock methods return
//! guards directly, and poisoning is ignored (`PoisonError::into_inner`),
//! matching parking_lot's behaviour of never poisoning.

use std::sync;

/// A reader-writer lock with `parking_lot`'s guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with `parking_lot`'s guard-returning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
