//! A minimal, offline stand-in for `proptest`.
//!
//! Samples strategies with a deterministic per-case RNG and runs each test
//! body `ProptestConfig::cases` times. No shrinking: a failing case reports
//! its values via the assertion message instead. The API mirrors the subset
//! of real proptest used by this workspace: the [`proptest!`] macro (with
//! `#![proptest_config(...)]`), range and tuple strategies,
//! `prop_map`/`prop_filter`/`prop_filter_map`, `prop::collection::vec`,
//! `prop::bool::weighted`, `any::<T>()` and `prop_assert*`.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The per-case random source.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic RNG handed to strategies; wraps the vendored rand
    /// stub's `StdRng` so sampling logic lives in one crate.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator for one test case: seeded from the test name and the
        /// case index, so runs are reproducible and cases independent.
        #[must_use]
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            TestRng::next_u64(self)
        }
    }
}

use test_runner::TestRng;

/// Limit on consecutive `prop_filter`/`prop_filter_map` rejections before the
/// harness gives up (mirrors real proptest's global rejection cap).
const MAX_REJECTS: u32 = 4096;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure of a single test case (returned by `prop_assert*` and `?`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`], mirroring the real API.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values where `f` returns `Some`, resampling otherwise.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason: reason.into(),
        }
    }

    /// Keeps only values satisfying `f`, resampling otherwise.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason: reason.into(),
        }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected {MAX_REJECTS} samples: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected {MAX_REJECTS} samples: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy always yielding clones of one value (mirrors `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Range strategies delegate to the vendored rand stub so the (subtle)
// uniform-sampling arithmetic lives in exactly one crate.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::SampleRange::sample(self.clone(), rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, as in `any::<bool>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for [`Arbitrary`] scalar types.
pub struct AnyScalar<T>(std::marker::PhantomData<T>);

impl Strategy for AnyScalar<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyScalar<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyScalar(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyScalar<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyScalar<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyScalar(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::weighted`).

    use super::{Strategy, TestRng};

    /// A boolean that is `true` with probability `p`.
    #[must_use]
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for the supported grammar:
/// an optional `#![proptest_config(expr)]` followed by `#[test] fn
/// name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ($($pat,)*) = (
                        $($crate::Strategy::sample(&($strat), &mut rng),)*
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("property `{}` failed at case {case}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the rest of the case when the assumption fails. This stub counts a
/// violated assumption as a (vacuously) passing case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn maps_and_ranges(v in even(), f in 0.5f64..2.0, (a, b) in (0u8..4, 1u8..=3)) {
            prop_assert!(v % 2 == 0);
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(a < 4 && (1..=3).contains(&b));
        }

        #[test]
        fn vectors_respect_sizes(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_and_filters(v in (0u32..100).prop_filter("even only", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn question_mark_works(v in 0u32..10) {
            let checked: Result<u32, TestCaseError> = Ok(v);
            let v = checked?;
            prop_assert!(v < 10);
        }
    }

    #[test]
    fn weighted_bool_is_biased() {
        let mut rng = crate::test_runner::TestRng::for_case("weighted", 0);
        let w = prop::bool::weighted(0.9);
        let trues = (0..1000).filter(|_| w.sample(&mut rng)).count();
        assert!(trues > 800, "{trues}");
        let heavy = prop::bool::weighted(0.0);
        assert!((0..100).all(|_| !heavy.sample(&mut rng)));
    }
}
