//! Smoke test of the bench harness on the paper's running example: the
//! runner and parameter grid must produce a non-empty result table, so the
//! figure pipeline cannot silently bit-rot between benchmark runs.

use indoor_space::paper_example;
use indoor_time::TimeOfDay;
use itspq_bench::figures::{FigRow, Figure};
use itspq_bench::{measure_query_set, MethodKind, PaperParams};
use itspq_core::{ItGraph, ItspqConfig, Query};

#[test]
fn runner_measures_paper_example_queries() {
    let ex = paper_example::build();
    let graph = ItGraph::new(ex.space.clone());
    let queries = vec![
        // Example 1 of the paper: feasible at 9:00.
        Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
        Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)),
    ];
    for method in [MethodKind::ItgS, MethodKind::ItgA] {
        let m = measure_query_set(&graph, method, ItspqConfig::default(), &queries, 2);
        assert_eq!(m.total, 2, "{}: wrong query count", method.label());
        assert!(m.found >= 1, "{}: found no paths at all", method.label());
        assert!(m.mean_time_us > 0.0, "{}: no time measured", method.label());
        assert!(
            m.mean_mem_kb > 0.0,
            "{}: no memory estimated",
            method.label()
        );
    }
}

#[test]
fn figure_table_is_non_empty_on_paper_example() {
    let ex = paper_example::build();
    let graph = ItGraph::new(ex.space.clone());
    let queries = vec![Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0))];
    let series = [MethodKind::ItgS, MethodKind::ItgA]
        .into_iter()
        .map(|m| {
            let meas = measure_query_set(&graph, m, ItspqConfig::default(), &queries, 1);
            (m.label().to_owned(), meas)
        })
        .collect();
    let fig = Figure {
        id: "smoke",
        title: "paper example smoke",
        x_name: "q",
        unit: "us",
        rows: vec![FigRow {
            x: "p3-p4@9:00".into(),
            series,
        }],
    };
    let table = fig.table();
    assert!(
        table.contains("ITG/S") && table.contains("ITG/A"),
        "{table}"
    );
    assert!(table.lines().count() >= 3, "table lost its rows:\n{table}");
}

#[test]
fn paper_params_grid_is_complete() {
    let full = PaperParams::default();
    let smoke = PaperParams::smoke();
    // The smoke grid must stay a subset of the paper grid so CI exercises
    // the same code paths the full experiments use.
    assert!(smoke.t_sizes.iter().all(|t| full.t_sizes.contains(t)));
    assert!(smoke.deltas.iter().all(|d| full.deltas.contains(d)));
    assert!(!smoke.times.is_empty() && smoke.pairs_per_setting > 0);
    let table2 = full.table2();
    assert!(table2.contains("TABLE II") && table2.contains("1500"));
}

#[test]
fn table1_matches_paper_atis() {
    let t = itspq_bench::figures::table1();
    assert!(t.contains("d9") && t.contains("[0:00, 6:00)"), "{t}");
}
