//! Ablations over the design choices called out in `DESIGN.md` §6–7:
//!
//! * `ExpandPolicy::PaperPruned` vs `FullRelax` (visited-partition pruning);
//! * `AsynMode::Faithful` vs `Exact` (drop-on-refresh vs re-check);
//! * ITG/A with warm vs cold reduced-graph cache (`Graph_Update` amortisation);
//! * the temporal-oblivious and snapshot baselines vs ITG/S;
//! * the waiting extension (earliest arrival, unlimited waiting).

use criterion::{criterion_group, criterion_main, Criterion};
use indoor_time::TimeOfDay;
use itspq_bench::Workload;
use itspq_core::{
    baselines, waiting, AsynEngine, AsynMode, ExpandPolicy, ItspqConfig, Query, SynEngine,
};
use std::hint::black_box;
use std::time::Duration;

fn queries(w: &Workload) -> Vec<Query> {
    w.queries(1500.0, TimeOfDay::hm(12, 0), 2)
}

fn bench_expand_policy(c: &mut Criterion) {
    let w = Workload::paper(8);
    let qs = queries(&w);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    let pruned = SynEngine::new(w.graph.clone(), ItspqConfig::default());
    let full = SynEngine::new(
        w.graph.clone(),
        ItspqConfig::default().with_expand(ExpandPolicy::FullRelax),
    );
    g.bench_function("expand/paper-pruned", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(pruned.query(black_box(q)));
            })
        });
    });
    g.bench_function("expand/full-relax", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(full.query(black_box(q)));
            })
        });
    });
    g.finish();
}

fn bench_asyn_modes(c: &mut Criterion) {
    let w = Workload::paper(8);
    // Query just before a checkpoint so refreshes actually occur.
    let qs = w.queries(1500.0, TimeOfDay::hms(10, 29, 0), 2);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    let faithful = AsynEngine::new(w.graph.clone(), ItspqConfig::default());
    let exact = AsynEngine::new(
        w.graph.clone(),
        ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
    );
    for q in &qs {
        let _ = faithful.query(q);
        let _ = exact.query(q);
    }
    g.bench_function("asyn/faithful", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(faithful.query(black_box(q)));
            })
        });
    });
    g.bench_function("asyn/exact", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(exact.query(black_box(q)));
            })
        });
    });
    g.finish();
}

fn bench_cache_warmth(c: &mut Criterion) {
    let w = Workload::paper(8);
    let qs = queries(&w);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let warm = AsynEngine::new(w.graph.clone(), ItspqConfig::default());
    warm.precompute_all();
    let cold = AsynEngine::new(
        w.graph.clone(),
        ItspqConfig::default().with_cache_views(false),
    );
    g.bench_function("itg-a/warm-cache", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(warm.query(black_box(q)));
            })
        });
    });
    g.bench_function("itg-a/cold-graph-update", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(cold.query(black_box(q)));
            })
        });
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let w = Workload::paper(8);
    let qs = queries(&w);
    let cfg = ItspqConfig::default();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    let syn = SynEngine::new(w.graph.clone(), cfg);
    g.bench_function("baseline/itg-s", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(syn.query(black_box(q)));
            })
        });
    });
    g.bench_function("baseline/static", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(baselines::static_shortest_path(
                    &w.graph,
                    black_box(q),
                    &cfg,
                ));
            });
        });
    });
    g.bench_function("baseline/snapshot", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(baselines::snapshot_shortest_path(
                    &w.graph,
                    black_box(q),
                    &cfg,
                ));
            });
        });
    });
    g.bench_function("extension/waiting-unlimited", |b| {
        b.iter(|| {
            qs.iter().for_each(|q| {
                let _ = black_box(waiting::earliest_arrival(
                    &w.graph,
                    black_box(q),
                    &cfg,
                    waiting::WaitPolicy::Unlimited,
                ));
            });
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_expand_policy,
    bench_asyn_modes,
    bench_cache_warmth,
    bench_baselines
);
criterion_main!(benches);
