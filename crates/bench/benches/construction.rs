//! Construction costs: venue generation, IT-Graph assembly and Algorithm 3's
//! `Graph_Update` (the reduced-graph build that ITG/A amortises across
//! checkpoints).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indoor_synthetic::{build_mall, HoursConfig, MallConfig, ShopHours};
use indoor_time::TimeOfDay;
use itspq_core::{ItGraph, ReducedGraph};
use std::hint::black_box;
use std::time::Duration;

fn bench_build_mall(c: &mut Criterion) {
    let hours = ShopHours::sample(&HoursConfig::default());
    let mut g = c.benchmark_group("construction");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    for floors in [1u16, 3, 5] {
        let cfg = MallConfig::paper_default().with_floors(floors);
        g.bench_with_input(BenchmarkId::new("build_mall", floors), &cfg, |b, cfg| {
            b.iter(|| build_mall(black_box(cfg), &hours));
        });
        // The geodesic stress case: comb service corridors force real
        // interior shortest paths in every corridor matrix.
        let comb = cfg.with_comb_corridors();
        g.bench_with_input(
            BenchmarkId::new("build_mall_comb", floors),
            &comb,
            |b, cfg| {
                b.iter(|| build_mall(black_box(cfg), &hours));
            },
        );
    }
    g.finish();
}

fn bench_graph_update(c: &mut Criterion) {
    let hours = ShopHours::sample(&HoursConfig::default());
    let space = build_mall(&MallConfig::paper_default(), &hours);
    let graph = ItGraph::new(space);
    let mut g = c.benchmark_group("construction");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    // Graph_Update at a busy instant (noon) and a quiet one (3:00).
    for (label, t) in [
        ("noon", TimeOfDay::hm(12, 0)),
        ("night", TimeOfDay::hm(3, 0)),
    ] {
        g.bench_with_input(BenchmarkId::new("graph_update", label), &t, |b, t| {
            b.iter(|| ReducedGraph::build(black_box(graph.space()), *t));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build_mall, bench_graph_update);
criterion_main!(benches);
