//! Scalability beyond the paper's fixed five floors: venue size sweep and the
//! extension algorithms (k-shortest, profile) on the default venue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indoor_synthetic::{build_mall, HoursConfig, MallConfig, QueryGenConfig, ShopHours};
use indoor_time::{DurationSecs, TimeOfDay};
use itspq_core::{k_shortest_paths, profile::departure_profile, ItGraph, ItspqConfig, SynEngine};
use std::hint::black_box;
use std::time::Duration;

fn bench_floor_scaling(c: &mut Criterion) {
    let hours = ShopHours::sample(&HoursConfig::default());
    let mut g = c.benchmark_group("scalability");
    g.sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    for floors in [1u16, 3, 5, 7, 9] {
        let space = build_mall(&MallConfig::paper_default().with_floors(floors), &hours);
        let graph = ItGraph::new(space);
        let queries: Vec<_> =
            indoor_synthetic::generate_queries(&graph, &QueryGenConfig::default().with_count(2))
                .into_iter()
                .map(|gq| gq.query)
                .collect();
        let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
        g.bench_with_input(
            BenchmarkId::new("itg-s/floors", floors),
            &queries,
            |b, qs| {
                b.iter(|| {
                    qs.iter().for_each(|q| {
                        let _ = black_box(syn.query(black_box(q)));
                    });
                });
            },
        );
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let hours = ShopHours::sample(&HoursConfig::default());
    let space = build_mall(&MallConfig::paper_default(), &hours);
    let graph = ItGraph::new(space);
    let q = indoor_synthetic::generate_queries(&graph, &QueryGenConfig::default().with_count(1))[0]
        .query;
    let mut g = c.benchmark_group("scalability");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    let cfg = ItspqConfig::full_relax();
    g.bench_function("extensions/k-shortest-3", |b| {
        b.iter(|| black_box(k_shortest_paths(&graph, black_box(&q), &cfg, 3)));
    });
    g.bench_function("extensions/profile-8h-5min", |b| {
        b.iter(|| {
            black_box(departure_profile(
                &graph,
                q.source,
                q.target,
                TimeOfDay::hm(8, 0),
                TimeOfDay::hm(16, 0),
                DurationSecs::from_minutes(5.0),
                &ItspqConfig::default(),
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_floor_scaling, bench_extensions);
criterion_main!(benches);
