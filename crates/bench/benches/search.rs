//! Criterion counterpart of Figures 4–6: ITG/S vs ITG/A search latency across
//! the paper's parameter sweeps on the default five-floor venue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indoor_time::TimeOfDay;
use itspq_bench::Workload;
use itspq_core::{AsynEngine, ItspqConfig, SynEngine};
use std::hint::black_box;
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("search");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    g
}

/// Figure 4 sweep: |T| ∈ {4, 8, 12, 16} at t = 12:00 and t = 8:00.
fn bench_t_set(c: &mut Criterion) {
    let mut g = quick(c);
    for t_size in [4usize, 8, 12, 16] {
        let w = Workload::paper(t_size);
        for hour in [12u32, 8] {
            let queries = w.queries(1500.0, TimeOfDay::hm(hour, 0), 2);
            let syn = SynEngine::new(w.graph.clone(), ItspqConfig::default());
            let asyn = AsynEngine::new(w.graph.clone(), ItspqConfig::default());
            for q in &queries {
                let _ = asyn.query(q); // warm the reduced-graph cache
            }
            g.bench_with_input(
                BenchmarkId::new(format!("fig4/ITG-S/t={hour}"), t_size),
                &queries,
                |b, qs| {
                    b.iter(|| {
                        qs.iter().for_each(|q| {
                            let _ = black_box(syn.query(black_box(q)));
                        })
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("fig4/ITG-A/t={hour}"), t_size),
                &queries,
                |b, qs| {
                    b.iter(|| {
                        qs.iter().for_each(|q| {
                            let _ = black_box(asyn.query(black_box(q)));
                        })
                    })
                },
            );
        }
    }
    g.finish();
}

/// Figure 5 sweep: δs2t ∈ {1100 … 1900} m.
fn bench_s2t(c: &mut Criterion) {
    let w = Workload::paper(8);
    let mut g = quick(c);
    for delta in [1100.0, 1300.0, 1500.0, 1700.0, 1900.0] {
        let queries = w.queries(delta, TimeOfDay::hm(12, 0), 2);
        let syn = SynEngine::new(w.graph.clone(), ItspqConfig::default());
        let asyn = AsynEngine::new(w.graph.clone(), ItspqConfig::default());
        for q in &queries {
            let _ = asyn.query(q);
        }
        g.bench_with_input(
            BenchmarkId::new("fig5/ITG-S", delta as u64),
            &queries,
            |b, qs| {
                b.iter(|| {
                    qs.iter().for_each(|q| {
                        let _ = black_box(syn.query(black_box(q)));
                    })
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("fig5/ITG-A", delta as u64),
            &queries,
            |b, qs| {
                b.iter(|| {
                    qs.iter().for_each(|q| {
                        let _ = black_box(asyn.query(black_box(q)));
                    })
                })
            },
        );
    }
    g.finish();
}

/// Figure 6 sweep: query time t ∈ {0:00, 6:00, 12:00, 18:00, 22:00} (a
/// representative subset of the paper's 12 probes to keep bench time sane).
fn bench_query_time(c: &mut Criterion) {
    let w = Workload::paper(8);
    let mut g = quick(c);
    for hour in [0u32, 6, 12, 18, 22] {
        let queries = w.queries(1500.0, TimeOfDay::hm(hour, 0), 2);
        let syn = SynEngine::new(w.graph.clone(), ItspqConfig::default());
        let asyn = AsynEngine::new(w.graph.clone(), ItspqConfig::default());
        for q in &queries {
            let _ = asyn.query(q);
        }
        g.bench_with_input(BenchmarkId::new("fig6/ITG-S", hour), &queries, |b, qs| {
            b.iter(|| {
                qs.iter().for_each(|q| {
                    let _ = black_box(syn.query(black_box(q)));
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("fig6/ITG-A", hour), &queries, |b, qs| {
            b.iter(|| {
                qs.iter().for_each(|q| {
                    let _ = black_box(asyn.query(black_box(q)));
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_t_set, bench_s2t, bench_query_time);
criterion_main!(benches);
