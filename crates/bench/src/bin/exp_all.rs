//! Runs the complete evaluation of the paper: prints Tables I–II and
//! regenerates Figures 4–7, writing CSVs under `results/`.
//!
//! Usage:
//!   exp_all [--quick] [table1|table2|fig4|fig5|fig6|fig7]...
//!
//! With no selector, everything runs. `--quick` uses the reduced smoke grid.

use std::path::Path;

use itspq_bench::{figures, PaperParams, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selectors: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--quick")
        .collect();
    let all = selectors.is_empty();
    let wants = |k: &str| all || selectors.contains(&k);

    let params = if quick {
        PaperParams::smoke()
    } else {
        PaperParams::default()
    };
    let results = Path::new("results");

    if wants("table1") {
        println!("{}", figures::table1());
    }
    if wants("table2") {
        println!("{}\n", params.table2());
    }
    for (key, fig) in [
        ("fig4", wants("fig4").then(|| figures::fig4(&params))),
        ("fig5", wants("fig5").then(|| figures::fig5(&params))),
        ("fig6", wants("fig6").then(|| figures::fig6(&params))),
        ("fig7", wants("fig7").then(|| figures::fig7(&params))),
    ] {
        if let Some(fig) = fig {
            println!("{}", fig.table());
            match fig.write_csv(results) {
                Ok(path) => println!("wrote {}\n", path.display()),
                Err(e) => eprintln!("could not write {key}.csv: {e}"),
            }
        }
    }
}
