//! Construction-cost sweep: seconds to generate and build the synthetic mall
//! (`mall_builder` + `VenueBuilder` pipeline) as floor count grows.
//!
//! Three series per floor count in `{5, 10, 25, 50}`:
//!
//! * `band/fast` — the original rectangular-corridor mall (all partitions
//!   convex, Euclidean distances) through the production pipeline;
//! * `comb/fast` — comb-shaped service corridors (geodesic distance model,
//!   real visibility-graph shortest paths in every corridor matrix) through
//!   the production pipeline: per-polygon `GeodesicSolver` one-to-many
//!   queries plus the parallel matrix fan-out;
//! * `comb/sequential` — the same venue through
//!   `VenueBuilder::build_sequential`, the pre-overhaul reference path that
//!   rebuilds the visibility graph for every door pair.
//!
//! The fast and sequential builds are asserted equal at every sweep point
//! before timings are reported. Output: an aligned table,
//! `results/construction.csv`, and the committed `BENCH_construction.json`
//! baseline. `--quick` (wired into CI) sweeps `{5, 10}` only and exits
//! non-zero if the 10-floor comb fast build exceeds a generous wall-clock
//! budget, catching construction regressions before they reach the figure
//! sweeps.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use indoor_synthetic::{mall_builder, HoursConfig, MallConfig, ShopHours};

/// Generous CI budget for the 10-floor comb fast build, in seconds. The
/// measured value on a pinned single-core container is ~0.05 s; tripping this
/// means construction got at least two orders of magnitude slower.
const QUICK_BUDGET_SECS: f64 = 15.0;

struct SweepPoint {
    venue: &'static str,
    pipeline: &'static str,
    floors: u16,
    partitions: usize,
    doors: usize,
    seconds: f64,
    /// Sequential seconds / this pipeline's seconds for the same venue
    /// (1.0 for the sequential series itself; None where sequential was not
    /// measured).
    speedup: Option<f64>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let floor_counts: &[u16] = if quick { &[5, 10] } else { &[5, 10, 25, 50] };
    let hours = ShopHours::sample(&HoursConfig::default());
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("host parallelism: {host_cores}, sweep: {floor_counts:?} floors");

    let mut points: Vec<SweepPoint> = Vec::new();
    let mut budget_witness: Option<f64> = None;
    for &floors in floor_counts {
        let band = MallConfig::paper_default().with_floors(floors);
        let comb = band.with_comb_corridors();

        let t = Instant::now();
        let band_space = mall_builder(&band, &hours).build().unwrap();
        let band_fast = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let comb_space = mall_builder(&comb, &hours).build().unwrap();
        let comb_fast = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let comb_seq_space = mall_builder(&comb, &hours).build_sequential().unwrap();
        let comb_seq = t.elapsed().as_secs_f64();
        assert_eq!(
            comb_space, comb_seq_space,
            "fast and sequential pipelines diverged at {floors} floors"
        );

        let stats = comb_space.stats();
        println!(
            "floors={floors:>3}  partitions={:>5}  doors={:>5}  band/fast={band_fast:>8.3}s  \
             comb/fast={comb_fast:>8.3}s  comb/sequential={comb_seq:>8.3}s  speedup={:>5.1}x",
            stats.partitions,
            stats.doors,
            comb_seq / comb_fast,
        );
        points.push(SweepPoint {
            venue: "mall-band",
            pipeline: "fast",
            floors,
            partitions: band_space.num_partitions(),
            doors: band_space.num_doors(),
            seconds: band_fast,
            speedup: None,
        });
        points.push(SweepPoint {
            venue: "mall-comb",
            pipeline: "fast",
            floors,
            partitions: stats.partitions,
            doors: stats.doors,
            seconds: comb_fast,
            speedup: Some(comb_seq / comb_fast),
        });
        points.push(SweepPoint {
            venue: "mall-comb",
            pipeline: "sequential",
            floors,
            partitions: stats.partitions,
            doors: stats.doors,
            seconds: comb_seq,
            speedup: Some(1.0),
        });
        if floors == 10 {
            budget_witness = Some(comb_fast);
        }
    }

    let csv_path = Path::new("results").join("construction.csv");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(&csv_path, csv(&points)).expect("write construction csv");
    println!("wrote {}", csv_path.display());

    if !quick {
        let json_path = Path::new("BENCH_construction.json");
        std::fs::write(json_path, json_baseline(&points, host_cores))
            .expect("write construction baseline");
        println!("wrote {}", json_path.display());
    }

    if quick {
        let witness = budget_witness.expect("quick sweep includes 10 floors");
        assert!(
            witness <= QUICK_BUDGET_SECS,
            "construction regression: 10-floor comb fast build took {witness:.2}s \
             (budget {QUICK_BUDGET_SECS}s)"
        );
        println!("quick budget ok: 10-floor comb fast build {witness:.3}s <= {QUICK_BUDGET_SECS}s");
    }
}

fn csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("venue,pipeline,floors,partitions,doors,seconds,speedup\n");
    for p in points {
        let speedup = p.speedup.map_or(String::new(), |s| format!("{s:.2}"));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{}",
            p.venue, p.pipeline, p.floors, p.partitions, p.doors, p.seconds, speedup
        );
    }
    out
}

fn json_baseline(points: &[SweepPoint], host_cores: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"construction\",");
    let _ = writeln!(
        out,
        "  \"description\": \"build_mall + VenueBuilder pipeline seconds vs floors; \
         comb = geodesic service corridors, sequential = per-pair reference path\","
    );
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let speedup = p
            .speedup
            .map_or(String::from("null"), |s| format!("{s:.2}"));
        let _ = writeln!(
            out,
            "    {{\"venue\": \"{}\", \"pipeline\": \"{}\", \"floors\": {}, \
             \"partitions\": {}, \"doors\": {}, \"seconds\": {:.6}, \
             \"speedup_vs_sequential\": {}}}{}",
            p.venue, p.pipeline, p.floors, p.partitions, p.doors, p.seconds, speedup, comma
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
