//! Quantifies the semantic gaps documented in DESIGN.md §6 on randomised
//! workloads: how often do the faithful paper algorithms deviate from the
//! corrected variants and from the exhaustive oracle?
//!
//! Usage: `agreement [--cases N]` (default 400; venues are tiny malls so the
//! exponential oracle stays cheap).

use indoor_geom::Point;
use indoor_space::IndoorPoint;
use indoor_synthetic::{build_mall, HoursConfig, MallConfig, ShopHours};
use indoor_time::{TimeOfDay, WALKING_SPEED};
use itspq_core::{
    baselines, validate_path, AsynEngine, AsynMode, ItGraph, ItspqConfig, PathViolation, Query,
    SynEngine,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct Tally {
    cases: usize,
    feasible: usize,
    pruned_longer: usize,
    pruned_missed: usize,
    faithful_missed: usize,
    faithful_invalid: usize,
    engine_missed_vs_oracle: usize,
    engine_longer_vs_oracle: usize,
}

fn main() {
    let cases: usize = std::env::args()
        .skip_while(|a| a != "--cases")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    let mut t = Tally {
        cases,
        feasible: 0,
        pruned_longer: 0,
        pruned_missed: 0,
        faithful_missed: 0,
        faithful_invalid: 0,
        engine_missed_vs_oracle: 0,
        engine_longer_vs_oracle: 0,
    };

    for seed in 0..cases as u64 {
        let hours = ShopHours::sample(&HoursConfig::default().with_seed(seed));
        let space = build_mall(&MallConfig::tiny(), &hours);
        let graph = ItGraph::new(space);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA9EE);

        // Random endpoints and a random time biased towards transitions.
        let pick = |rng: &mut StdRng| -> IndoorPoint {
            let parts = graph.space().partitions();
            loop {
                let p = &parts[rng.random_range(0..parts.len())];
                if let Some(poly) = &p.polygon {
                    let (min, max) = poly.bounding_box();
                    let cand = Point::new(
                        rng.random_range(min.x..=max.x),
                        rng.random_range(min.y..=max.y),
                    );
                    if poly.contains(cand) {
                        return IndoorPoint::new(p.id, cand);
                    }
                }
            }
        };
        let (a, b) = (pick(&mut rng), pick(&mut rng));
        let time = TimeOfDay::from_seconds(f64::from(rng.random_range(0u32..86_400))).unwrap();
        let q = Query::new(a, b, time);

        let cfg_pruned = ItspqConfig::default();
        let cfg_full = ItspqConfig::full_relax();
        let pruned = SynEngine::new(graph.clone(), cfg_pruned).query(&q).path;
        let full = SynEngine::new(graph.clone(), cfg_full).query(&q).path;
        let faithful = AsynEngine::new(graph.clone(), cfg_pruned).query(&q).path;
        let _exact = AsynEngine::new(graph.clone(), cfg_pruned.with_asyn_mode(AsynMode::Exact));
        let oracle = baselines::exhaustive_shortest(&graph, &q, &cfg_full, 10);

        if oracle.is_some() {
            t.feasible += 1;
        }
        match (&pruned, &full) {
            (Some(p), Some(f)) if p.length > f.length + 1e-6 => t.pruned_longer += 1,
            (None, Some(_)) => t.pruned_missed += 1,
            _ => {}
        }
        match (&faithful, &pruned) {
            (None, Some(_)) => t.faithful_missed += 1,
            (Some(fp), _) => {
                if matches!(
                    validate_path(graph.space(), fp, time, WALKING_SPEED),
                    Err(PathViolation::DoorClosed { .. })
                ) {
                    t.faithful_invalid += 1;
                }
            }
            _ => {}
        }
        match (&full, &oracle) {
            (None, Some(_)) => t.engine_missed_vs_oracle += 1,
            (Some(e), Some(o)) if e.length > o.length + 1e-6 => t.engine_longer_vs_oracle += 1,
            _ => {}
        }
    }

    println!(
        "agreement statistics over {} random (venue, query, time) cases",
        t.cases
    );
    println!(
        "  feasible per oracle:                        {:>5}",
        t.feasible
    );
    println!(
        "  PaperPruned longer than FullRelax:          {:>5}",
        t.pruned_longer
    );
    println!(
        "  PaperPruned missed a FullRelax path:        {:>5}",
        t.pruned_missed
    );
    println!(
        "  ITG/A(Faithful) missed an ITG/S path:       {:>5}",
        t.faithful_missed
    );
    println!(
        "  ITG/A(Faithful) returned an invalid path:   {:>5}",
        t.faithful_invalid
    );
    println!(
        "  engine missed an oracle path (non-FIFO):    {:>5}",
        t.engine_missed_vs_oracle
    );
    println!(
        "  engine longer than oracle (non-FIFO):       {:>5}",
        t.engine_longer_vs_oracle
    );
}
