//! Regenerates Figure 4: search time vs |T| (t = 12:00 and 8:00).

use itspq_bench::{figures, PaperParams, TrackingAllocator};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        PaperParams::smoke()
    } else {
        PaperParams::default()
    };
    let fig = figures::fig4(&params);
    print!("{}", fig.table());
    let path = fig
        .write_csv(std::path::Path::new("results"))
        .expect("write csv");
    println!("wrote {}", path.display());
}
