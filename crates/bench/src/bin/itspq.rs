//! `itspq` — command-line front-end for the ITSPQ library.
//!
//! ```text
//! itspq generate [--floors N] [--t-size N] [--seed N] --out venue.json
//! itspq stats    venue.json
//! itspq audit    venue.json [--origin PARTITION]
//! itspq query    venue.json --from PID:X,Y --to PID:X,Y --at H:MM
//!                [--method syn|asyn] [--k N] [--wait MINUTES|unlimited]
//! itspq profile  venue.json --from PID:X,Y --to PID:X,Y
//!                --window H:MM-H:MM [--step SECONDS]
//! ```
//!
//! Points are given as a partition id plus floor-local coordinates; use
//! `stats`/`audit` output and the venue JSON to discover ids.

use std::collections::HashMap;
use std::process::ExitCode;

use indoor_geom::Point;
use indoor_space::{IndoorPoint, IndoorSpace, PartitionId};
use indoor_synthetic::{build_mall, HoursConfig, MallConfig, ShopHours};
use indoor_time::{DurationSecs, TimeOfDay};
use itspq_core::waiting::{earliest_arrival, WaitPolicy};
use itspq_core::{
    k_shortest_paths, profile::departure_profile, AsynEngine, ItGraph, ItspqConfig, Query,
    SynEngine,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `itspq help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let (positional, flags) = split_args(&args[1..]);
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            Ok(())
        }
        "generate" => generate(&flags),
        "convert" => convert(&positional, &flags),
        "stats" => stats(&positional),
        "audit" => audit_cmd(&positional, &flags),
        "query" => query_cmd(&positional, &flags),
        "profile" => profile_cmd(&positional, &flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

const USAGE: &str = "\
itspq — temporal-variation aware indoor shortest paths (ICDE 2020 reproduction)

  itspq generate [--floors N] [--t-size N] [--seed N] --out venue.json
  itspq convert  venue.{json|plan} --out venue.{plan|json}
  itspq stats    venue.json
  itspq audit    venue.json [--origin PARTITION]
  itspq query    venue.json --from PID:X,Y --to PID:X,Y --at H:MM
                 [--method syn|asyn] [--k N] [--wait MINUTES|unlimited]
  itspq profile  venue.json --from PID:X,Y --to PID:X,Y --window H:MM-H:MM
                 [--step SECONDS]";

fn split_args(rest: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut it = rest.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .peek()
                .filter(|v| !v.starts_with("--"))
                .map(|v| (*v).clone())
                .unwrap_or_default();
            if !value.is_empty() {
                it.next();
            }
            flags.insert(name.to_owned(), value);
        } else {
            positional.push(a.clone());
        }
    }
    (positional, flags)
}

/// Loads a venue from JSON or plan text (sniffed by the leading character).
fn load_space(positional: &[String]) -> Result<IndoorSpace, String> {
    let path = positional.first().ok_or("missing venue file")?;
    let data = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    if data.trim_start().starts_with('{') {
        serde_json::from_str(&data).map_err(|e| format!("parse {path}: {e}"))
    } else {
        indoor_space::plan_text::parse(&data).map_err(|e| format!("parse {path}: {e}"))
    }
}

fn convert(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let space = load_space(positional)?;
    let out = flags.get("out").ok_or("missing --out")?;
    let text = if out.ends_with(".json") {
        serde_json::to_string(&space).map_err(|e| e.to_string())?
    } else {
        indoor_space::plan_text::to_plan_text(&space)
    };
    std::fs::write(out, text).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out} ({})", space.stats());
    Ok(())
}

fn parse_time(s: &str) -> Result<TimeOfDay, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let err = || format!("bad time `{s}` (expected H:MM)");
    match parts.as_slice() {
        [h, m] => {
            let h: u32 = h.parse().map_err(|_| err())?;
            let m: u32 = m.parse().map_err(|_| err())?;
            if h > 23 || m > 59 {
                return Err(err());
            }
            Ok(TimeOfDay::hm(h, m))
        }
        _ => Err(err()),
    }
}

fn parse_point(space: &IndoorSpace, s: &str) -> Result<IndoorPoint, String> {
    let err = || format!("bad point `{s}` (expected PID:X,Y, e.g. 13:4.5,2.0)");
    let (pid, xy) = s.split_once(':').ok_or_else(err)?;
    let (x, y) = xy.split_once(',').ok_or_else(err)?;
    let pid: u32 = pid.parse().map_err(|_| err())?;
    if pid as usize >= space.num_partitions() {
        return Err(format!("partition v{pid} does not exist"));
    }
    Ok(IndoorPoint::new(
        PartitionId(pid),
        Point::new(x.parse().map_err(|_| err())?, y.parse().map_err(|_| err())?),
    ))
}

fn generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let floors: u16 = flags
        .get("floors")
        .map_or(Ok(5), |v| v.parse())
        .map_err(|_| "bad --floors")?;
    let t_size: usize = flags
        .get("t-size")
        .map_or(Ok(8), |v| v.parse())
        .map_err(|_| "bad --t-size")?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(0x5EED), |v| v.parse())
        .map_err(|_| "bad --seed")?;
    let out = flags.get("out").ok_or("missing --out")?;
    let hours = ShopHours::sample(&HoursConfig::default().with_t_size(t_size).with_seed(seed));
    let space = build_mall(&MallConfig::paper_default().with_floors(floors), &hours);
    println!("{}", space.stats());
    let json = serde_json::to_string(&space).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

fn stats(positional: &[String]) -> Result<(), String> {
    let space = load_space(positional)?;
    println!("{}", space.stats());
    println!("checkpoints: {}", space.checkpoints());
    println!("model bytes (approx): {}", space.heap_bytes());
    Ok(())
}

fn audit_cmd(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let space = load_space(positional)?;
    let origin: u32 = flags
        .get("origin")
        .map_or(Ok(0), |v| v.parse())
        .map_err(|_| "bad --origin")?;
    if origin as usize >= space.num_partitions() {
        return Err(format!("partition v{origin} does not exist"));
    }
    let report = indoor_space::audit::audit(&space, PartitionId(origin));
    println!("{report}");
    Ok(())
}

fn query_cmd(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let space = load_space(positional)?;
    let from = parse_point(&space, flags.get("from").ok_or("missing --from")?)?;
    let to = parse_point(&space, flags.get("to").ok_or("missing --to")?)?;
    let at = parse_time(flags.get("at").ok_or("missing --at")?)?;
    let graph = ItGraph::new(space);
    let config = ItspqConfig::default();
    let q = Query::new(from, to, at);

    if let Some(w) = flags.get("wait") {
        let policy = if w == "unlimited" {
            WaitPolicy::Unlimited
        } else {
            let mins: f64 = w.parse().map_err(|_| "bad --wait")?;
            WaitPolicy::UpTo(DurationSecs::from_minutes(mins))
        };
        match earliest_arrival(&graph, &q, &config, policy) {
            Some(tp) => println!(
                "earliest arrival {} after {:.1} m walk and {} waiting",
                tp.arrival, tp.walking_distance, tp.total_wait
            ),
            None => println!("no such routes (even with waiting)"),
        }
        return Ok(());
    }

    let k: usize = flags
        .get("k")
        .map_or(Ok(1), |v| v.parse())
        .map_err(|_| "bad --k")?;
    if k > 1 {
        let paths = k_shortest_paths(&graph, &q, &ItspqConfig::full_relax(), k);
        if paths.is_empty() {
            println!("no such routes");
        }
        for (i, p) in paths.iter().enumerate() {
            println!(
                "#{}: {:.1} m  {}",
                i + 1,
                p.length,
                p.format_with(graph.space())
            );
        }
        return Ok(());
    }

    let result = match flags.get("method").map(String::as_str) {
        Some("asyn") => AsynEngine::new(graph.clone(), config).query(&q),
        _ => SynEngine::new(graph.clone(), config).query(&q),
    };
    match result.path {
        Some(p) => {
            println!(
                "{} ({:.1} m, arrive {})",
                p.format_with(graph.space()),
                p.length,
                p.arrival
            );
            for hop in &p.hops {
                println!(
                    "  {:>7.1} m  {}  at {}",
                    hop.distance,
                    graph.space().door(hop.door).name,
                    hop.arrival
                );
            }
        }
        None => println!("no such routes"),
    }
    println!("stats: {}", result.stats);
    Ok(())
}

fn profile_cmd(positional: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    let space = load_space(positional)?;
    let from = parse_point(&space, flags.get("from").ok_or("missing --from")?)?;
    let to = parse_point(&space, flags.get("to").ok_or("missing --to")?)?;
    let window = flags.get("window").ok_or("missing --window")?;
    let (a, b) = window.split_once('-').ok_or("bad --window (H:MM-H:MM)")?;
    let (wa, wb) = (parse_time(a)?, parse_time(b)?);
    let step: f64 = flags
        .get("step")
        .map_or(Ok(60.0), |v| v.parse())
        .map_err(|_| "bad --step")?;
    let graph = ItGraph::new(space);
    let profile = departure_profile(
        &graph,
        from,
        to,
        wa,
        wb,
        DurationSecs::new(step.max(1.0)).map_err(|e| e.to_string())?,
        &ItspqConfig::default(),
    );
    for p in &profile.points {
        match p.length {
            Some(l) => println!("{:>8}  {l:>9.1} m", p.departure.to_string()),
            None => println!("{:>8}  no route", p.departure.to_string()),
        }
    }
    if let Some(best) = profile.best() {
        println!(
            "best departure: {} ({:.1} m)",
            best.departure,
            best.length.unwrap_or(f64::NAN)
        );
    }
    Ok(())
}
