//! Multi-threaded throughput on one shared venue, in two sweeps:
//!
//! 1. **Worker sweep** — queries/sec vs worker threads (1–8) for a
//!    [`itspq_core::VenueServer`] on a mixed-time batch;
//! 2. **Sharing sweep** — queries/sec vs batch size × traffic shape for
//!    every sharing level ([`itspq_core::BatchStrategy`] `Shared`,
//!    `SharedDoor`, `SharedDoor` + warm-start donation (`warm`),
//!    `SharedInterval`) against `Independent` on the *same* batches:
//!    exact-duplicate (source, time) pairs collapse at every level, while
//!    partition-clustered sources with jittered departures collapse only
//!    under door-level grouping, warm-start donation and interval
//!    coalescing.
//!
//! The default run uses the paper's five-floor mall and writes the committed
//! `BENCH_throughput.json` baseline plus `results/throughput*.csv`.
//! `--quick` (wired into CI) shrinks the venue to a single floor, asserts a
//! minimum realised grouping ratio per sharing level on its natural batch
//! shape (and that ratios are monotone as keys coarsen), and exits non-zero
//! if the hot batch exceeds a generous wall-clock budget — the serving-path
//! analogue of `construction --quick`.

use std::fmt::Write as _;
use std::path::Path;

use indoor_synthetic::MallConfig;
use indoor_time::TimeOfDay;
use itspq_bench::concurrency::{self, SharingPoint, ThroughputPoint, TrafficShape};
use itspq_bench::Workload;

/// Generous CI budget for one shared pass over the largest quick batch, in
/// seconds. The measured value on a pinned single-core container is well
/// under 0.1 s; tripping this means batch serving got ~two orders of
/// magnitude slower.
const QUICK_BUDGET_SECS: f64 = 10.0;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (workload, per_time) = if quick {
        (Workload::with_mall(MallConfig::single_floor(), 8), 16)
    } else {
        (Workload::paper(8), 64)
    };
    let delta = if quick { 600.0 } else { 1500.0 };

    // Traffic mix: morning opening, noon default, evening, late night.
    let mut queries = Vec::new();
    for (h, m) in [(8, 50), (12, 0), (19, 30), (22, 40)] {
        queries.extend(workload.queries(delta, TimeOfDay::hm(h, m), per_time));
    }

    let stats = workload.graph.space().stats();
    println!(
        "venue: {} partitions, {} doors, {} floors; batch: {} queries, |T| = {}",
        stats.partitions,
        stats.doors,
        stats.floors,
        queries.len(),
        workload.t_size
    );
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("host parallelism: {host_cores}");

    let repeats = if quick { 2 } else { 5 };
    let points = concurrency::throughput_sweep(&workload.graph, &queries, &[1, 2, 4, 8], repeats);
    print!("{}", concurrency::table(&points));

    if let Some(p4) = points.iter().find(|p| p.workers == 4) {
        println!(
            "4-worker speedup over single-thread: {:.2}x{}",
            p4.speedup,
            if host_cores < 4 {
                " (host has fewer than 4 cores; expect ~1x here, >1.5x on multicore)"
            } else {
                ""
            }
        );
    }

    // Sharing sweep: every sharing level vs Independent on identical batches.
    let batch_sizes: &[usize] = if quick { &[16, 64] } else { &[32, 128, 512] };
    let shapes = [
        TrafficShape::uniform(),
        TrafficShape::zipf_exact(1.5, 4),
        TrafficShape::door_clustered(1.5, 4),
        TrafficShape::clustered(1.5, 4, 180.0),
    ];
    let workers = 4.min(host_cores.max(1));
    let sharing = concurrency::sharing_sweep(
        &workload.graph,
        batch_sizes,
        &shapes,
        workers,
        repeats,
        delta,
    );
    println!("\nsharing levels vs independent execution ({workers} workers):");
    print!("{}", concurrency::sharing_table(&sharing));

    std::fs::create_dir_all("results").expect("create results dir");
    let path = concurrency::write_csv(&points, Path::new("results")).expect("write throughput csv");
    println!("wrote {}", path.display());
    let path =
        concurrency::write_sharing_csv(&sharing, Path::new("results")).expect("write sharing csv");
    println!("wrote {}", path.display());

    if !quick {
        let json_path = Path::new("BENCH_throughput.json");
        std::fs::write(json_path, json_baseline(&points, &sharing, host_cores))
            .expect("write throughput baseline");
        println!("wrote {}", json_path.display());
    }

    if quick {
        let hot = |strategy: &str, skew: &str| -> &SharingPoint {
            sharing
                .iter()
                .filter(|p| p.strategy == strategy && p.skew == skew)
                .max_by_key(|p| p.batch_size)
                .expect("quick sweep includes every (strategy, shape) series")
        };
        // Tripwire 1: each sharing level must realise grouping on its
        // natural batch shape — exact keys on bit-identical zipf duplicates,
        // door keys on partition-clustered sources, interval keys on
        // clustered sources with jittered departures.
        for (strategy, skew) in [
            ("shared", "zipf-exact"),
            ("shared-door", "door-clustered"),
            ("shared-interval", "clustered"),
        ] {
            let p = hot(strategy, skew);
            assert!(
                p.sharing_ratio < 1.0,
                "sharing regression: {strategy} formed no groups on its {skew} batch"
            );
        }
        // Tripwire 2: coarser keys can only merge more — plan ratios must be
        // monotone by level on every shape and batch size.
        for p in sharing.iter().filter(|p| p.strategy == "shared") {
            let door = sharing
                .iter()
                .find(|q| {
                    q.strategy == "shared-door" && q.skew == p.skew && q.batch_size == p.batch_size
                })
                .expect("door row exists for every shared row");
            let interval = sharing
                .iter()
                .find(|q| {
                    q.strategy == "shared-interval"
                        && q.skew == p.skew
                        && q.batch_size == p.batch_size
                })
                .expect("interval row exists for every shared row");
            assert!(
                interval.sharing_ratio <= door.sharing_ratio
                    && door.sharing_ratio <= p.sharing_ratio,
                "plan-ratio monotonicity broke on {} batch of {}: \
                 exact {:.3}, door {:.3}, interval {:.3}",
                p.skew,
                p.batch_size,
                p.sharing_ratio,
                door.sharing_ratio,
                interval.sharing_ratio
            );
        }
        // Tripwire 3: exact sharing must still beat independent execution on
        // the bit-identical hot batch (the levels above it only merge more).
        let hottest = hot("shared", "zipf-exact");
        assert!(
            hottest.speedup > 1.0,
            "sharing regression: shared execution slower than independent \
             on the hot zipf batch ({:.2}x)",
            hottest.speedup
        );
        // Tripwire 3b: the coarse levels must now *pay* on their natural
        // shapes, not just group — door-level replay on partition-clustered
        // sources and interval coalescing on jittered departures each have
        // to at least match independent execution on the hot batch.
        for (strategy, skew) in [
            ("shared-door", "door-clustered"),
            ("shared-interval", "clustered"),
        ] {
            let p = hot(strategy, skew);
            assert!(
                p.speedup >= 1.0,
                "coarse-sharing regression: {strategy} ran {:.2}x vs independent \
                 on its {skew} batch of {}",
                p.speedup,
                p.batch_size
            );
        }
        // Tripwire 4: absolute wall-clock budget, as in `construction --quick`.
        assert!(
            hottest.batch_secs <= QUICK_BUDGET_SECS,
            "throughput regression: the hot {}-query shared batch took {:.2}s \
             (budget {QUICK_BUDGET_SECS}s)",
            hottest.batch_size,
            hottest.batch_secs
        );
        println!(
            "quick tripwires ok: per-level grouping realised, plan ratios \
             monotone, hot {}-query shared batch {:.3}s <= {QUICK_BUDGET_SECS}s \
             at {:.2}x over independent",
            hottest.batch_size, hottest.batch_secs, hottest.speedup
        );
    }
}

fn json_baseline(
    workers: &[ThroughputPoint],
    sharing: &[SharingPoint],
    host_cores: usize,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"throughput\",");
    let _ = writeln!(
        out,
        "  \"description\": \"VenueServer queries/sec: worker sweep on a mixed-time batch, \
         then every sharing level (Shared, SharedDoor, warm = SharedDoor + warm-start \
         frontier donation, SharedInterval) vs Independent on identical batches across \
         traffic shapes — uniform, zipf-exact duplicates, door-clustered sources, \
         clustered sources with jittered departures \
         (sharing_ratio = physical searches per query)\","
    );
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(out, "  \"worker_sweep\": [");
    for (i, p) in workers.iter().enumerate() {
        let comma = if i + 1 < workers.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"workers\": {}, \"batch_size\": {}, \"batch_secs\": {:.6}, \
             \"qps\": {:.1}, \"speedup_vs_single\": {:.3}}}{}",
            p.workers, p.batch_size, p.batch_secs, p.qps, p.speedup, comma
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sharing_sweep\": [");
    for (i, p) in sharing.iter().enumerate() {
        let comma = if i + 1 < sharing.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"strategy\": \"{}\", \"batch_size\": {}, \"skew\": \"{}\", \
             \"sharing_ratio\": {:.4}, \"batch_secs\": {:.6}, \"qps\": {:.1}, \
             \"speedup_vs_independent\": {:.3}}}{}",
            p.strategy,
            p.batch_size,
            p.skew,
            p.sharing_ratio,
            p.batch_secs,
            p.qps,
            p.speedup,
            comma
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}
