//! Multi-threaded throughput on one shared venue: queries/sec vs worker
//! threads (1–8) for a [`itspq_core::VenueServer`] over the synthetic mall.
//!
//! `--quick` shrinks the venue to a single floor and the batch to 64 queries
//! for CI; the default is the paper's five-floor mall with a 256-query batch
//! mixing departure times across the day (so several reduced-graph views are
//! in play, as in production traffic).

use indoor_synthetic::MallConfig;
use indoor_time::TimeOfDay;
use itspq_bench::{concurrency, Workload};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (workload, per_time) = if quick {
        (Workload::with_mall(MallConfig::single_floor(), 8), 16)
    } else {
        (Workload::paper(8), 64)
    };
    let delta = if quick { 600.0 } else { 1500.0 };

    // Traffic mix: morning opening, noon default, evening, late night.
    let mut queries = Vec::new();
    for (h, m) in [(8, 50), (12, 0), (19, 30), (22, 40)] {
        queries.extend(workload.queries(delta, TimeOfDay::hm(h, m), per_time));
    }

    let stats = workload.graph.space().stats();
    println!(
        "venue: {} partitions, {} doors, {} floors; batch: {} queries, |T| = {}",
        stats.partitions,
        stats.doors,
        stats.floors,
        queries.len(),
        workload.t_size
    );
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("host parallelism: {host_cores}");

    let repeats = if quick { 2 } else { 5 };
    let points = concurrency::throughput_sweep(&workload.graph, &queries, &[1, 2, 4, 8], repeats);
    print!("{}", concurrency::table(&points));

    if let Some(p4) = points.iter().find(|p| p.workers == 4) {
        println!(
            "4-worker speedup over single-thread: {:.2}x{}",
            p4.speedup,
            if host_cores < 4 {
                " (host has fewer than 4 cores; expect ~1x here, >1.5x on multicore)"
            } else {
                ""
            }
        );
    }

    let path = concurrency::write_csv(&points, std::path::Path::new("results"))
        .expect("write throughput csv");
    println!("wrote {}", path.display());
}
