//! Benchmark harness regenerating the ITSPQ paper's evaluation.
//!
//! Each figure of §III has a binary that reproduces its data series:
//!
//! | Paper artifact | Binary | What it sweeps |
//! |---|---|---|
//! | Figure 4 | `fig4` | search time vs `\|T\| ∈ {4,8,12,16}` at `t` = 12:00 and 8:00 |
//! | Figure 5 | `fig5` | search time vs `δs2t ∈ {1100…1900}` m |
//! | Figure 6 | `fig6` | search time vs `t ∈ {0:00, 2:00, …, 22:00}` |
//! | Figure 7 | `fig7` | memory cost (KB) vs `t` |
//! | Tables I–II | `exp_all` | prints the setup tables and runs every figure |
//! | (beyond the paper) | `throughput` | queries/sec vs worker threads on one shared venue |
//!
//! Binaries print aligned tables and write `results/figN.csv`. The Criterion
//! suite (`cargo bench`) covers the same sweeps plus ablations
//! (PaperPruned vs FullRelax, Asyn Faithful vs Exact, warm vs cold reduced
//! graphs, construction costs).

pub mod alloc_track;
pub mod concurrency;
pub mod figures;
pub mod params;
pub mod runner;

pub use alloc_track::TrackingAllocator;
pub use params::PaperParams;
pub use runner::{measure_query_set, Measurement, MethodKind, Workload};
