//! Multi-threaded throughput measurement: queries/sec vs worker threads on
//! one `Arc`-shared venue.
//!
//! Each sweep point builds a fresh [`VenueServer`] over the same shared
//! graph, warms its reduced-graph cache (so the sweep measures steady-state
//! query throughput, not one-off `Graph_Update` construction), runs one
//! untimed batch, then times `repeats` batches and reports queries/sec plus
//! the speedup over the sweep's first point — put `1` first in
//! `worker_counts` to make that column "vs single-thread".

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use indoor_synthetic::{generate_queries, QueryGenConfig, SourceDistribution, TimeDistribution};
use indoor_time::TimeOfDay;
use itspq_core::{
    AsynMode, BatchStrategy, ItGraph, ItspqConfig, Query, ServeMethod, ServerConfig, VenueServer,
};

/// One measured (worker count → throughput) point.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPoint {
    /// Worker threads used by the server.
    pub workers: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Mean wall-clock seconds per batch.
    pub batch_secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// Throughput relative to the sweep's first point.
    pub speedup: f64,
}

/// Sweeps `worker_counts`, returning one [`ThroughputPoint`] per count.
///
/// Answers are independent of the worker count (see
/// [`VenueServer::query_batch`]); the sweep asserts that invariant on the
/// warm-up batch of every point against the first point's answers.
#[must_use]
pub fn throughput_sweep(
    graph: &Arc<ItGraph>,
    queries: &[Query],
    worker_counts: &[usize],
    repeats: usize,
) -> Vec<ThroughputPoint> {
    let repeats = repeats.max(1);
    let mut points: Vec<ThroughputPoint> = Vec::with_capacity(worker_counts.len());
    let mut reference: Option<Vec<Option<f64>>> = None;
    for &workers in worker_counts {
        let server = VenueServer::new(Arc::clone(graph)).with_workers(workers);
        server.warm();
        let answers = server.query_batch(queries); // untimed warm-up
        let lengths: Vec<Option<f64>> = answers
            .iter()
            .map(|r| r.path.as_ref().map(|p| p.length))
            .collect();
        match &reference {
            None => reference = Some(lengths),
            Some(r) => assert_eq!(
                r, &lengths,
                "answers must not depend on the worker count ({workers} workers)"
            ),
        }

        let start = Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(server.query_batch(std::hint::black_box(queries)));
        }
        let batch_secs = start.elapsed().as_secs_f64() / repeats as f64;
        let qps = if batch_secs > 0.0 {
            queries.len() as f64 / batch_secs
        } else {
            f64::INFINITY
        };
        let speedup = points.first().map_or(1.0, |base| qps / base.qps);
        points.push(ThroughputPoint {
            workers,
            batch_size: queries.len(),
            batch_secs,
            qps,
            speedup,
        });
    }
    points
}

/// One measured (batch size × traffic shape × sharing level) point.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingPoint {
    /// Sharing level label (see [`strategy_label`]; `"warm"` is door-level
    /// sharing with warm-start frontier donation enabled).
    pub strategy: &'static str,
    /// Queries per batch.
    pub batch_size: usize,
    /// Traffic-shape label (e.g. `"uniform"`, `"zipf-exact"`,
    /// `"clustered"`).
    pub skew: String,
    /// Physical searches / queries for this batch under this level's planner
    /// (1.0 means nothing groups; 0.25 means four queries per search).
    pub sharing_ratio: f64,
    /// Mean wall-clock seconds per batch.
    pub batch_secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// This level's qps / independent qps on the *same* batch (1.0 for the
    /// independent row itself).
    pub speedup: f64,
}

/// The stable label of a sharing level in tables, CSVs and baselines.
#[must_use]
pub fn strategy_label(strategy: BatchStrategy) -> &'static str {
    match strategy {
        BatchStrategy::Independent => "independent",
        BatchStrategy::Shared => "shared",
        BatchStrategy::SharedDoor => "shared-door",
        BatchStrategy::SharedInterval => "shared-interval",
    }
}

/// A named traffic shape: how sources and departure times cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficShape {
    /// Stable label used in tables and baselines.
    pub label: &'static str,
    /// Source-point distribution.
    pub source: SourceDistribution,
    /// Departure-time distribution.
    pub times: TimeDistribution,
}

impl TrafficShape {
    /// Fresh uniform sources, two fixed departure times — nothing to share.
    #[must_use]
    pub fn uniform() -> Self {
        TrafficShape {
            label: "uniform",
            source: SourceDistribution::Uniform,
            times: TimeDistribution::Fixed,
        }
    }

    /// Bit-identical zipf sources at fixed times: what exact-key
    /// ([`BatchStrategy::Shared`]) grouping collapses.
    #[must_use]
    pub fn zipf_exact(exponent: f64, pool: usize) -> Self {
        TrafficShape {
            label: "zipf-exact",
            source: SourceDistribution::Zipf { exponent, pool },
            times: TimeDistribution::Fixed,
        }
    }

    /// Partition-clustered (but distinct) sources at fixed times: invisible
    /// to exact keys, collapsed by door-level grouping (and everything
    /// coarser).
    #[must_use]
    pub fn door_clustered(exponent: f64, pool: usize) -> Self {
        TrafficShape {
            label: "door-clustered",
            source: SourceDistribution::ZipfNear { exponent, pool },
            times: TimeDistribution::Fixed,
        }
    }

    /// Partition-clustered (but distinct) sources with departure times
    /// jittered inside hot windows: invisible to exact keys, collapsed by
    /// door-level grouping and interval coalescing.
    #[must_use]
    pub fn clustered(exponent: f64, pool: usize, spread_secs: f64) -> Self {
        TrafficShape {
            label: "clustered",
            source: SourceDistribution::ZipfNear { exponent, pool },
            times: TimeDistribution::HotSpots {
                exponent,
                pool,
                spread_secs,
            },
        }
    }
}

/// A deterministic skewed batch: `size` queries over two departure times
/// (hot-spot shapes override the times per draw), sources and times drawn
/// per `shape`.
#[must_use]
pub fn skewed_batch(
    graph: &ItGraph,
    size: usize,
    shape: TrafficShape,
    delta: f64,
    seed: u64,
) -> Vec<Query> {
    let times = [TimeOfDay::hm(9, 0), TimeOfDay::hm(17, 30)];
    let mut queries = Vec::with_capacity(size);
    for (i, t) in times.iter().enumerate() {
        let count = size / times.len() + usize::from(i < size % times.len());
        queries.extend(
            generate_queries(
                graph,
                &QueryGenConfig::default()
                    .with_count(count)
                    .with_delta(delta)
                    .with_time(*t)
                    .with_seed(seed ^ (i as u64))
                    .with_source(shape.source)
                    .with_times(shape.times),
            )
            .into_iter()
            .map(|g| g.query),
        );
    }
    queries
}

/// Sweeps batch size × traffic shape × sharing level, timing every
/// [`BatchStrategy`] against `Independent` on identical batches.
///
/// All servers run ITG/A with [`ItspqConfig::full_relax`] in
/// [`AsynMode::Exact`] (full relaxation is the policy under which sharing is
/// answer-preserving, and Exact's order-pure TV verdicts are what door-level
/// replay certifies against — the Faithful cursor gates replay off) with
/// `workers` threads; answers are asserted equal on the warm-up pass of
/// every point, so the timed deltas are pure execution-plan effects.
#[must_use]
pub fn sharing_sweep(
    graph: &Arc<ItGraph>,
    batch_sizes: &[usize],
    shapes: &[TrafficShape],
    workers: usize,
    repeats: usize,
    delta: f64,
) -> Vec<SharingPoint> {
    let repeats = repeats.max(1);
    let config = |strategy, warm_start| ServerConfig {
        workers,
        method: ServeMethod::Asyn,
        strategy,
        warm_start,
        // Exact mode: order-pure verdicts (answer-identical to ITG/S),
        // required for door-level replay to engage — see the server's
        // `verdict_pure` gate.
        itspq: ItspqConfig::full_relax().with_asyn_mode(AsynMode::Exact),
        ..ServerConfig::default()
    };
    // The `"warm"` row is door-level sharing plus warm-start frontier
    // donation across same-interval groups — the opt-in between
    // `SharedDoor` and `SharedInterval`.
    let levels: [(&'static str, BatchStrategy, bool); 4] = [
        (
            strategy_label(BatchStrategy::Shared),
            BatchStrategy::Shared,
            false,
        ),
        (
            strategy_label(BatchStrategy::SharedDoor),
            BatchStrategy::SharedDoor,
            false,
        ),
        ("warm", BatchStrategy::SharedDoor, true),
        (
            strategy_label(BatchStrategy::SharedInterval),
            BatchStrategy::SharedInterval,
            false,
        ),
    ];
    let independent =
        VenueServer::with_config(Arc::clone(graph), config(BatchStrategy::Independent, false));
    independent.warm();
    let servers: Vec<(&'static str, VenueServer)> = levels
        .iter()
        .map(|&(label, s, warm)| {
            let server = VenueServer::with_config(Arc::clone(graph), config(s, warm));
            server.warm();
            (label, server)
        })
        .collect();

    let time_batch = |server: &VenueServer, batch: &[Query]| {
        let start = Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(server.query_batch(std::hint::black_box(batch)));
        }
        let secs = start.elapsed().as_secs_f64() / repeats as f64;
        let qps = if secs > 0.0 {
            batch.len() as f64 / secs
        } else {
            f64::INFINITY
        };
        (secs, qps)
    };

    let mut points = Vec::with_capacity((1 + levels.len()) * batch_sizes.len() * shapes.len());
    for &shape in shapes {
        for (i, &size) in batch_sizes.iter().enumerate() {
            let batch = skewed_batch(graph, size, shape, delta, 0xB47C4 + i as u64);
            let reference = independent.query_batch(&batch); // untimed warm-up
            let (ind_secs, ind_qps) = time_batch(&independent, &batch);
            points.push(SharingPoint {
                strategy: strategy_label(BatchStrategy::Independent),
                batch_size: batch.len(),
                skew: shape.label.to_string(),
                sharing_ratio: 1.0,
                batch_secs: ind_secs,
                qps: ind_qps,
                speedup: 1.0,
            });
            for &(label, ref server) in &servers {
                let ratio = {
                    let plan = server.plan(&batch, false);
                    plan.searches() as f64 / batch.len().max(1) as f64
                };
                // Untimed warm-up doubling as the answer-parity check.
                let a = server.query_batch(&batch);
                for (x, y) in a.iter().zip(&reference) {
                    assert_eq!(
                        x.path.as_ref().map(|p| p.length),
                        y.path.as_ref().map(|p| p.length),
                        "{label} diverged from independent execution",
                    );
                }
                let (secs, qps) = time_batch(server, &batch);
                points.push(SharingPoint {
                    strategy: label,
                    batch_size: batch.len(),
                    skew: shape.label.to_string(),
                    sharing_ratio: ratio,
                    batch_secs: secs,
                    qps,
                    speedup: qps / ind_qps,
                });
            }
        }
    }
    points
}

/// Renders an aligned text table of a sharing sweep.
#[must_use]
pub fn sharing_table(points: &[SharingPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>13} {:>7} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "strategy", "batch", "skew", "searches", "batch_ms", "queries/s", "speedup"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>13} {:>7} {:>12} {:>9.2} {:>12.2} {:>12.0} {:>8.2}x",
            p.strategy,
            p.batch_size,
            p.skew,
            p.sharing_ratio,
            p.batch_secs * 1e3,
            p.qps,
            p.speedup
        );
    }
    out
}

/// Writes a sharing sweep as `throughput_sharing.csv` in `dir`.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_sharing_csv(points: &[SharingPoint], dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("throughput_sharing.csv");
    let mut out = String::from("strategy,batch_size,skew,sharing_ratio,batch_secs,qps,speedup\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.6},{:.1},{:.3}",
            p.strategy, p.batch_size, p.skew, p.sharing_ratio, p.batch_secs, p.qps, p.speedup
        );
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Renders an aligned text table of a sweep.
#[must_use]
pub fn table(points: &[ThroughputPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "workers", "batch", "batch_ms", "queries/s", "speedup"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>12.2} {:>12.0} {:>8.2}x",
            p.workers,
            p.batch_size,
            p.batch_secs * 1e3,
            p.qps,
            p.speedup
        );
    }
    out
}

/// Writes a sweep as `throughput.csv` in `dir`.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv(points: &[ThroughputPoint], dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("throughput.csv");
    let mut out = String::from("workers,batch_size,batch_secs,qps,speedup\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.1},{:.3}",
            p.workers, p.batch_size, p.batch_secs, p.qps, p.speedup
        );
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use indoor_synthetic::MallConfig;
    use indoor_time::TimeOfDay;

    #[test]
    fn sweep_reports_consistent_points() {
        let w = Workload::with_mall(MallConfig::single_floor(), 4);
        let mut queries = w.queries(600.0, TimeOfDay::hm(12, 0), 3);
        queries.extend(w.queries(600.0, TimeOfDay::hm(9, 30), 3));
        let points = throughput_sweep(&w.graph, &queries, &[1, 2], 1);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workers, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        for p in &points {
            assert_eq!(p.batch_size, queries.len());
            assert!(p.qps > 0.0);
        }
        let rendered = table(&points);
        assert!(rendered.contains("queries/s"));
    }

    #[test]
    fn sharing_sweep_groups_under_skew_and_keeps_answers() {
        let w = Workload::with_mall(MallConfig::single_floor(), 4);
        let points = sharing_sweep(
            &w.graph,
            &[8],
            &[TrafficShape::zipf_exact(1.5, 2)],
            2,
            1,
            600.0,
        );
        assert_eq!(
            points.len(),
            5,
            "independent plus three sharing levels plus the warm row"
        );
        let shared = points.iter().find(|p| p.strategy == "shared").unwrap();
        assert!(
            shared.sharing_ratio < 1.0,
            "a hot pool of 2 sources over 8 queries must form groups"
        );
        assert!(points.iter().all(|p| p.qps > 0.0));
        assert!(sharing_table(&points).contains("searches"));
    }

    #[test]
    fn clustered_traffic_groups_only_at_coarser_levels() {
        let w = Workload::with_mall(MallConfig::single_floor(), 4);
        let points = sharing_sweep(
            &w.graph,
            &[10],
            &[TrafficShape::clustered(1.5, 2, 120.0)],
            2,
            1,
            600.0,
        );
        let ratio = |label: &str| {
            points
                .iter()
                .find(|p| p.strategy == label)
                .map(|p| p.sharing_ratio)
                .unwrap()
        };
        // Coarser keys can only merge more: ratios are monotone by level,
        // with warm-start donation sitting between door and interval.
        assert!(ratio("shared-door") <= ratio("shared"));
        assert!(ratio("warm") <= ratio("shared-door"));
        assert!(ratio("shared-interval") <= ratio("warm"));
        // Distinct points in hot partitions with jittered times: door-level
        // needs identical instants (rare under a 120 s spread), interval
        // coalescing must realise sharing.
        assert!(
            ratio("shared-interval") < 1.0,
            "clustered traffic must group at interval level, ratios: shared {} door {} interval {}",
            ratio("shared"),
            ratio("shared-door"),
            ratio("shared-interval"),
        );
    }
}
