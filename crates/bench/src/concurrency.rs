//! Multi-threaded throughput measurement: queries/sec vs worker threads on
//! one `Arc`-shared venue.
//!
//! Each sweep point builds a fresh [`VenueServer`] over the same shared
//! graph, warms its reduced-graph cache (so the sweep measures steady-state
//! query throughput, not one-off `Graph_Update` construction), runs one
//! untimed batch, then times `repeats` batches and reports queries/sec plus
//! the speedup over the sweep's first point — put `1` first in
//! `worker_counts` to make that column "vs single-thread".

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use itspq_core::{ItGraph, Query, VenueServer};

/// One measured (worker count → throughput) point.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPoint {
    /// Worker threads used by the server.
    pub workers: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Mean wall-clock seconds per batch.
    pub batch_secs: f64,
    /// Queries per second.
    pub qps: f64,
    /// Throughput relative to the sweep's first point.
    pub speedup: f64,
}

/// Sweeps `worker_counts`, returning one [`ThroughputPoint`] per count.
///
/// Answers are independent of the worker count (see
/// [`VenueServer::query_batch`]); the sweep asserts that invariant on the
/// warm-up batch of every point against the first point's answers.
#[must_use]
pub fn throughput_sweep(
    graph: &Arc<ItGraph>,
    queries: &[Query],
    worker_counts: &[usize],
    repeats: usize,
) -> Vec<ThroughputPoint> {
    let repeats = repeats.max(1);
    let mut points: Vec<ThroughputPoint> = Vec::with_capacity(worker_counts.len());
    let mut reference: Option<Vec<Option<f64>>> = None;
    for &workers in worker_counts {
        let server = VenueServer::new(Arc::clone(graph)).with_workers(workers);
        server.warm();
        let answers = server.query_batch(queries); // untimed warm-up
        let lengths: Vec<Option<f64>> = answers
            .iter()
            .map(|r| r.path.as_ref().map(|p| p.length))
            .collect();
        match &reference {
            None => reference = Some(lengths),
            Some(r) => assert_eq!(
                r, &lengths,
                "answers must not depend on the worker count ({workers} workers)"
            ),
        }

        let start = Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(server.query_batch(std::hint::black_box(queries)));
        }
        let batch_secs = start.elapsed().as_secs_f64() / repeats as f64;
        let qps = if batch_secs > 0.0 {
            queries.len() as f64 / batch_secs
        } else {
            f64::INFINITY
        };
        let speedup = points.first().map_or(1.0, |base| qps / base.qps);
        points.push(ThroughputPoint {
            workers,
            batch_size: queries.len(),
            batch_secs,
            qps,
            speedup,
        });
    }
    points
}

/// Renders an aligned text table of a sweep.
#[must_use]
pub fn table(points: &[ThroughputPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>12} {:>12} {:>9}",
        "workers", "batch", "batch_ms", "queries/s", "speedup"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>12.2} {:>12.0} {:>8.2}x",
            p.workers,
            p.batch_size,
            p.batch_secs * 1e3,
            p.qps,
            p.speedup
        );
    }
    out
}

/// Writes a sweep as `throughput.csv` in `dir`.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_csv(points: &[ThroughputPoint], dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("throughput.csv");
    let mut out = String::from("workers,batch_size,batch_secs,qps,speedup\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.1},{:.3}",
            p.workers, p.batch_size, p.batch_secs, p.qps, p.speedup
        );
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use indoor_synthetic::MallConfig;
    use indoor_time::TimeOfDay;

    #[test]
    fn sweep_reports_consistent_points() {
        let w = Workload::with_mall(MallConfig::single_floor(), 4);
        let mut queries = w.queries(600.0, TimeOfDay::hm(12, 0), 3);
        queries.extend(w.queries(600.0, TimeOfDay::hm(9, 30), 3));
        let points = throughput_sweep(&w.graph, &queries, &[1, 2], 1);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workers, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-12);
        for p in &points {
            assert_eq!(p.batch_size, queries.len());
            assert!(p.qps > 0.0);
        }
        let rendered = table(&points);
        assert!(rendered.contains("queries/s"));
    }
}
