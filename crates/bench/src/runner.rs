//! Workload construction and timed measurement.

use std::sync::Arc;
use std::time::Instant;

use indoor_synthetic::{build_mall, HoursConfig, MallConfig, QueryGenConfig, ShopHours};
use indoor_time::TimeOfDay;
use itspq_core::{AsynEngine, ItGraph, ItspqConfig, Query, SynEngine};

use crate::alloc_track::TrackingAllocator;

/// Which of the paper's two methods to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// ITG/S: synchronous ATI checks.
    ItgS,
    /// ITG/A: asynchronous reduced-graph checks.
    ItgA,
}

impl MethodKind {
    /// Display name as in the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::ItgS => "ITG/S",
            MethodKind::ItgA => "ITG/A",
        }
    }
}

/// A built venue + graph for one `|T|` setting.
pub struct Workload {
    /// The IT-Graph over the generated mall, `Arc`-shared so every engine
    /// and server measured against it references one venue allocation.
    pub graph: Arc<ItGraph>,
    /// The sampled checkpoint set.
    pub hours: ShopHours,
    /// `|T|` used to build it.
    pub t_size: usize,
}

impl Workload {
    /// Builds the paper-default five-floor mall for a given `|T|`.
    #[must_use]
    pub fn paper(t_size: usize) -> Self {
        Self::with_mall(MallConfig::paper_default(), t_size)
    }

    /// Builds a venue with a custom mall configuration.
    #[must_use]
    pub fn with_mall(mall: MallConfig, t_size: usize) -> Self {
        let hours = ShopHours::sample(&HoursConfig::default().with_t_size(t_size));
        let space = build_mall(&mall, &hours);
        Workload {
            graph: ItGraph::shared(space),
            hours,
            t_size,
        }
    }

    /// Generates the paper's query instances on this venue.
    #[must_use]
    pub fn queries(&self, delta: f64, time: TimeOfDay, pairs: usize) -> Vec<Query> {
        indoor_synthetic::generate_queries(
            &self.graph,
            &QueryGenConfig::default()
                .with_delta(delta)
                .with_time(time)
                .with_count(pairs),
        )
        .into_iter()
        .map(|g| g.query)
        .collect()
    }
}

/// Aggregated measurement of one (method, setting) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The measured method.
    pub method: MethodKind,
    /// Mean search time per query in microseconds.
    pub mean_time_us: f64,
    /// Mean estimated working-set per query in KB (the paper's memory cost).
    pub mean_mem_kb: f64,
    /// Mean allocator peak delta per query in KB (0 when the tracking
    /// allocator is not registered, e.g. in unit tests).
    pub alloc_peak_kb: f64,
    /// Queries that found a path.
    pub found: usize,
    /// Total queries.
    pub total: usize,
}

/// Measures a method over a query set: each query is warmed once, then timed
/// `runs` times (the paper runs each instance ten times and averages).
#[must_use]
pub fn measure_query_set(
    graph: &ItGraph,
    method: MethodKind,
    config: ItspqConfig,
    queries: &[Query],
    runs: usize,
) -> Measurement {
    let syn;
    let asyn;
    let run: &dyn Fn(&Query) -> itspq_core::QueryResult = match method {
        MethodKind::ItgS => {
            syn = SynEngine::new(graph.clone(), config);
            &move |q| syn.query(q)
        }
        MethodKind::ItgA => {
            asyn = AsynEngine::new(graph.clone(), config);
            &move |q| asyn.query(q)
        }
    };

    let mut total_us = 0.0;
    let mut total_mem = 0.0;
    let mut total_alloc = 0.0;
    let mut found = 0;
    for q in queries {
        // Warm-up run: populates ITG/A's reduced-graph cache (its steady
        // state) and faults in code paths.
        let warm = run(q);
        if warm.path.is_some() {
            found += 1;
        }
        total_mem += warm.stats.estimated_bytes() as f64 / 1024.0;
        let ((), alloc_delta) = TrackingAllocator::measure(|| {
            let _ = run(q);
        });
        total_alloc += alloc_delta as f64 / 1024.0;

        let start = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(run(std::hint::black_box(q)));
        }
        total_us += start.elapsed().as_secs_f64() * 1e6 / runs as f64;
    }
    let n = queries.len().max(1) as f64;
    Measurement {
        method,
        mean_time_us: total_us / n,
        mean_mem_kb: total_mem / n,
        alloc_peak_kb: total_alloc / n,
        found,
        total: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_synthetic::MallConfig;

    #[test]
    fn measurement_on_single_floor_mall() {
        let w = Workload::with_mall(MallConfig::single_floor(), 8);
        let queries = w.queries(600.0, TimeOfDay::hm(12, 0), 2);
        assert_eq!(queries.len(), 2);
        for method in [MethodKind::ItgS, MethodKind::ItgA] {
            let m = measure_query_set(&w.graph, method, ItspqConfig::default(), &queries, 2);
            assert_eq!(m.total, 2);
            assert!(m.found >= 1, "{}: no paths found", method.label());
            assert!(m.mean_time_us > 0.0);
            assert!(m.mean_mem_kb > 0.0);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(MethodKind::ItgS.label(), "ITG/S");
        assert_eq!(MethodKind::ItgA.label(), "ITG/A");
    }
}
