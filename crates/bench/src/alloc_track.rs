//! A byte-counting global allocator for the paper's memory-cost metric.
//!
//! Wraps the system allocator with relaxed atomic counters for live and peak
//! bytes. The figure binaries register it via `#[global_allocator]` and
//! measure per-query peak deltas; the overhead (two relaxed atomic ops per
//! allocation) is negligible next to allocation cost itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// Counting wrapper around the system allocator.
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Bytes currently allocated.
    #[must_use]
    pub fn live_bytes() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark since the last [`TrackingAllocator::reset_peak`].
    #[must_use]
    pub fn peak_bytes() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live figure.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Runs `f` and returns `(result, peak_delta_bytes)`: how far the heap
    /// high-water mark rose above the live bytes at entry.
    pub fn measure<T>(f: impl FnOnce() -> T) -> (T, usize) {
        let base = Self::live_bytes();
        Self::reset_peak();
        let out = f();
        let peak = Self::peak_bytes();
        (out, peak.saturating_sub(base))
    }
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not registered globally in unit tests; exercise the
    // counter API directly.
    #[test]
    fn counters_move_consistently() {
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = TrackingAllocator::live_bytes();
        let p = unsafe { TrackingAllocator.alloc(layout) };
        assert!(!p.is_null());
        assert_eq!(TrackingAllocator::live_bytes(), before + 4096);
        assert!(TrackingAllocator::peak_bytes() >= before + 4096);
        unsafe { TrackingAllocator.dealloc(p, layout) };
        assert_eq!(TrackingAllocator::live_bytes(), before);
    }

    #[test]
    fn measure_reports_peak_delta() {
        let layout = Layout::from_size_align(10_000, 8).unwrap();
        let (_, delta) = TrackingAllocator::measure(|| {
            let p = unsafe { TrackingAllocator.alloc(layout) };
            unsafe { TrackingAllocator.dealloc(p, layout) };
        });
        assert!(delta >= 10_000, "delta {delta}");
    }
}
