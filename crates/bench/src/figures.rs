//! Regeneration of the paper's Figures 4–7 (and the setup tables).

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use indoor_time::TimeOfDay;
use itspq_core::ItspqConfig;

use crate::{measure_query_set, Measurement, MethodKind, PaperParams, Workload};

/// One row of a figure: an x value plus one measurement per series.
#[derive(Debug, Clone)]
pub struct FigRow {
    /// The x-axis label (`|T|`, `δs2t` or `t`).
    pub x: String,
    /// `(series name, measurement)` pairs.
    pub series: Vec<(String, Measurement)>,
}

/// A regenerated figure: rows plus metadata.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Short id (`fig4` …).
    pub id: &'static str,
    /// Human title matching the paper.
    pub title: &'static str,
    /// Name of the x axis.
    pub x_name: &'static str,
    /// The measured unit shown in tables (`us` or `KB`).
    pub unit: &'static str,
    /// Data rows.
    pub rows: Vec<FigRow>,
}

impl Figure {
    /// Renders an aligned text table of the figure.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {} ({})", self.id, self.title, self.unit);
        if self.rows.is_empty() {
            return out;
        }
        let names: Vec<&String> = self.rows[0].series.iter().map(|(n, _)| n).collect();
        let _ = write!(out, "{:>10}", self.x_name);
        for n in &names {
            let _ = write!(out, " {n:>14}");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{:>10}", row.x);
            for (_, m) in &row.series {
                let v = if self.unit == "KB" {
                    m.mean_mem_kb
                } else {
                    m.mean_time_us
                };
                let _ = write!(out, " {v:>14.1}");
            }
            out.push('\n');
        }
        out
    }

    /// Writes the figure as CSV (one column per series, plus found/total).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_name);
        if let Some(first) = self.rows.first() {
            for (n, _) in &first.series {
                let _ = write!(out, ",{n} time_us,{n} mem_kb,{n} alloc_kb,{n} found");
            }
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{}", row.x);
            for (_, m) in &row.series {
                let _ = write!(
                    out,
                    ",{:.2},{:.2},{:.2},{}/{}",
                    m.mean_time_us, m.mean_mem_kb, m.alloc_peak_kb, m.found, m.total
                );
            }
            out.push('\n');
        }
        fs::write(&path, out)?;
        Ok(path)
    }
}

fn both_methods(
    w: &Workload,
    queries: &[itspq_core::Query],
    runs: usize,
) -> Vec<(MethodKind, Measurement)> {
    [MethodKind::ItgS, MethodKind::ItgA]
        .into_iter()
        .map(|m| {
            (
                m,
                measure_query_set(&w.graph, m, ItspqConfig::default(), queries, runs),
            )
        })
        .collect()
}

/// Figure 4: search time vs `|T|`, at `t = 12:00` and `t = 8:00`.
///
/// The four venues (one per `|T|`) are independent, so they are built in
/// parallel with scoped threads; the timed measurements stay sequential to
/// avoid cross-talk.
#[must_use]
pub fn fig4(params: &PaperParams) -> Figure {
    let workloads: Vec<Workload> = std::thread::scope(|scope| {
        let handles: Vec<_> = params
            .t_sizes
            .iter()
            .map(|&t| scope.spawn(move || Workload::paper(t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("venue build"))
            .collect()
    });

    let mut rows = Vec::new();
    for w in &workloads {
        let t_size = w.t_size;
        let mut series = Vec::new();
        for probe in [TimeOfDay::hm(12, 0), TimeOfDay::hm(8, 0)] {
            let queries = w.queries(params.default_delta, probe, params.pairs_per_setting);
            for (m, meas) in both_methods(w, &queries, params.runs_per_query) {
                series.push((format!("{}(t={})", m.label(), probe.hour()), meas));
            }
        }
        rows.push(FigRow {
            x: t_size.to_string(),
            series,
        });
    }
    Figure {
        id: "fig4",
        title: "Search Time vs |T|",
        x_name: "|T|",
        unit: "us",
        rows,
    }
}

/// Figure 5: search time vs `δs2t` at the default setting.
#[must_use]
pub fn fig5(params: &PaperParams) -> Figure {
    let w = Workload::paper(params.default_t);
    let mut rows = Vec::new();
    for &delta in &params.deltas {
        let queries = w.queries(delta, params.default_time, params.pairs_per_setting);
        let series = both_methods(&w, &queries, params.runs_per_query)
            .into_iter()
            .map(|(m, meas)| (m.label().to_owned(), meas))
            .collect();
        rows.push(FigRow {
            x: format!("{delta:.0}"),
            series,
        });
    }
    Figure {
        id: "fig5",
        title: "Search Time vs δs2t",
        x_name: "δs2t (m)",
        unit: "us",
        rows,
    }
}

fn time_sweep(params: &PaperParams) -> Vec<FigRow> {
    let w = Workload::paper(params.default_t);
    params
        .times
        .iter()
        .map(|&t| {
            let queries = w.queries(params.default_delta, t, params.pairs_per_setting);
            let series = both_methods(&w, &queries, params.runs_per_query)
                .into_iter()
                .map(|(m, meas)| (m.label().to_owned(), meas))
                .collect();
            FigRow {
                x: t.to_string(),
                series,
            }
        })
        .collect()
}

/// Figure 6: search time vs query time `t`.
#[must_use]
pub fn fig6(params: &PaperParams) -> Figure {
    Figure {
        id: "fig6",
        title: "Search Time vs t",
        x_name: "t",
        unit: "us",
        rows: time_sweep(params),
    }
}

/// Figure 7: memory cost vs query time `t`.
#[must_use]
pub fn fig7(params: &PaperParams) -> Figure {
    Figure {
        id: "fig7",
        title: "Memory Cost vs t",
        x_name: "t",
        unit: "KB",
        rows: time_sweep(params),
    }
}

/// Prints Table I (the running example's door ATIs) from the built venue.
#[must_use]
pub fn table1() -> String {
    let ex = indoor_space::paper_example::build();
    let mut out = String::from("TABLE I: Active Time Intervals (ATIs) of Doors\n");
    for d in ex.space.doors() {
        let _ = writeln!(out, "{:>4}: {}", d.name, d.atis);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_synthetic::MallConfig;

    /// A miniature figure run on the single-floor mall to keep tests fast.
    #[test]
    fn figure_pipeline_works_end_to_end() {
        let w = Workload::with_mall(MallConfig::single_floor(), 8);
        let queries = w.queries(600.0, TimeOfDay::hm(12, 0), 2);
        let series = both_methods(&w, &queries, 1)
            .into_iter()
            .map(|(m, meas)| (m.label().to_owned(), meas))
            .collect();
        let fig = Figure {
            id: "figtest",
            title: "test",
            x_name: "x",
            unit: "us",
            rows: vec![FigRow {
                x: "600".into(),
                series,
            }],
        };
        let table = fig.table();
        assert!(table.contains("ITG/S"));
        assert!(table.contains("600"));
        let dir = std::env::temp_dir().join("itspq-fig-test");
        let path = fig.write_csv(&dir).unwrap();
        let csv = std::fs::read_to_string(path).unwrap();
        assert!(csv.starts_with("x,ITG/S time_us"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn table1_lists_all_doors() {
        let t = table1();
        assert!(t.contains("d1:") || t.contains("  d1:"));
        assert!(t.contains("d21"));
        assert!(t.contains("[8:00, 16:00)"));
    }
}
