//! The paper's Table II parameter grid.

use indoor_time::TimeOfDay;

/// Parameter settings for the synthetic experiments (Table II; defaults in
/// bold in the paper).
#[derive(Debug, Clone)]
pub struct PaperParams {
    /// `|T|` values: 4, **8**, 12, 16.
    pub t_sizes: Vec<usize>,
    /// `δs2t` values in metres: 1100, 1300, **1500**, 1700, 1900.
    pub deltas: Vec<f64>,
    /// Query times: 0:00, 2:00, …, **12:00**, …, 22:00.
    pub times: Vec<TimeOfDay>,
    /// Default `|T|`.
    pub default_t: usize,
    /// Default `δs2t`.
    pub default_delta: f64,
    /// Default query time.
    pub default_time: TimeOfDay,
    /// Query pairs per setting (paper: five).
    pub pairs_per_setting: usize,
    /// Timed repetitions per query instance (paper: ten).
    pub runs_per_query: usize,
}

impl Default for PaperParams {
    fn default() -> Self {
        PaperParams {
            t_sizes: vec![4, 8, 12, 16],
            deltas: vec![1100.0, 1300.0, 1500.0, 1700.0, 1900.0],
            times: (0..=22).step_by(2).map(|h| TimeOfDay::hm(h, 0)).collect(),
            default_t: 8,
            default_delta: 1500.0,
            default_time: TimeOfDay::hm(12, 0),
            pairs_per_setting: 5,
            runs_per_query: 10,
        }
    }
}

impl PaperParams {
    /// A reduced grid for smoke tests and CI.
    #[must_use]
    pub fn smoke() -> Self {
        PaperParams {
            t_sizes: vec![4, 8],
            deltas: vec![1100.0, 1500.0],
            times: vec![TimeOfDay::hm(8, 0), TimeOfDay::hm(12, 0)],
            pairs_per_setting: 2,
            runs_per_query: 2,
            ..Self::default()
        }
    }

    /// Renders Table II like the paper.
    #[must_use]
    pub fn table2(&self) -> String {
        let times = self
            .times
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "TABLE II: Parameter Settings for Synthetic Data\n\
             |T|      : {:?} (default {})\n\
             δs2t (m) : {:?} (default {})\n\
             t        : {} (default {})\n\
             pairs per setting: {}, runs per query: {}",
            self.t_sizes,
            self.default_t,
            self.deltas,
            self.default_delta,
            times,
            self.default_time,
            self.pairs_per_setting,
            self.runs_per_query,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = PaperParams::default();
        assert_eq!(p.t_sizes, vec![4, 8, 12, 16]);
        assert_eq!(p.deltas, vec![1100.0, 1300.0, 1500.0, 1700.0, 1900.0]);
        assert_eq!(p.times.len(), 12);
        assert_eq!(p.times[0], TimeOfDay::hm(0, 0));
        assert_eq!(p.times[11], TimeOfDay::hm(22, 0));
        assert_eq!(p.default_t, 8);
        assert_eq!(p.pairs_per_setting, 5);
        assert_eq!(p.runs_per_query, 10);
    }

    #[test]
    fn table2_renders() {
        let text = PaperParams::default().table2();
        assert!(text.contains("1500"));
        assert!(text.contains("12:00"));
    }
}
