//! Query-instance generation controlled by `δs2t`.
//!
//! Following §III-1 of the paper: pick a random start point `ps`, find a door
//! whose temporal-oblivious indoor distance from `ps` approximates `δs2t`,
//! then expand through that door to a random target point `pt` whose indoor
//! distance from `ps` approaches `δs2t`. Five `(ps, pt)` pairs are generated
//! per setting by default, with `t` fixed (12:00 unless configured).

use indoor_geom::Point;
use indoor_space::{DoorId, IndoorPoint, PartitionId, PartitionKind};
use indoor_time::TimeOfDay;
use itspq_core::{baselines, ItGraph, Query};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How query start points are distributed across the venue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceDistribution {
    /// A fresh uniform-random start point per query (the paper's §III-1
    /// setup).
    Uniform,
    /// Start points drawn from a fixed pool of popular locations with
    /// zipf-shaped popularity: pool rank `k` is chosen with probability
    /// proportional to `1 / (k + 1)^exponent`.
    ///
    /// Repeated draws of a rank return the *bit-identical* point (mall
    /// entrances, food courts — the heavy hitters of production traffic), so
    /// skewed batches contain exact-duplicate sources and form shareable
    /// groups for `VenueServer`'s shared batch execution.
    Zipf {
        /// Skew exponent `s ≥ 0` (0 = uniform over the pool; production
        /// traffic studies typically fit 0.6–1.5).
        exponent: f64,
        /// Number of distinct popular start points (≥ 1).
        pool: usize,
    },
    /// Like [`SourceDistribution::Zipf`], but each draw yields a *fresh*
    /// random point inside the ranked anchor's partition instead of the
    /// anchor point itself: sources cluster by partition — the shape
    /// `BatchStrategy::SharedDoor` groups on — without being bit-identical.
    ZipfNear {
        /// Skew exponent `s ≥ 0` over the anchor ranks.
        exponent: f64,
        /// Number of distinct popular partitions (≥ 1, via anchor points).
        pool: usize,
    },
}

/// How query departure times are distributed across the day.
///
/// The temporal mirror of [`SourceDistribution`]: production request streams
/// cluster in time (lunch rush, closing time) exactly as they cluster in
/// space, and that clustering is what makes `VenueServer`'s door-level and
/// interval-coalescing batch strategies pay off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeDistribution {
    /// Every query departs at [`QueryGenConfig::time`] (the paper's §III-1
    /// setup: `t` fixed per experiment).
    Fixed,
    /// Departure times drawn from a fixed pool of popular instants with
    /// zipf-shaped popularity, each draw jittered forward by up to
    /// `spread_secs`.
    ///
    /// With `spread_secs = 0` repeated draws of a rank are *bit-identical*
    /// (exact-key groups); with a small spread the draws stay inside one
    /// checkpoint interval with high probability (interval-level groups).
    HotSpots {
        /// Skew exponent `s ≥ 0` over the pool ranks, as in
        /// [`SourceDistribution::Zipf`].
        exponent: f64,
        /// Number of distinct popular instants (≥ 1).
        pool: usize,
        /// Maximum forward jitter in seconds added to a drawn instant
        /// (clamped so times stay within the day).
        spread_secs: f64,
    },
}

/// Parameters of query generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryGenConfig {
    /// Target indoor distance `δs2t` between `ps` and `pt` in metres
    /// (paper: 1100–1900, default 1500).
    pub delta_s2t: f64,
    /// Number of query instances (paper: 5 per setting).
    pub count: usize,
    /// The query time `t` (paper default 12:00).
    pub time: TimeOfDay,
    /// Relative tolerance on the realised distance (default 10 %).
    pub tolerance: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// How start points are distributed (default: uniform, as in the paper).
    pub source: SourceDistribution,
    /// How departure times are distributed (default: fixed at `time`).
    pub times: TimeDistribution,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            delta_s2t: 1500.0,
            count: 5,
            time: TimeOfDay::hm(12, 0),
            tolerance: 0.10,
            seed: 0x9E0_5EED,
            source: SourceDistribution::Uniform,
            times: TimeDistribution::Fixed,
        }
    }
}

impl QueryGenConfig {
    /// Returns a copy with the given `δs2t`.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta_s2t = delta;
        self
    }

    /// Returns a copy with the given query time.
    #[must_use]
    pub fn with_time(mut self, time: TimeOfDay) -> Self {
        self.time = time;
        self
    }

    /// Returns a copy with the given instance count.
    #[must_use]
    pub fn with_count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Returns a copy with the given seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given source distribution.
    #[must_use]
    pub fn with_source(mut self, source: SourceDistribution) -> Self {
        self.source = source;
        self
    }

    /// Returns a copy with the given departure-time distribution.
    #[must_use]
    pub fn with_times(mut self, times: TimeDistribution) -> Self {
        self.times = times;
        self
    }
}

/// A generated query plus the realised (temporal-oblivious) distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedQuery {
    /// The ITSPQ query instance.
    pub query: Query,
    /// The temporal-oblivious indoor distance from `ps` to `pt` actually
    /// achieved (within tolerance of `δs2t`).
    pub realised_distance: f64,
}

/// Generates `cfg.count` query instances on the venue underlying `graph`.
///
/// # Panics
/// Panics if the venue has no public partitions with polygons, or if no
/// instance within tolerance can be found after a bounded number of attempts
/// (pick a `δs2t` compatible with the venue diameter).
#[must_use]
pub fn generate_queries(graph: &ItGraph, cfg: &QueryGenConfig) -> Vec<GeneratedQuery> {
    let space = graph.space();
    let candidates: Vec<PartitionId> = space
        .partitions()
        .iter()
        .filter(|p| p.kind == PartitionKind::Public && p.polygon.is_some())
        .map(|p| p.id)
        .collect();
    assert!(
        !candidates.is_empty(),
        "venue has no public partitions with polygons"
    );

    // For zipf-skewed sources: a fixed pool of popular points plus the
    // cumulative rank weights Σ 1/(k+1)^s, both deterministic per seed.
    let (pool_points, zipf_cum) = match cfg.source {
        SourceDistribution::Uniform => (Vec::new(), Vec::new()),
        SourceDistribution::Zipf { exponent, pool }
        | SourceDistribution::ZipfNear { exponent, pool } => {
            assert!(pool >= 1, "zipf pool must hold at least one point");
            assert!(
                exponent >= 0.0 && exponent.is_finite(),
                "zipf exponent must be finite and non-negative"
            );
            let mut points = Vec::with_capacity(pool);
            let mut draw = 0u64;
            while points.len() < pool {
                assert!(
                    draw < 64 * pool as u64,
                    "could not populate a {pool}-point source pool"
                );
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x5EED_F00D + draw));
                draw += 1;
                let part = candidates[rng.random_range(0..candidates.len())];
                if let Some(pos) = random_point_in(space, part, &mut rng) {
                    points.push(IndoorPoint::new(part, pos));
                }
            }
            let mut cum = Vec::with_capacity(pool);
            let mut total = 0.0;
            for k in 0..pool {
                total += ((k + 1) as f64).powf(-exponent);
                cum.push(total);
            }
            (points, cum)
        }
    };

    // For hot-spot departure times: a fixed pool of popular instants plus
    // cumulative zipf rank weights, mirroring the source pool above.
    let (hot_times, time_cum) = match cfg.times {
        TimeDistribution::Fixed => (Vec::new(), Vec::new()),
        TimeDistribution::HotSpots {
            exponent,
            pool,
            spread_secs,
        } => {
            assert!(pool >= 1, "hot-spot pool must hold at least one instant");
            assert!(
                exponent >= 0.0 && exponent.is_finite(),
                "hot-spot exponent must be finite and non-negative"
            );
            assert!(
                spread_secs >= 0.0 && spread_secs.is_finite(),
                "hot-spot spread must be finite and non-negative"
            );
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7157_0CC5);
            let limit = (86_400.0 - spread_secs).max(0.0);
            let times: Vec<f64> = (0..pool).map(|_| rng.random_range(0.0..=limit)).collect();
            let mut cum = Vec::with_capacity(pool);
            let mut total = 0.0;
            for k in 0..pool {
                total += ((k + 1) as f64).powf(-exponent);
                cum.push(total);
            }
            (times, cum)
        }
    };

    let mut out = Vec::with_capacity(cfg.count);
    let mut attempt = 0u64;
    while out.len() < cfg.count {
        assert!(
            attempt < 200 + 40 * cfg.count as u64,
            "could not realise δs2t = {} on this venue (diameter too small?)",
            cfg.delta_s2t
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0xA11CE + attempt));
        attempt += 1;

        // 1. A start point: fresh uniform draw, or a zipf-ranked pool member.
        let ps = match cfg.source {
            SourceDistribution::Uniform => {
                let ps_part = candidates[rng.random_range(0..candidates.len())];
                let Some(ps_pos) = random_point_in(space, ps_part, &mut rng) else {
                    continue;
                };
                IndoorPoint::new(ps_part, ps_pos)
            }
            SourceDistribution::Zipf { .. } | SourceDistribution::ZipfNear { .. } => {
                let total = *zipf_cum.last().expect("non-empty pool"); // itspq-lint: allow(no-panic-in-lib, "the Zipf/ZipfNear arm above asserts pool >= 1 and pushes exactly one cumulative weight per rank")
                let u = rng.random_range(0.0..total);
                let rank = zipf_cum
                    .partition_point(|&c| c <= u)
                    .min(pool_points.len() - 1);
                let anchor = pool_points[rank];
                if matches!(cfg.source, SourceDistribution::Zipf { .. }) {
                    anchor
                } else {
                    // ZipfNear: a fresh point in the anchor's partition.
                    match random_point_in(space, anchor.partition, &mut rng) {
                        Some(pos) => IndoorPoint::new(anchor.partition, pos),
                        None => anchor,
                    }
                }
            }
        };

        // 2. Temporal-oblivious distances from ps to every door; pick the
        //    door closest to δs2t.
        let dist = baselines::door_distances(graph, &ps);
        let Some((door_idx, &door_dist)) = dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .min_by(|(_, a), (_, b)| {
                let da = (*a - cfg.delta_s2t).abs();
                let db = (*b - cfg.delta_s2t).abs();
                da.total_cmp(&db)
            })
        else {
            continue;
        };
        if (door_dist - cfg.delta_s2t).abs() > cfg.tolerance * cfg.delta_s2t {
            continue;
        }
        let door = DoorId::from_index(door_idx);

        // 3. Expand through that door: sample points in its enterable
        //    partitions and keep the one whose exact indoor distance best
        //    approaches δs2t.
        let mut best: Option<(IndoorPoint, f64)> = None;
        for &v in space.d2p_enterable(door) {
            if space.partition(v).polygon.is_none() {
                continue;
            }
            for _ in 0..12 {
                let Some(pos) = random_point_in(space, v, &mut rng) else {
                    continue;
                };
                let pt = IndoorPoint::new(v, pos);
                // Exact temporal-oblivious distance to pt: best entry door.
                let d_pt = space
                    .p2d_enterable(v)
                    .iter()
                    .filter_map(|&d| {
                        let to_door = dist[d.index()];
                        let leg = space.point_to_door(&pt, d)?;
                        to_door.is_finite().then_some(to_door + leg)
                    })
                    .fold(f64::INFINITY, f64::min);
                if !d_pt.is_finite() {
                    continue;
                }
                let gap = (d_pt - cfg.delta_s2t).abs();
                if best
                    .as_ref()
                    .is_none_or(|(_, bd)| gap < (bd - cfg.delta_s2t).abs())
                {
                    best = Some((pt, d_pt));
                }
            }
        }
        let Some((pt, realised)) = best else { continue };
        if (realised - cfg.delta_s2t).abs() > cfg.tolerance * cfg.delta_s2t {
            continue;
        }
        if pt.partition == ps.partition {
            continue;
        }
        // 4. A departure time: the fixed `t`, or a zipf-ranked hot instant
        //    with forward jitter (bit-identical repeats when the spread is 0).
        let time = match cfg.times {
            TimeDistribution::Fixed => cfg.time,
            TimeDistribution::HotSpots { spread_secs, .. } => {
                let total = *time_cum.last().expect("non-empty pool"); // itspq-lint: allow(no-panic-in-lib, "the HotSpots arm above asserts pool >= 1 and pushes exactly one cumulative weight per rank")
                let u = rng.random_range(0.0..total);
                let rank = time_cum
                    .partition_point(|&c| c <= u)
                    .min(hot_times.len() - 1);
                let base = hot_times[rank];
                let secs = if spread_secs > 0.0 {
                    base + rng.random_range(0.0..spread_secs)
                } else {
                    base
                };
                // In range by construction (base ≤ 86 400 − spread); the
                // fallback only guards float pathology.
                TimeOfDay::from_seconds(secs.min(86_400.0)).unwrap_or(cfg.time)
            }
        };
        out.push(GeneratedQuery {
            query: Query::new(ps, pt, time),
            realised_distance: realised,
        });
    }
    out
}

/// A pseudo-random point inside partition `v`, or `None` when the partition
/// carries no polygon (such partitions are skipped by the callers).
fn random_point_in(
    space: &indoor_space::IndoorSpace,
    v: PartitionId,
    rng: &mut StdRng,
) -> Option<Point> {
    let poly = space.partition(v).polygon.as_ref()?;
    let (min, max) = poly.bounding_box();
    // Rejection sampling; generated partitions are rectangles, so the first
    // draw almost always lands inside.
    for _ in 0..64 {
        let p = Point::new(
            rng.random_range(min.x..=max.x),
            rng.random_range(min.y..=max.y),
        );
        if poly.contains(p) {
            return Some(p);
        }
    }
    Some(poly.centroid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_mall, HoursConfig, MallConfig, ShopHours};

    fn mall_graph() -> ItGraph {
        let hours = ShopHours::sample(&HoursConfig::default());
        ItGraph::new(build_mall(&MallConfig::single_floor(), &hours))
    }

    #[test]
    fn generates_requested_count_within_tolerance() {
        let graph = mall_graph();
        let cfg = QueryGenConfig::default().with_delta(1500.0).with_count(5);
        let queries = generate_queries(&graph, &cfg);
        assert_eq!(queries.len(), 5);
        for gq in &queries {
            let gap = (gq.realised_distance - 1500.0).abs();
            assert!(
                gap <= 150.0,
                "realised {} too far from 1500",
                gq.realised_distance
            );
            assert_eq!(gq.query.time, TimeOfDay::hm(12, 0));
            assert_ne!(gq.query.source.partition, gq.query.target.partition);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let graph = mall_graph();
        let cfg = QueryGenConfig::default().with_count(3);
        let a = generate_queries(&graph, &cfg);
        let b = generate_queries(&graph, &cfg);
        assert_eq!(a, b);
        let c = generate_queries(&graph, &cfg.with_seed(7));
        assert_ne!(a, c);
    }

    #[test]
    fn distances_sweep_like_the_paper() {
        let graph = mall_graph();
        for delta in [1100.0, 1300.0, 1500.0, 1700.0, 1900.0] {
            let cfg = QueryGenConfig::default().with_delta(delta).with_count(2);
            let queries = generate_queries(&graph, &cfg);
            assert_eq!(queries.len(), 2, "δ = {delta}");
            for gq in &queries {
                assert!((gq.realised_distance - delta).abs() <= 0.1 * delta);
            }
        }
    }

    #[test]
    fn zipf_sources_repeat_bit_identically_and_skew() {
        let graph = mall_graph();
        let cfg = QueryGenConfig::default()
            .with_count(16)
            .with_source(SourceDistribution::Zipf {
                exponent: 1.5,
                pool: 6,
            });
        let queries = generate_queries(&graph, &cfg);
        assert_eq!(queries.len(), 16);

        // Count queries per exact source bit pattern.
        let mut counts: Vec<((u64, u64), usize)> = Vec::new();
        for gq in &queries {
            let key = (
                gq.query.source.position.x.to_bits(),
                gq.query.source.position.y.to_bits(),
            );
            match counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => counts.push((key, 1)),
            }
        }
        // Skew shape: far fewer distinct sources than queries, and the
        // heaviest source dominates (zipf s = 1.5 puts > 55 % of the mass on
        // rank 0 of a 6-point pool).
        assert!(
            counts.len() < queries.len(),
            "zipf sources must repeat bit-identically"
        );
        let heaviest = counts.iter().map(|&(_, c)| c).max().unwrap();
        assert!(
            heaviest >= queries.len() / 4,
            "rank-0 source should dominate, saw max multiplicity {heaviest}"
        );
    }

    #[test]
    fn zipf_generation_is_deterministic_per_seed() {
        let graph = mall_graph();
        let zipf = SourceDistribution::Zipf {
            exponent: 1.2,
            pool: 4,
        };
        let cfg = QueryGenConfig::default().with_count(6).with_source(zipf);
        let a = generate_queries(&graph, &cfg);
        let b = generate_queries(&graph, &cfg);
        assert_eq!(a, b);
        let c = generate_queries(&graph, &cfg.with_seed(99));
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_near_sources_cluster_by_partition_not_by_point() {
        let graph = mall_graph();
        let cfg =
            QueryGenConfig::default()
                .with_count(12)
                .with_source(SourceDistribution::ZipfNear {
                    exponent: 1.5,
                    pool: 3,
                });
        let queries = generate_queries(&graph, &cfg);
        let mut parts: Vec<PartitionId> = Vec::new();
        let mut points: Vec<(u64, u64)> = Vec::new();
        for gq in &queries {
            let p = gq.query.source.partition;
            if !parts.contains(&p) {
                parts.push(p);
            }
            let key = (
                gq.query.source.position.x.to_bits(),
                gq.query.source.position.y.to_bits(),
            );
            if !points.contains(&key) {
                points.push(key);
            }
        }
        assert!(
            parts.len() <= 3,
            "sources come from at most `pool` partitions"
        );
        assert!(
            points.len() > parts.len(),
            "near-draws must yield multiple distinct points per partition"
        );
        // Determinism, as for the other distributions.
        assert_eq!(queries, generate_queries(&graph, &cfg));
    }

    #[test]
    fn hot_spot_times_repeat_bit_identically_without_spread() {
        let graph = mall_graph();
        let cfg = QueryGenConfig::default()
            .with_count(12)
            .with_times(TimeDistribution::HotSpots {
                exponent: 1.5,
                pool: 3,
                spread_secs: 0.0,
            });
        let queries = generate_queries(&graph, &cfg);
        let mut counts: Vec<(u64, usize)> = Vec::new();
        for gq in &queries {
            let key = gq.query.time.seconds().to_bits();
            match counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => counts.push((key, 1)),
            }
        }
        assert!(counts.len() <= 3, "at most one time per pool rank");
        let heaviest = counts.iter().map(|&(_, c)| c).max().unwrap();
        assert!(
            heaviest >= queries.len() / 3,
            "rank-0 instant should dominate, saw max multiplicity {heaviest}"
        );
    }

    #[test]
    fn hot_spot_times_cluster_within_spread() {
        let graph = mall_graph();
        let spread = 600.0;
        let cfg = QueryGenConfig::default()
            .with_count(10)
            .with_times(TimeDistribution::HotSpots {
                exponent: 1.2,
                pool: 2,
                spread_secs: spread,
            });
        let queries = generate_queries(&graph, &cfg);
        // Every drawn time lies in one of at most two spread-wide windows.
        let mut anchors: Vec<f64> = Vec::new();
        for gq in &queries {
            let s = gq.query.time.seconds();
            assert!((0.0..=86_400.0).contains(&s));
            if !anchors.iter().any(|&a| (s - a).abs() <= spread) {
                anchors.push(s);
            }
        }
        assert!(
            anchors.len() <= 2,
            "times must cluster around the 2 hot instants, saw {anchors:?}"
        );
    }

    #[test]
    fn hot_spot_times_are_deterministic_per_seed() {
        let graph = mall_graph();
        let times = TimeDistribution::HotSpots {
            exponent: 1.0,
            pool: 4,
            spread_secs: 120.0,
        };
        let cfg = QueryGenConfig::default().with_count(6).with_times(times);
        let a = generate_queries(&graph, &cfg);
        let b = generate_queries(&graph, &cfg);
        assert_eq!(a, b);
        let c = generate_queries(&graph, &cfg.with_seed(99));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_sources_rarely_collide() {
        // The uniform baseline the skew test is contrasted against: fresh
        // draws essentially never produce bit-identical sources.
        let graph = mall_graph();
        let queries = generate_queries(&graph, &QueryGenConfig::default().with_count(8));
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for gq in &queries {
            let key = (
                gq.query.source.position.x.to_bits(),
                gq.query.source.position.y.to_bits(),
            );
            assert!(!seen.contains(&key), "uniform sources collided");
            seen.push(key);
        }
    }

    #[test]
    fn sources_and_targets_are_inside_their_partitions() {
        let graph = mall_graph();
        let queries = generate_queries(&graph, &QueryGenConfig::default().with_count(3));
        for gq in &queries {
            for p in [gq.query.source, gq.query.target] {
                let poly = graph
                    .space()
                    .partition(p.partition)
                    .polygon
                    .as_ref()
                    .unwrap();
                assert!(poly.contains(p.position));
            }
        }
    }
}
