//! Multi-floor mall generator matching the paper's venue statistics.
//!
//! Each floor is a 1368 m × 1368 m shopping level structured as:
//!
//! * a 4 × 4 grid of hallway *lines* decomposed into **16 intersection cells**
//!   and **24 segment cells** (the "irregular hallways decomposed into
//!   smaller, regular partitions" of the paper), joined by **48 virtual
//!   doors**;
//! * **9 inner blocks**, each holding a private *service corridor* and a ring
//!   of shops: **80 inner shops** (front door onto a hallway, private back
//!   door into the service corridor) distributed 9-9-9-9-9-9-9-9-8;
//! * **8 outer shops** along the perimeter (front door only);
//! * **4 stair lobbies** in the margin (one per side), each with a hallway
//!   door and an "up" door joining the lobby directly above; the two explicit
//!   10 m half-flights realise the paper's 20 m stairways. Top-floor up-doors
//!   are locked roof accesses.
//!
//! Totals per floor: 16+24+9+80+8+4 = **141 partitions** and 48+88+80+4+4 =
//! **224 doors** — exactly the paper's figures, so the default five floors
//! give 705 partitions and 1120 doors.
//!
//! Temporal variation: shop front/back doors draw up to three ATIs from the
//! sampled checkpoint set `T` (see [`crate::ShopHours`]); hallway, lobby and
//! stair doors are always open, roof doors never.

use indoor_geom::{Point, Polygon, Rect};
use indoor_space::{
    Connection, DistanceModel, DoorId, DoorKind, FloorId, IndoorSpace, PartitionId, PartitionKind,
    VenueBuilder,
};
use indoor_time::AtiList;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::ShopHours;

/// Footprint of the private service corridors inside each inner block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorridorShape {
    /// A plain rectangular band between the two shop rows (convex, so every
    /// door-to-door distance is a straight line). The original layout.
    #[default]
    Band,
    /// A comb: a narrow spine with one stub corridor per shop back door.
    /// Doors on different stubs cannot see each other, so the venue builds
    /// with [`DistanceModel::Geodesic`] and every corridor matrix requires
    /// real interior shortest paths — the construction-cost stress case used
    /// by the `construction` benchmark.
    Comb,
}

/// Parameters of the mall generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MallConfig {
    /// Number of floors (paper default: 5; 1 and 3 also used).
    pub floors: u16,
    /// Side length of the square floor in metres (paper: 1368).
    pub floor_side: f64,
    /// Hallway lines per axis (paper-equivalent: 4).
    pub grid: usize,
    /// Hallway width in metres.
    pub corridor_width: f64,
    /// Total stairway length between adjacent floors in metres (paper: 20).
    pub stairway_length: f64,
    /// Inner shops per floor (paper-equivalent: 80, all with back doors).
    pub inner_shops: usize,
    /// Outer (perimeter) shops per floor (paper-equivalent: 8, front door only).
    pub outer_shops: usize,
    /// Fraction of shop doors that carry temporal variation (default 1.0).
    pub variation_ratio: f64,
    /// Service-corridor footprint (default [`CorridorShape::Band`]).
    pub corridor_shape: CorridorShape,
}

impl MallConfig {
    /// The paper's default five-floor venue (705 partitions, 1120 doors).
    #[must_use]
    pub fn paper_default() -> Self {
        MallConfig {
            floors: 5,
            floor_side: 1368.0,
            grid: 4,
            corridor_width: 12.0,
            stairway_length: 20.0,
            inner_shops: 80,
            outer_shops: 8,
            variation_ratio: 1.0,
            corridor_shape: CorridorShape::Band,
        }
    }

    /// A single-floor variant (141 partitions, 224 doors).
    #[must_use]
    pub fn single_floor() -> Self {
        MallConfig {
            floors: 1,
            ..Self::paper_default()
        }
    }

    /// A reduced venue for fast tests (1 floor, 2×2 grid, few shops). A 2×2
    /// grid has one perimeter segment per side, all claimed by stair lobbies,
    /// so there is no room for outer shops.
    #[must_use]
    pub fn tiny() -> Self {
        MallConfig {
            floors: 1,
            floor_side: 200.0,
            grid: 2,
            corridor_width: 8.0,
            stairway_length: 20.0,
            inner_shops: 4,
            outer_shops: 0,
            variation_ratio: 1.0,
            corridor_shape: CorridorShape::Band,
        }
    }

    /// Returns a copy with the given floor count.
    #[must_use]
    pub fn with_floors(mut self, floors: u16) -> Self {
        self.floors = floors;
        self
    }

    /// Returns a copy with comb-shaped service corridors (the geodesic
    /// construction stress case; partition and door counts are unchanged).
    #[must_use]
    pub fn with_comb_corridors(mut self) -> Self {
        self.corridor_shape = CorridorShape::Comb;
        self
    }

    fn margin(&self) -> f64 {
        self.floor_side / 8.0
    }

    fn spacing(&self) -> f64 {
        (self.floor_side - 2.0 * self.margin()) / (self.grid as f64 - 1.0)
    }

    /// Hallway line coordinate `k`.
    fn line(&self, k: usize) -> f64 {
        self.margin() + self.spacing() * k as f64
    }
}

/// Per-floor handles used while wiring the venue.
#[allow(dead_code)]
struct FloorParts {
    /// `intersections[k][l]` — hallway cell at lines (k, l).
    intersections: Vec<Vec<PartitionId>>,
    /// `h_segments[k][l]` — hallway cell between intersections (k,l)-(k+1,l).
    h_segments: Vec<Vec<PartitionId>>,
    /// `v_segments[k][l]` — hallway cell between intersections (k,l)-(k,l+1).
    v_segments: Vec<Vec<PartitionId>>,
    /// Stair lobbies (west, east, south, north).
    lobbies: Vec<PartitionId>,
    /// The hallway door of each lobby.
    lobby_doors: Vec<DoorId>,
}

/// Builds the mall. ATIs for varying doors are drawn from `hours` with the
/// deterministic RNG seeded by the hours configuration.
///
/// Equivalent to `mall_builder(cfg, hours).build()`; use [`mall_builder`]
/// directly to choose a construction pipeline (the parity tests build the
/// same wiring through both `build` and `build_sequential`).
#[must_use]
pub fn build_mall(cfg: &MallConfig, hours: &ShopHours) -> IndoorSpace {
    mall_builder(cfg, hours)
        .build()
        .expect("generated mall is a valid venue") // itspq-lint: allow(no-panic-in-lib, "generator wiring is valid by construction; build/build_sequential parity tests cover it")
}

/// Wires the whole mall into a [`VenueBuilder`] without building it, so
/// callers can pick the construction pipeline (or keep mutating the venue).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn mall_builder(cfg: &MallConfig, hours: &ShopHours) -> VenueBuilder {
    assert!(cfg.grid >= 2, "need at least a 2×2 hallway grid");
    assert!(cfg.floors >= 1, "need at least one floor");
    let mut b = VenueBuilder::new();
    if cfg.corridor_shape == CorridorShape::Comb {
        // Comb corridors are non-convex: straight-line distances through the
        // walls between stubs would underestimate every back-of-house walk.
        b.distance_model(DistanceModel::Geodesic);
    }
    let mut rng = hours.door_rng();
    let half_w = cfg.corridor_width / 2.0;

    let mut floors: Vec<FloorParts> = Vec::with_capacity(cfg.floors as usize);
    for f in 0..cfg.floors {
        let floor = FloorId(f);
        let fp = build_floor(&mut b, cfg, hours, &mut rng, floor, half_w);
        floors.push(fp);
    }

    // Vertical wiring: an "up" door per lobby joins it to the lobby directly
    // above; the top floor's up door is a locked roof access. Explicit
    // distances realise the 20 m stairways: hallway door ↔ up door is a half
    // flight on each side, and on intermediate landings the incoming and
    // outgoing up doors are a full flight apart.
    let half_flight = cfg.stairway_length / 2.0;
    let mut up_below: Vec<Option<DoorId>> = vec![None; 4];
    for f in 0..cfg.floors as usize {
        let floor = FloorId(f as u16);
        for (li, &lobby) in floors[f].lobbies.iter().enumerate() {
            let name = format!("F{f}/stair{li}/up");
            let pos = b_partition_center(cfg, li);
            let up = if f + 1 < cfg.floors as usize {
                let d = b.add_door_on(&name, DoorKind::Public, AtiList::always_open(), pos, floor);
                let above = floors[f + 1].lobbies[li];
                b.connect(d, Connection::TwoWay(lobby, above))
                    .expect("stair wiring is valid"); // itspq-lint: allow(no-panic-in-lib, "stair doors connect freshly created lobby partitions")
                b.set_distance(above, floors[f + 1].lobby_doors[li], d, half_flight)
                    .expect("stair distances are valid"); // itspq-lint: allow(no-panic-in-lib, "distances are set between doors just added to the lobby")
                d
            } else {
                let d = b.add_door_on(&name, DoorKind::Private, AtiList::never_open(), pos, floor);
                b.connect(d, Connection::Boundary(lobby))
                    .expect("roof door"); // itspq-lint: allow(no-panic-in-lib, "boundary connection of a door just added to the top lobby")
                d
            };
            b.set_distance(lobby, floors[f].lobby_doors[li], up, half_flight)
                .expect("stair distances are valid"); // itspq-lint: allow(no-panic-in-lib, "distances are set between doors just added to the lobby")
            if let Some(below) = up_below[li] {
                b.set_distance(lobby, below, up, cfg.stairway_length)
                    .expect("stair distances are valid"); // itspq-lint: allow(no-panic-in-lib, "distances are set between doors just added to the lobby")
            }
            up_below[li] = Some(up);
        }
    }
    b
}

/// The comb-shaped service corridor of one inner block: a horizontal spine
/// across the middle of the back-of-house band (`y_lo..y_hi`), with one
/// narrow stub per shop back door reaching the band edge the door sits on
/// (south stubs down to `y_lo`, north stubs up to `y_hi`).
///
/// Doors on different stubs are not mutually visible, so geodesic distance
/// matrices over these polygons exercise real visibility-graph shortest
/// paths — the construction stress case.
fn comb_corridor_polygon(
    x0: f64,
    x1: f64,
    y_lo: f64,
    y_hi: f64,
    south_cx: &[f64],
    north_cx: &[f64],
) -> Polygon {
    let band = y_hi - y_lo;
    let yc0 = y_lo + band * 0.4;
    let yc1 = y_hi - band * 0.4;
    // Stubs must stay disjoint: shop fronts are at least a shop width apart,
    // so a quarter of the narrowest shop bounds the stub half-width.
    let mut hw = 1.5f64;
    for cxs in [south_cx, north_cx] {
        if cxs.len() > 1 {
            hw = hw.min((cxs[1] - cxs[0]) / 4.0);
        }
    }
    let mut v = vec![Point::new(x0, yc0)];
    for &cx in south_cx {
        v.push(Point::new(cx - hw, yc0));
        v.push(Point::new(cx - hw, y_lo));
        v.push(Point::new(cx + hw, y_lo));
        v.push(Point::new(cx + hw, yc0));
    }
    v.push(Point::new(x1, yc0));
    v.push(Point::new(x1, yc1));
    for &cx in north_cx.iter().rev() {
        v.push(Point::new(cx + hw, yc1));
        v.push(Point::new(cx + hw, y_hi));
        v.push(Point::new(cx - hw, y_hi));
        v.push(Point::new(cx - hw, yc1));
    }
    v.push(Point::new(x0, yc1));
    Polygon::new(v).expect("comb corridor is a simple polygon") // itspq-lint: allow(no-panic-in-lib, "comb vertices are constructed rectilinear and non-degenerate for any valid MallConfig")
}

/// Door position placeholder for up doors (lobby centres per side index).
fn b_partition_center(cfg: &MallConfig, lobby_index: usize) -> Point {
    let m = cfg.margin();
    let side = cfg.floor_side;
    let mid = side / 2.0;
    match lobby_index {
        0 => Point::new(m - 46.0, mid),        // west
        1 => Point::new(side - m + 46.0, mid), // east
        2 => Point::new(mid, m - 46.0),        // south
        _ => Point::new(mid, side - m + 46.0), // north
    }
}

#[allow(clippy::too_many_lines)]
// 2-D grid wiring reads naturally with (k, l) indices.
#[allow(clippy::needless_range_loop)]
fn build_floor(
    b: &mut VenueBuilder,
    cfg: &MallConfig,
    hours: &ShopHours,
    rng: &mut StdRng,
    floor: FloorId,
    half_w: f64,
) -> FloorParts {
    let g = cfg.grid;
    let f = floor.0;
    let shop_atis = |rng: &mut StdRng| -> AtiList {
        if cfg.variation_ratio >= 1.0 || rng.random_range(0.0..1.0) < cfg.variation_ratio {
            hours.random_atis(rng)
        } else {
            AtiList::always_open()
        }
    };

    // --- Hallway cells -----------------------------------------------------
    let mut intersections = vec![vec![PartitionId(0); g]; g];
    for k in 0..g {
        for l in 0..g {
            let (x, y) = (cfg.line(k), cfg.line(l));
            let rect = Rect::with_size(
                Point::new(x - half_w, y - half_w),
                cfg.corridor_width,
                cfg.corridor_width,
            );
            intersections[k][l] = b.add_partition_on(
                &format!("F{f}/hall({k},{l})"),
                PartitionKind::Public,
                floor,
                Some(rect.to_polygon()),
            );
        }
    }
    let mut h_segments = vec![vec![PartitionId(0); g]; g.saturating_sub(1)];
    for k in 0..g - 1 {
        for l in 0..g {
            let (x0, x1, y) = (cfg.line(k), cfg.line(k + 1), cfg.line(l));
            let rect = Rect::with_size(
                Point::new(x0 + half_w, y - half_w),
                x1 - x0 - cfg.corridor_width,
                cfg.corridor_width,
            );
            h_segments[k][l] = b.add_partition_on(
                &format!("F{f}/hseg({k},{l})"),
                PartitionKind::Public,
                floor,
                Some(rect.to_polygon()),
            );
        }
    }
    let mut v_segments = vec![vec![PartitionId(0); g.saturating_sub(1)]; g];
    for k in 0..g {
        for l in 0..g - 1 {
            let (x, y0, y1) = (cfg.line(k), cfg.line(l), cfg.line(l + 1));
            let rect = Rect::with_size(
                Point::new(x - half_w, y0 + half_w),
                cfg.corridor_width,
                y1 - y0 - cfg.corridor_width,
            );
            v_segments[k][l] = b.add_partition_on(
                &format!("F{f}/vseg({k},{l})"),
                PartitionKind::Public,
                floor,
                Some(rect.to_polygon()),
            );
        }
    }

    // Virtual doors between segments and their two intersections.
    for k in 0..g - 1 {
        for l in 0..g {
            let y = cfg.line(l);
            let d_w = b.add_door_on(
                &format!("F{f}/vd/hseg({k},{l})w"),
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(cfg.line(k) + half_w, y),
                floor,
            );
            b.connect(
                d_w,
                Connection::TwoWay(intersections[k][l], h_segments[k][l]),
            )
            .expect("hallway wiring"); // itspq-lint: allow(no-panic-in-lib, "hallway doors connect freshly created grid partitions")
            let d_e = b.add_door_on(
                &format!("F{f}/vd/hseg({k},{l})e"),
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(cfg.line(k + 1) - half_w, y),
                floor,
            );
            b.connect(
                d_e,
                Connection::TwoWay(h_segments[k][l], intersections[k + 1][l]),
            )
            .expect("hallway wiring"); // itspq-lint: allow(no-panic-in-lib, "hallway doors connect freshly created grid partitions")
        }
    }
    for k in 0..g {
        for l in 0..g - 1 {
            let x = cfg.line(k);
            let d_s = b.add_door_on(
                &format!("F{f}/vd/vseg({k},{l})s"),
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(x, cfg.line(l) + half_w),
                floor,
            );
            b.connect(
                d_s,
                Connection::TwoWay(intersections[k][l], v_segments[k][l]),
            )
            .expect("hallway wiring"); // itspq-lint: allow(no-panic-in-lib, "hallway doors connect freshly created grid partitions")
            let d_n = b.add_door_on(
                &format!("F{f}/vd/vseg({k},{l})n"),
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(x, cfg.line(l + 1) - half_w),
                floor,
            );
            b.connect(
                d_n,
                Connection::TwoWay(v_segments[k][l], intersections[k][l + 1]),
            )
            .expect("hallway wiring"); // itspq-lint: allow(no-panic-in-lib, "hallway doors connect freshly created grid partitions")
        }
    }

    // --- Inner blocks: service corridor + shop rows ------------------------
    let blocks = (g - 1) * (g - 1);
    let mut per_block = vec![0usize; blocks];
    for i in 0..cfg.inner_shops {
        per_block[i % blocks] += 1;
    }
    let mut block_idx = 0;
    for i in 0..g - 1 {
        for j in 0..g - 1 {
            let n_shops = per_block[block_idx];
            block_idx += 1;
            if n_shops == 0 {
                continue;
            }
            let x0 = cfg.line(i) + half_w;
            let x1 = cfg.line(i + 1) - half_w;
            let y0 = cfg.line(j) + half_w;
            let y1 = cfg.line(j + 1) - half_w;
            let width = x1 - x0;
            let height = y1 - y0;
            let row_h = height * 140.0 / 330.0;

            let north = n_shops.div_ceil(2);
            let south = n_shops - north;
            let row_centers = |count: usize| -> Vec<f64> {
                let w = width / count as f64;
                (0..count).map(|s| x0 + w * s as f64 + w / 2.0).collect()
            };
            let north_cx = if north > 0 {
                row_centers(north)
            } else {
                Vec::new()
            };
            let south_cx = if south > 0 {
                row_centers(south)
            } else {
                Vec::new()
            };
            let service_poly = match cfg.corridor_shape {
                CorridorShape::Band => {
                    Rect::with_size(Point::new(x0, y0 + row_h), width, height - 2.0 * row_h)
                        .to_polygon()
                }
                CorridorShape::Comb => {
                    comb_corridor_polygon(x0, x1, y0 + row_h, y1 - row_h, &south_cx, &north_cx)
                }
            };
            let service = b.add_partition_on(
                &format!("F{f}/service({i},{j})"),
                PartitionKind::Private,
                floor,
                Some(service_poly),
            );

            let mut shop_no = 0;
            for (row, count) in [(0usize, north), (1usize, south)] {
                if count == 0 {
                    continue;
                }
                let w = width / count as f64;
                for s in 0..count {
                    let sx0 = x0 + w * s as f64;
                    let (sy0, front_y, back_y, front_hall) = if row == 0 {
                        // North row: front door up to hseg(i, j+1).
                        (y1 - row_h, y1, y1 - row_h, h_segments[i][j + 1])
                    } else {
                        // South row: front door down to hseg(i, j).
                        (y0, y0, y0 + row_h, h_segments[i][j])
                    };
                    let shop = b.add_partition_on(
                        &format!("F{f}/shop({i},{j})#{shop_no}"),
                        PartitionKind::Public,
                        floor,
                        Some(Rect::with_size(Point::new(sx0, sy0), w, row_h).to_polygon()),
                    );
                    shop_no += 1;
                    // Same value as `sx0 + w / 2.0`; the precomputed centres
                    // are what the comb corridor's stubs were placed on.
                    let cx = if row == 0 { north_cx[s] } else { south_cx[s] };
                    let front = b.add_door_on(
                        &format!("F{f}/shop({i},{j})#{}/front", shop_no - 1),
                        DoorKind::Public,
                        shop_atis(rng),
                        Point::new(cx, front_y),
                        floor,
                    );
                    b.connect(front, Connection::TwoWay(shop, front_hall))
                        .expect("shop wiring"); // itspq-lint: allow(no-panic-in-lib, "shop doors connect freshly created shop and hall partitions")
                    let back = b.add_door_on(
                        &format!("F{f}/shop({i},{j})#{}/back", shop_no - 1),
                        DoorKind::Private,
                        shop_atis(rng),
                        Point::new(cx, back_y),
                        floor,
                    );
                    b.connect(back, Connection::TwoWay(shop, service))
                        .expect("shop wiring"); // itspq-lint: allow(no-panic-in-lib, "shop doors connect freshly created shop and hall partitions")
                }
            }
        }
    }

    // --- Outer shops (front door only) -------------------------------------
    // Two per side, attached to outermost segments.
    let m = cfg.margin();
    let depth = (m - half_w).min(80.0);
    let mid_slot_for_lobbies = (g - 1) / 2;
    let mut outer = 0usize;
    'outer: for side in 0..4 {
        for slot in 0..g - 1 {
            if outer >= cfg.outer_shops {
                break 'outer;
            }
            // The middle slot of every side hosts a stair lobby.
            if slot == mid_slot_for_lobbies {
                continue;
            }
            let cmid = (cfg.line(slot) + cfg.line(slot + 1)) / 2.0;
            let w = 100.0_f64.min(cfg.spacing() / 2.0);
            let (rect, door_pos, hall) = match side {
                0 => {
                    // South: below hseg(slot, 0).
                    let y = cfg.line(0) - half_w;
                    (
                        Rect::with_size(Point::new(cmid - w / 2.0, y - depth), w, depth),
                        Point::new(cmid, y),
                        h_segments[slot][0],
                    )
                }
                1 => {
                    // North: above hseg(slot, g-1).
                    let y = cfg.line(g - 1) + half_w;
                    (
                        Rect::with_size(Point::new(cmid - w / 2.0, y), w, depth),
                        Point::new(cmid, y),
                        h_segments[slot][g - 1],
                    )
                }
                2 => {
                    // West: left of vseg(0, slot).
                    let x = cfg.line(0) - half_w;
                    (
                        Rect::with_size(Point::new(x - depth, cmid - w / 2.0), depth, w),
                        Point::new(x, cmid),
                        v_segments[0][slot],
                    )
                }
                _ => {
                    // East: right of vseg(g-1, slot).
                    let x = cfg.line(g - 1) + half_w;
                    (
                        Rect::with_size(Point::new(x, cmid - w / 2.0), depth, w),
                        Point::new(x, cmid),
                        v_segments[g - 1][slot],
                    )
                }
            };
            let shop = b.add_partition_on(
                &format!("F{f}/outer#{outer}"),
                PartitionKind::Public,
                floor,
                Some(rect.to_polygon()),
            );
            let front = b.add_door_on(
                &format!("F{f}/outer#{outer}/front"),
                DoorKind::Public,
                shop_atis(rng),
                door_pos,
                floor,
            );
            b.connect(front, Connection::TwoWay(shop, hall))
                .expect("outer shop wiring"); // itspq-lint: allow(no-panic-in-lib, "outer shop doors connect freshly created partitions")
            outer += 1;
        }
    }
    assert_eq!(
        outer, cfg.outer_shops,
        "outer-shop slots exhausted; reduce outer_shops"
    );

    // --- Stair lobbies ------------------------------------------------------
    let mid_slot = (g - 1) / 2;
    let lobby_specs: [(Point, Point, PartitionId); 4] = {
        let mid = |a: usize| (cfg.line(a) + cfg.line(a + 1)) / 2.0;
        [
            // West lobby at vseg(0, mid).
            (
                Point::new(cfg.line(0) - half_w - 80.0, mid(mid_slot) - 40.0),
                Point::new(cfg.line(0) - half_w, mid(mid_slot)),
                v_segments[0][mid_slot],
            ),
            // East lobby at vseg(g-1, mid).
            (
                Point::new(cfg.line(g - 1) + half_w, mid(mid_slot) - 40.0),
                Point::new(cfg.line(g - 1) + half_w, mid(mid_slot)),
                v_segments[g - 1][mid_slot],
            ),
            // South lobby at hseg(mid, 0).
            (
                Point::new(mid(mid_slot) - 40.0, cfg.line(0) - half_w - 80.0),
                Point::new(mid(mid_slot), cfg.line(0) - half_w),
                h_segments[mid_slot][0],
            ),
            // North lobby at hseg(mid, g-1).
            (
                Point::new(mid(mid_slot) - 40.0, cfg.line(g - 1) + half_w),
                Point::new(mid(mid_slot), cfg.line(g - 1) + half_w),
                h_segments[mid_slot][g - 1],
            ),
        ]
    };
    let mut lobbies = Vec::with_capacity(4);
    let mut lobby_doors = Vec::with_capacity(4);
    for (li, (origin, door_pos, hall)) in lobby_specs.into_iter().enumerate() {
        let lobby = b.add_partition_on(
            &format!("F{f}/stair{li}"),
            PartitionKind::Public,
            floor,
            Some(Rect::with_size(origin, 80.0, 80.0).to_polygon()),
        );
        let d = b.add_door_on(
            &format!("F{f}/stair{li}/door"),
            DoorKind::Public,
            AtiList::always_open(),
            door_pos,
            floor,
        );
        b.connect(d, Connection::TwoWay(lobby, hall))
            .expect("lobby wiring"); // itspq-lint: allow(no-panic-in-lib, "lobby doors connect freshly created partitions")
        lobbies.push(lobby);
        lobby_doors.push(d);
    }

    FloorParts {
        intersections,
        h_segments,
        v_segments,
        lobbies,
        lobby_doors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HoursConfig;

    fn hours() -> ShopHours {
        ShopHours::sample(&HoursConfig::default())
    }

    #[test]
    fn paper_default_matches_reported_counts() {
        let space = build_mall(&MallConfig::paper_default(), &hours());
        let stats = space.stats();
        assert_eq!(stats.partitions, 705, "paper: 705 partitions");
        assert_eq!(stats.doors, 1120, "paper: 1120 doors");
        assert_eq!(stats.floors, 5);
    }

    #[test]
    fn single_floor_matches_reported_counts() {
        let space = build_mall(&MallConfig::single_floor(), &hours());
        let stats = space.stats();
        assert_eq!(stats.partitions, 141, "paper: 141 partitions per floor");
        assert_eq!(stats.doors, 224, "paper: 224 doors per floor");
    }

    #[test]
    fn composition_per_floor() {
        let space = build_mall(&MallConfig::single_floor(), &hours());
        let stats = space.stats();
        // 9 private service corridors; 80 private back doors + 1 roof door.
        assert_eq!(stats.private_partitions, 9);
        assert_eq!(stats.private_doors, 80 + 4);
        // Varying doors: 88 fronts + 80 backs.
        assert_eq!(stats.doors_with_variation, 168);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = MallConfig::single_floor();
        let a = build_mall(&cfg, &hours());
        let b = build_mall(&cfg, &hours());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = MallConfig::single_floor();
        let a = build_mall(
            &cfg,
            &ShopHours::sample(&HoursConfig::default().with_seed(1)),
        );
        let b = build_mall(
            &cfg,
            &ShopHours::sample(&HoursConfig::default().with_seed(2)),
        );
        assert_ne!(a, b);
    }

    #[test]
    fn tiny_config_builds() {
        let space = build_mall(&MallConfig::tiny(), &hours());
        assert!(space.num_partitions() > 0);
        assert!(space.num_doors() > 0);
    }

    #[test]
    fn comb_corridors_keep_paper_counts() {
        let cfg = MallConfig::single_floor().with_comb_corridors();
        let space = build_mall(&cfg, &hours());
        let stats = space.stats();
        assert_eq!(stats.partitions, 141, "comb changes shapes, not counts");
        assert_eq!(stats.doors, 224);
        assert_eq!(stats.private_partitions, 9);
    }

    #[test]
    fn comb_corridors_force_real_geodesics() {
        let cfg = MallConfig::tiny().with_comb_corridors();
        let space = build_mall(&cfg, &hours());
        let service = space
            .partitions()
            .iter()
            .find(|p| p.name.starts_with("F0/service"))
            .expect("tiny mall has a service corridor");
        assert!(
            !service.polygon.as_ref().unwrap().is_convex(),
            "comb corridor must be non-convex"
        );
        let doors = space.p2d(service.id);
        assert!(doors.len() >= 2);
        // Back doors sit on stub tips: the interior walk between two stubs
        // strictly exceeds the straight line through the walls.
        let (a, b) = (doors[0], doors[1]);
        let direct = space.door(a).position.distance(space.door(b).position);
        let walked = space.door_to_door(service.id, a, b).unwrap();
        assert!(
            walked > direct + 1.0,
            "expected a detour: walked {walked}, direct {direct}"
        );
    }

    #[test]
    fn comb_mall_pipelines_agree_exactly() {
        let cfg = MallConfig::tiny().with_comb_corridors();
        let h = hours();
        let fast = mall_builder(&cfg, &h).build().unwrap();
        let threaded = mall_builder(&cfg, &h).build_with_workers(4).unwrap();
        let slow = mall_builder(&cfg, &h).build_sequential().unwrap();
        assert_eq!(fast, slow, "fast pipeline diverged from reference");
        assert_eq!(threaded, slow, "worker count changed the output");
    }

    #[test]
    fn comb_door_positions_lie_on_their_partitions() {
        let cfg = MallConfig::tiny().with_comb_corridors();
        let space = build_mall(&cfg, &hours());
        for p in space.partitions() {
            let poly = p.polygon.as_ref().unwrap();
            for &d in space.p2d(p.id) {
                let rec = space.door(d);
                assert!(
                    poly.contains(rec.position),
                    "door {} at {} outside partition {}",
                    rec.name,
                    rec.position,
                    p.name
                );
            }
        }
    }

    #[test]
    fn stairways_cost_20m_between_floors() {
        let cfg = MallConfig::paper_default().with_floors(2);
        let space = build_mall(&cfg, &hours());
        // Find floor 0's west lobby and its two doors.
        let lobby = space
            .partitions()
            .iter()
            .find(|p| p.name == "F0/stair0")
            .expect("lobby exists");
        let doors = space.p2d(lobby.id);
        assert_eq!(doors.len(), 2, "lobby has hallway door + up door");
        let dm = space.distance_matrix(lobby.id);
        let total: f64 = dm.distance(doors[0], doors[1]).unwrap();
        assert!(
            (total - 10.0).abs() < 1e-9,
            "half-flight is 10 m, got {total}"
        );
    }

    #[test]
    fn roof_doors_are_locked() {
        let space = build_mall(&MallConfig::single_floor(), &hours());
        let roof: Vec<_> = space
            .doors()
            .iter()
            .filter(|d| d.name.ends_with("/up"))
            .collect();
        assert_eq!(roof.len(), 4);
        assert!(roof.iter().all(|d| d.atis.is_never_open()));
        assert!(roof.iter().all(|d| d.kind == DoorKind::Private));
    }

    #[test]
    fn hallways_are_always_open() {
        let space = build_mall(&MallConfig::single_floor(), &hours());
        for d in space.doors() {
            if d.name.contains("/vd/") || d.name.ends_with("/door") {
                assert!(
                    d.atis.is_always_open(),
                    "hallway door {} must stay open",
                    d.name
                );
            }
        }
    }

    #[test]
    fn every_partition_has_polygon_and_doors() {
        let space = build_mall(&MallConfig::single_floor(), &hours());
        for p in space.partitions() {
            assert!(p.polygon.is_some(), "{} lacks a polygon", p.name);
            assert!(!space.p2d(p.id).is_empty(), "{} has no doors", p.name);
        }
    }

    #[test]
    fn door_positions_lie_on_their_partitions() {
        let space = build_mall(&MallConfig::single_floor(), &hours());
        for p in space.partitions() {
            let poly = p.polygon.as_ref().unwrap();
            for &d in space.p2d(p.id) {
                let rec = space.door(d);
                // Up/roof doors sit at lobby centres; all others on boundaries.
                assert!(
                    poly.contains(rec.position),
                    "door {} at {} outside partition {}",
                    rec.name,
                    rec.position,
                    p.name
                );
            }
        }
    }
}
