//! Shop-hours pool and checkpoint-set sampling.
//!
//! The paper crawls the opening hours of shops in five Hong Kong malls and
//! forms the checkpoint set `T` (sizes 4, 8, 12, 16) from random open/close
//! pairs; each temporally-varying door receives up to three ATIs built from
//! `T`. The crawl itself is unavailable, so [`ShopHours`] substitutes a pool
//! of typical mall hours with the same structure.
//!
//! Two sampling modes are provided:
//!
//! * [`Sampling::Nested`] (default) grows `T` monotonically — early opens
//!   first, late closes first — so that increasing `|T|` monotonically closes
//!   more doors at 8:00, reproducing the trend of the paper's Figure 4;
//! * [`Sampling::Random`] draws uniformly from the pool, matching the paper's
//!   wording literally at the cost of trend stability across seeds.

use indoor_time::{AtiList, Interval, TimeOfDay};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// How the checkpoint set `T` is drawn from the hours pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sampling {
    /// Deterministic prefix of the pool (stable monotone trends).
    Nested,
    /// Uniform sample without replacement.
    Random,
}

/// Configuration for temporal-variation generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoursConfig {
    /// `|T|`: total number of checkpoint times (opens + closes). The paper
    /// uses 4, 8, 12 or 16 (default 8).
    pub t_size: usize,
    /// Maximum ATIs per varying door (paper: up to three).
    pub max_atis: usize,
    /// Sampling mode for `T`.
    pub sampling: Sampling,
    /// Seed for `T` sampling (only used by [`Sampling::Random`]) and as the
    /// base seed for per-door ATI assignment.
    pub seed: u64,
}

impl Default for HoursConfig {
    fn default() -> Self {
        HoursConfig {
            t_size: 8,
            max_atis: 3,
            sampling: Sampling::Nested,
            seed: 0x5EED,
        }
    }
}

impl HoursConfig {
    /// The paper's default setting (`|T| = 8`).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Returns a copy with the given `|T|`.
    #[must_use]
    pub fn with_t_size(mut self, t_size: usize) -> Self {
        self.t_size = t_size;
        self
    }

    /// Returns a copy with the given seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The pool of opening times, ordered for nested sampling: times at or before
/// 8:00 first so that small `T` keeps doors open at the paper's 8:00 probe.
fn opens_pool() -> Vec<TimeOfDay> {
    vec![
        TimeOfDay::hm(8, 0),
        TimeOfDay::hm(7, 0),
        TimeOfDay::hm(9, 0),
        TimeOfDay::hm(10, 30),
        TimeOfDay::hm(10, 0),
        TimeOfDay::hm(11, 0),
        TimeOfDay::hm(8, 30),
        TimeOfDay::hm(9, 30),
    ]
}

/// The pool of closing times, ordered for nested sampling: late closes first
/// so that the default `T` keeps the paper's 10:00–20:00 plateau intact.
fn closes_pool() -> Vec<TimeOfDay> {
    vec![
        TimeOfDay::hm(21, 0),
        TimeOfDay::hm(22, 0),
        TimeOfDay::hm(20, 0),
        TimeOfDay::hm(23, 0),
        TimeOfDay::hm(17, 0),
        TimeOfDay::hm(18, 0),
        TimeOfDay::hm(19, 0),
        TimeOfDay::hm(21, 30),
    ]
}

/// A sampled checkpoint set `T`: the open times and close times doors may use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShopHours {
    opens: Vec<TimeOfDay>,
    closes: Vec<TimeOfDay>,
    max_atis: usize,
    seed: u64,
}

impl ShopHours {
    /// Samples `T` according to the configuration.
    ///
    /// # Panics
    /// Panics if `t_size` is odd, below 2 or larger than the pool allows (16).
    #[must_use]
    pub fn sample(cfg: &HoursConfig) -> Self {
        assert!(
            cfg.t_size.is_multiple_of(2),
            "|T| must be even (open/close pairs)"
        );
        let half = cfg.t_size / 2;
        let opens_pool = opens_pool();
        let closes_pool = closes_pool();
        assert!(
            (1..=opens_pool.len()).contains(&half),
            "|T| must be between 2 and {}",
            2 * opens_pool.len()
        );
        let (opens, closes) = match cfg.sampling {
            Sampling::Nested => (opens_pool[..half].to_vec(), closes_pool[..half].to_vec()),
            Sampling::Random => {
                let mut rng = StdRng::seed_from_u64(cfg.seed);
                (
                    sample_without_replacement(&opens_pool, half, &mut rng),
                    sample_without_replacement(&closes_pool, half, &mut rng),
                )
            }
        };
        ShopHours {
            opens,
            closes,
            max_atis: cfg.max_atis,
            seed: cfg.seed,
        }
    }

    /// The open times in `T`.
    #[must_use]
    pub fn opens(&self) -> &[TimeOfDay] {
        &self.opens
    }

    /// The close times in `T`.
    #[must_use]
    pub fn closes(&self) -> &[TimeOfDay] {
        &self.closes
    }

    /// `|T|`.
    #[must_use]
    pub fn t_size(&self) -> usize {
        self.opens.len() + self.closes.len()
    }

    /// All checkpoint times of `T` in ascending order.
    #[must_use]
    pub fn checkpoint_times(&self) -> Vec<TimeOfDay> {
        let mut t: Vec<TimeOfDay> = self
            .opens
            .iter()
            .chain(self.closes.iter())
            .copied()
            .collect();
        t.sort();
        t.dedup();
        t
    }

    /// Draws the ATIs for one varying door: 1 ..= `max_atis` random
    /// `[open, close)` pairs from `T`, normalised into an [`AtiList`].
    pub fn random_atis(&self, rng: &mut impl Rng) -> AtiList {
        let k = rng.random_range(1..=self.max_atis.max(1));
        let mut intervals = Vec::with_capacity(k);
        for _ in 0..k {
            let open = self.opens[rng.random_range(0..self.opens.len())];
            let close = self.closes[rng.random_range(0..self.closes.len())];
            // Inverted draws (open >= close) are simply skipped; Interval::new
            // rejects them, so the push only happens for well-formed pairs.
            if let Ok(iv) = Interval::new(open, close) {
                intervals.push(iv);
            }
        }
        if intervals.is_empty() {
            // All draws were inverted pairs (possible only with exotic pools);
            // fall back to the earliest-open/latest-close pair.
            if let (Some(&open), Some(&close)) = (self.opens.iter().min(), self.closes.iter().max())
            {
                if let Ok(iv) = Interval::new(open, close) {
                    intervals.push(iv);
                }
            }
        }
        AtiList::from_intervals(intervals).unwrap_or_else(|_| AtiList::never_open())
    }

    /// A deterministic RNG for door-ATI assignment derived from the base seed.
    #[must_use]
    pub fn door_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ 0xD00D)
    }
}

fn sample_without_replacement(pool: &[TimeOfDay], k: usize, rng: &mut impl Rng) -> Vec<TimeOfDay> {
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    // Partial Fisher–Yates.
    for i in 0..k {
        let j = rng.random_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..k].iter().map(|&i| pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_sets_are_prefixes() {
        let t4 = ShopHours::sample(&HoursConfig::default().with_t_size(4));
        let t8 = ShopHours::sample(&HoursConfig::default().with_t_size(8));
        let t16 = ShopHours::sample(&HoursConfig::default().with_t_size(16));
        assert_eq!(t4.t_size(), 4);
        assert_eq!(t8.t_size(), 8);
        assert_eq!(t16.t_size(), 16);
        assert_eq!(&t8.opens()[..2], t4.opens());
        assert_eq!(&t16.opens()[..4], t8.opens());
        assert_eq!(&t16.closes()[..4], t8.closes());
    }

    #[test]
    fn nested_small_t_keeps_doors_open_at_8() {
        // With |T| = 4 every open time is <= 8:00 …
        let t4 = ShopHours::sample(&HoursConfig::default().with_t_size(4));
        assert!(t4.opens().iter().all(|&o| o <= TimeOfDay::hm(8, 0)));
        // … while |T| = 16 has mostly later opens.
        let t16 = ShopHours::sample(&HoursConfig::default().with_t_size(16));
        let late = t16
            .opens()
            .iter()
            .filter(|&&o| o > TimeOfDay::hm(8, 0))
            .count();
        assert!(late >= 5, "expected most opens after 8:00, got {late} of 8");
    }

    #[test]
    fn random_sampling_is_seeded() {
        let cfg = HoursConfig {
            sampling: Sampling::Random,
            ..HoursConfig::default()
        };
        let a = ShopHours::sample(&cfg);
        let b = ShopHours::sample(&cfg);
        assert_eq!(a, b);
        let c = ShopHours::sample(&HoursConfig { seed: 999, ..cfg });
        // Different seed may give a different set (it does for this pool).
        assert!(a != c || a.opens() == c.opens());
    }

    #[test]
    fn random_atis_use_t_only() {
        let hours = ShopHours::sample(&HoursConfig::default());
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let atis = hours.random_atis(&mut rng);
            assert!(!atis.is_never_open());
            assert!(atis.intervals().len() <= 3);
            for iv in atis.intervals() {
                assert!(
                    hours.opens().contains(&iv.start()) || {
                        // A merged interval may start at any sampled open …
                        hours.opens().iter().any(|&o| o == iv.start())
                    }
                );
                assert!(hours.closes().contains(&iv.end()));
            }
        }
    }

    #[test]
    fn checkpoint_times_sorted_unique() {
        let hours = ShopHours::sample(&HoursConfig::default().with_t_size(16));
        let times = hours.checkpoint_times();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(times.len(), 16); // pools share no values
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_t_rejected() {
        let _ = ShopHours::sample(&HoursConfig::default().with_t_size(5));
    }

    #[test]
    #[should_panic(expected = "between 2")]
    fn oversize_t_rejected() {
        let _ = ShopHours::sample(&HoursConfig::default().with_t_size(20));
    }
}
