//! Synthetic workload generator reproducing the evaluation setup of the ITSPQ
//! paper (§III *Experimental Studies*).
//!
//! Three pieces, mirroring the paper's "Settings" subsection:
//!
//! * [`MallConfig`] / [`build_mall`] — **Indoor Space**: a multi-floor
//!   shopping mall whose floors measure 1368 m × 1368 m and decompose into
//!   exactly **141 partitions and 224 doors per floor** (hallway grid cells,
//!   shops, private service corridors, stair lobbies), with four 20 m
//!   staircases between adjacent floors. The default five floors give 705
//!   partitions and 1120 doors, as reported in the paper.
//! * [`HoursConfig`] / [`ShopHours`] — **Temporal Variations**: a pool of
//!   realistic mall opening/closing times standing in for the paper's crawl
//!   of five Hong Kong malls; checkpoint sets `T` of size 4/8/12/16 are drawn
//!   from the pool and every temporally-varying door receives up to three
//!   ATIs assembled from `T`.
//! * [`QueryGenConfig`] / [`generate_queries`] — **Query Instances**: random
//!   `(ps, pt)` pairs whose temporal-oblivious indoor distance approximates
//!   the control parameter `δs2t`.
//!
//! Everything is deterministic per seed.

#![forbid(unsafe_code)]

mod floorplan;
mod hours;
mod query_gen;

pub use floorplan::{build_mall, mall_builder, CorridorShape, MallConfig};
pub use hours::{HoursConfig, Sampling, ShopHours};
pub use query_gen::{
    generate_queries, GeneratedQuery, QueryGenConfig, SourceDistribution, TimeDistribution,
};
