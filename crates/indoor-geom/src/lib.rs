//! 2-D geometry substrate for indoor venues.
//!
//! This crate provides the geometric primitives the indoor-space model is
//! built on:
//!
//! * [`Point`] and [`Vector`] — planar points/vectors with the usual algebra;
//! * [`Segment`] — line segments with distance and midpoint helpers;
//! * [`Rect`] — axis-aligned rectangles (the shape of regular partitions);
//! * [`Polygon`] — simple polygons with area/centroid/containment tests;
//! * [`decompose_rectilinear`] — decomposition of rectilinear polygons into
//!   axis-aligned rectangles. The ICDE 2020 ITSPQ paper relies on the
//!   decomposition of irregular hallways into "smaller, regular partitions"
//!   (Xie et al., ICDE 2013); this routine is the substitute used when a venue
//!   is built from irregular footprints;
//! * [`geodesic_distance`] — exact interior shortest-path distance in a
//!   simple polygon (visibility graph + Dijkstra), used for the distance
//!   matrices of partitions kept non-convex;
//! * [`GeodesicSolver`] — the amortised form of [`geodesic_distance`]: builds
//!   a polygon's visibility graph once and answers one-to-many queries, which
//!   is what venue construction uses to fill whole distance matrices.
//!
//! All coordinates are metres in a per-floor local frame.

#![forbid(unsafe_code)]

mod decompose;
mod error;
mod geodesic;
mod point;
mod polygon;
mod rect;
mod segment;

pub use decompose::decompose_rectilinear;
pub use error::GeomError;
pub use geodesic::{geodesic_distance, segment_inside, GeodesicSolver};
pub use point::{Point, Vector};
pub use polygon::Polygon;
pub use rect::Rect;
pub use segment::Segment;

/// Floating-point tolerance used by geometric predicates (metres).
pub const EPS: f64 = 1e-9;
