//! Line segments.

use serde::{Deserialize, Serialize};

use crate::Point;

/// A line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length in metres.
    #[must_use]
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// The midpoint of the segment (where a door on a shared wall is placed by
    /// default).
    #[must_use]
    pub fn midpoint(self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The point on the segment closest to `p`.
    #[must_use]
    pub fn closest_point(self, p: Point) -> Point {
        let ab = self.b - self.a;
        let len_sq = ab.dot(ab);
        // A dot product with itself is never negative, so `<= 0` is exactly
        // the degenerate (zero-length) case — without a float `==`.
        if len_sq <= 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        self.a.lerp(self.b, t)
    }

    /// Distance from `p` to the segment.
    #[must_use]
    pub fn distance_to_point(self, p: Point) -> f64 {
        self.closest_point(p).distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), Point::new(5.0, 0.0));
    }

    #[test]
    fn closest_point_projects_and_clamps() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.closest_point(Point::new(5.0, 3.0)), Point::new(5.0, 0.0));
        assert_eq!(s.closest_point(Point::new(-4.0, 3.0)), Point::new(0.0, 0.0));
        assert_eq!(
            s.closest_point(Point::new(14.0, 3.0)),
            Point::new(10.0, 0.0)
        );
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, 2.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_point(Point::new(5.0, 6.0)), Point::new(2.0, 2.0));
        assert_eq!(s.distance_to_point(Point::new(5.0, 6.0)), 5.0);
    }
}
