//! Axis-aligned rectangles.

use serde::{Deserialize, Serialize};

use crate::{GeomError, Point, Polygon, Segment, EPS};

/// An axis-aligned rectangle — the shape of a regular (decomposed) partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from its min (south-west) and max (north-east)
    /// corners.
    ///
    /// # Errors
    /// Returns [`GeomError::DegenerateRect`] if either extent is not strictly
    /// positive or a coordinate is not finite.
    pub fn new(min: Point, max: Point) -> Result<Self, GeomError> {
        let finite =
            min.x.is_finite() && min.y.is_finite() && max.x.is_finite() && max.y.is_finite();
        if !finite || max.x - min.x <= EPS || max.y - min.y <= EPS {
            return Err(GeomError::DegenerateRect { min, max });
        }
        Ok(Rect { min, max })
    }

    /// Creates a rectangle from an origin corner plus width/height. Panics on
    /// invalid input; intended for generator literals.
    #[must_use]
    pub fn with_size(origin: Point, width: f64, height: f64) -> Self {
        Rect::new(origin, Point::new(origin.x + width, origin.y + height))
            // itspq-lint: allow(no-panic-in-lib, "documented panicking literal constructor for generator fixtures")
            .expect("rect literal must be non-degenerate")
    }

    /// South-west corner.
    #[must_use]
    pub fn min(self) -> Point {
        self.min
    }

    /// North-east corner.
    #[must_use]
    pub fn max(self) -> Point {
        self.max
    }

    /// Width (x extent) in metres.
    #[must_use]
    pub fn width(self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent) in metres.
    #[must_use]
    pub fn height(self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    #[must_use]
    pub fn area(self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    #[must_use]
    pub fn center(self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains(self, p: Point) -> bool {
        self.min.x - EPS <= p.x
            && p.x <= self.max.x + EPS
            && self.min.y - EPS <= p.y
            && p.y <= self.max.y + EPS
    }

    /// Whether the interiors of the two rectangles intersect.
    #[must_use]
    pub fn intersects(self, other: Rect) -> bool {
        self.min.x < other.max.x - EPS
            && other.min.x < self.max.x - EPS
            && self.min.y < other.max.y - EPS
            && other.min.y < self.max.y - EPS
    }

    /// The shared boundary segment between two touching rectangles, if they
    /// abut along an edge of positive length (where a virtual door can sit).
    #[must_use]
    pub fn shared_edge(self, other: Rect) -> Option<Segment> {
        // Vertical contact: self's right edge on other's left edge (or the
        // mirrored case), with overlapping y ranges.
        let y_lo = self.min.y.max(other.min.y);
        let y_hi = self.max.y.min(other.max.y);
        if (self.max.x - other.min.x).abs() <= EPS && y_hi - y_lo > EPS {
            return Some(Segment::new(
                Point::new(self.max.x, y_lo),
                Point::new(self.max.x, y_hi),
            ));
        }
        if (other.max.x - self.min.x).abs() <= EPS && y_hi - y_lo > EPS {
            return Some(Segment::new(
                Point::new(self.min.x, y_lo),
                Point::new(self.min.x, y_hi),
            ));
        }
        // Horizontal contact.
        let x_lo = self.min.x.max(other.min.x);
        let x_hi = self.max.x.min(other.max.x);
        if (self.max.y - other.min.y).abs() <= EPS && x_hi - x_lo > EPS {
            return Some(Segment::new(
                Point::new(x_lo, self.max.y),
                Point::new(x_hi, self.max.y),
            ));
        }
        if (other.max.y - self.min.y).abs() <= EPS && x_hi - x_lo > EPS {
            return Some(Segment::new(
                Point::new(x_lo, self.min.y),
                Point::new(x_hi, self.min.y),
            ));
        }
        None
    }

    /// This rectangle as a counter-clockwise polygon.
    #[must_use]
    pub fn to_polygon(self) -> Polygon {
        Polygon::new(vec![
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ])
        // itspq-lint: allow(no-panic-in-lib, "a non-degenerate rect's four corners always form a simple CCW polygon")
        .expect("rectangle corners form a simple polygon")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Rect::new(Point::new(0.0, 0.0), Point::new(0.0, 5.0)).is_err());
        assert!(Rect::new(Point::new(0.0, 0.0), Point::new(-1.0, 5.0)).is_err());
        assert!(Rect::new(Point::new(0.0, f64::NAN), Point::new(1.0, 5.0)).is_err());
        assert!(Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 5.0)).is_ok());
    }

    #[test]
    fn measurements() {
        let rect = r(1.0, 2.0, 5.0, 10.0);
        assert_eq!(rect.width(), 4.0);
        assert_eq!(rect.height(), 8.0);
        assert_eq!(rect.area(), 32.0);
        assert_eq!(rect.center(), Point::new(3.0, 6.0));
    }

    #[test]
    fn containment() {
        let rect = r(0.0, 0.0, 10.0, 10.0);
        assert!(rect.contains(Point::new(5.0, 5.0)));
        assert!(rect.contains(Point::new(0.0, 0.0))); // boundary included
        assert!(rect.contains(Point::new(10.0, 10.0)));
        assert!(!rect.contains(Point::new(10.1, 5.0)));
    }

    #[test]
    fn interior_intersection() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert!(a.intersects(r(5.0, 5.0, 15.0, 15.0)));
        assert!(!a.intersects(r(10.0, 0.0, 20.0, 10.0))); // touching edges only
        assert!(!a.intersects(r(11.0, 0.0, 20.0, 10.0)));
    }

    #[test]
    fn shared_edges() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        // Right neighbour sharing x = 10, y in [2, 8].
        let right = r(10.0, 2.0, 20.0, 8.0);
        let e = a.shared_edge(right).unwrap();
        assert_eq!(e.a, Point::new(10.0, 2.0));
        assert_eq!(e.b, Point::new(10.0, 8.0));
        assert_eq!(right.shared_edge(a).unwrap().midpoint(), e.midpoint());
        // Top neighbour.
        let top = r(3.0, 10.0, 7.0, 20.0);
        let e = a.shared_edge(top).unwrap();
        assert_eq!(e.midpoint(), Point::new(5.0, 10.0));
        // Corner-only contact yields no edge.
        let corner = r(10.0, 10.0, 20.0, 20.0);
        assert!(a.shared_edge(corner).is_none());
        // Distant rectangles yield no edge.
        assert!(a.shared_edge(r(30.0, 0.0, 40.0, 10.0)).is_none());
    }

    #[test]
    fn polygon_conversion() {
        let p = r(0.0, 0.0, 4.0, 3.0).to_polygon();
        assert!((p.area() - 12.0).abs() < 1e-12);
        assert!(p.contains(Point::new(2.0, 1.5)));
    }
}
