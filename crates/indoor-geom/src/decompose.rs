//! Decomposition of rectilinear polygons into axis-aligned rectangles.
//!
//! The ITSPQ paper's synthetic venue is produced by decomposing "irregular
//! hallways … into smaller, regular partitions" (citing Xie et al., ICDE
//! 2013). This module provides that substrate: a slab decomposition that
//! slices a rectilinear polygon at every distinct vertex y-coordinate and
//! emits one rectangle per maximal horizontal run inside each slab.
//!
//! The result exactly covers the polygon's interior with non-overlapping
//! rectangles whose union area equals the polygon area (verified by tests and
//! property tests).

use crate::{GeomError, Point, Polygon, Rect, EPS};

/// Decomposes a rectilinear [`Polygon`] into non-overlapping axis-aligned
/// [`Rect`]s covering the same area.
///
/// # Errors
/// Returns [`GeomError::NotRectilinear`] if any edge is not axis-parallel.
pub fn decompose_rectilinear(poly: &Polygon) -> Result<Vec<Rect>, GeomError> {
    if !poly.is_rectilinear() {
        return Err(GeomError::NotRectilinear);
    }

    // Horizontal slab boundaries: every distinct vertex y.
    let mut ys: Vec<f64> = poly.vertices().iter().map(|v| v.y).collect();
    ys.sort_by(|a, b| a.total_cmp(b));
    ys.dedup_by(|a, b| (*a - *b).abs() <= EPS);

    let mut rects = Vec::new();
    for slab in ys.windows(2) {
        let (y_lo, y_hi) = (slab[0], slab[1]);
        let y_mid = (y_lo + y_hi) / 2.0;

        // Intersect the horizontal line y = y_mid with the polygon's vertical
        // edges; consecutive crossing pairs are interior runs.
        let mut xs: Vec<f64> = Vec::new();
        let verts = poly.vertices();
        let n = verts.len();
        for i in 0..n {
            let a = verts[i];
            let b = verts[(i + 1) % n];
            if (a.x - b.x).abs() <= EPS {
                // Vertical edge spanning [min_y, max_y).
                let (lo, hi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
                if lo - EPS <= y_mid && y_mid < hi + EPS && hi - lo > EPS {
                    xs.push(a.x);
                }
            }
        }
        xs.sort_by(|a, b| a.total_cmp(b));

        debug_assert!(
            xs.len().is_multiple_of(2),
            "odd crossing count in simple rectilinear polygon"
        );
        for pair in xs.chunks_exact(2) {
            if pair[1] - pair[0] > EPS {
                // A crossing pair wider and a slab taller than EPS cannot
                // form a degenerate rect; skip (not panic) if it somehow does.
                if let Ok(r) = Rect::new(Point::new(pair[0], y_lo), Point::new(pair[1], y_hi)) {
                    rects.push(r);
                }
            }
        }
    }
    Ok(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn total_area(rects: &[Rect]) -> f64 {
        rects.iter().map(|r| r.area()).sum()
    }

    fn assert_no_overlap(rects: &[Rect]) {
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.intersects(*b), "rectangles overlap: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn rejects_non_rectilinear() {
        let tri = poly(&[(0.0, 0.0), (4.0, 0.0), (2.0, 3.0)]);
        assert!(matches!(
            decompose_rectilinear(&tri),
            Err(GeomError::NotRectilinear)
        ));
    }

    #[test]
    fn square_is_one_rect() {
        let sq = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let rects = decompose_rectilinear(&sq).unwrap();
        assert_eq!(rects.len(), 1);
        assert_eq!(rects[0].area(), 100.0);
    }

    #[test]
    fn l_shape_two_rects() {
        let l = poly(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 5.0),
            (5.0, 5.0),
            (5.0, 10.0),
            (0.0, 10.0),
        ]);
        let rects = decompose_rectilinear(&l).unwrap();
        assert_eq!(rects.len(), 2);
        assert!((total_area(&rects) - l.area()).abs() < 1e-9);
        assert_no_overlap(&rects);
    }

    #[test]
    fn u_shape_three_rects() {
        // A U: 12 wide, 8 tall, with a 4-wide notch cut from the top middle.
        let u = poly(&[
            (0.0, 0.0),
            (12.0, 0.0),
            (12.0, 8.0),
            (8.0, 8.0),
            (8.0, 3.0),
            (4.0, 3.0),
            (4.0, 8.0),
            (0.0, 8.0),
        ]);
        let rects = decompose_rectilinear(&u).unwrap();
        assert!((total_area(&rects) - u.area()).abs() < 1e-9);
        assert_no_overlap(&rects);
        // One bottom slab + two arms.
        assert_eq!(rects.len(), 3);
    }

    #[test]
    fn plus_shape_covers_area() {
        // A plus sign: central 4x4 with 4x2 arms.
        let plus = poly(&[
            (4.0, 0.0),
            (8.0, 0.0),
            (8.0, 4.0),
            (12.0, 4.0),
            (12.0, 8.0),
            (8.0, 8.0),
            (8.0, 12.0),
            (4.0, 12.0),
            (4.0, 8.0),
            (0.0, 8.0),
            (0.0, 4.0),
            (4.0, 4.0),
        ]);
        let rects = decompose_rectilinear(&plus).unwrap();
        assert!((total_area(&rects) - plus.area()).abs() < 1e-9);
        assert_no_overlap(&rects);
        // Every rect centre must be inside the polygon.
        for r in &rects {
            assert!(plus.contains(r.center()));
        }
    }

    #[test]
    fn interior_points_are_covered() {
        let l = poly(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 5.0),
            (5.0, 5.0),
            (5.0, 10.0),
            (0.0, 10.0),
        ]);
        let rects = decompose_rectilinear(&l).unwrap();
        // Sample grid of interior points: covered iff inside the polygon.
        for ix in 0..20 {
            for iy in 0..20 {
                let p = Point::new(0.25 + f64::from(ix) * 0.5, 0.25 + f64::from(iy) * 0.5);
                let in_poly = l.contains(p);
                let in_rects = rects.iter().any(|r| r.contains(p));
                assert_eq!(in_poly, in_rects, "mismatch at {p}");
            }
        }
    }
}
