//! Geodesic (shortest-path) distances inside a simple polygon.
//!
//! Straight-line distance between two doors of a partition underestimates the
//! walk when the partition is non-convex (an L-shaped hallway, say). This
//! module computes the exact interior shortest path via the classic
//! visibility-graph construction: nodes are the two query points plus the
//! polygon's reflex-relevant vertices; edges join mutually visible nodes;
//! Dijkstra gives the geodesic.
//!
//! Two entry points are provided:
//!
//! * [`geodesic_distance`] — the one-shot pairwise query. It rebuilds the
//!   vertex visibility graph from scratch on every call, which is fine for a
//!   single lookup but quadratically wasteful when a caller needs distances
//!   between many points of the *same* polygon (a venue builder computing a
//!   full door-to-door matrix, say).
//! * [`GeodesicSolver`] — the amortised form. It computes the vertex-vertex
//!   visibility graph once (lazily, on the first query that needs it) and
//!   answers any number of pairwise ([`GeodesicSolver::distance`]) or
//!   one-to-many ([`GeodesicSolver::distances_from`]) queries against it. A
//!   one-to-many call runs a single Dijkstra over the cached graph and reads
//!   off every target, so an all-pairs matrix over `k` points costs `k`
//!   Dijkstras instead of `k²/2` graph constructions.
//!
//! Both forms produce identical distances (the solver replays the same
//! candidate sums, and `min` over the same set of `f64`s is order
//! independent); `tests/proptest_geom.rs` pins that equivalence on random
//! L- and U-shaped polygons.
//!
//! Sizes are small (partitions have a handful of vertices), so the O(n³)
//! visibility graph is perfectly adequate and keeps the code auditable.

use std::cell::OnceCell;

use crate::{Point, Polygon, EPS};

/// Whether the open segment `a`–`b` stays strictly inside `poly` (endpoints
/// may lie on the boundary).
#[must_use]
pub fn segment_inside(poly: &Polygon, a: Point, b: Point) -> bool {
    if a.distance(b) <= EPS {
        return poly.contains(a);
    }
    let verts = poly.vertices();
    let n = verts.len();
    // Any proper crossing with a polygon edge disqualifies the segment.
    for i in 0..n {
        let c = verts[i];
        let d = verts[(i + 1) % n];
        if segments_properly_cross(a, b, c, d) {
            return false;
        }
    }
    // No proper crossing: the segment lies fully inside or fully outside
    // (possibly running along the boundary). Check interior points; sampling
    // several guards against touching the boundary at a vertex.
    for t in [0.5, 0.25, 0.75, 0.125, 0.875] {
        let m = a.lerp(b, t);
        if !poly.contains(m) {
            return false;
        }
    }
    true
}

/// Proper crossing test: the open segments intersect in exactly one interior
/// point (shared endpoints and collinear overlaps do not count).
fn segments_properly_cross(a: Point, b: Point, c: Point, d: Point) -> bool {
    let d1 = (b - a).cross(c - a);
    let d2 = (b - a).cross(d - a);
    let d3 = (d - c).cross(a - c);
    let d4 = (d - c).cross(b - c);
    d1 * d2 < -EPS && d3 * d4 < -EPS
}

/// The geodesic distance from `a` to `b` inside `poly`, or `None` when either
/// endpoint lies outside the polygon.
///
/// Convex polygons short-circuit to the Euclidean distance.
#[must_use]
pub fn geodesic_distance(poly: &Polygon, a: Point, b: Point) -> Option<f64> {
    if !poly.contains(a) || !poly.contains(b) {
        return None;
    }
    if poly.is_convex() || segment_inside(poly, a, b) {
        return Some(a.distance(b));
    }

    // Visibility graph over {a, b} ∪ vertices.
    let mut nodes: Vec<Point> = vec![a, b];
    nodes.extend_from_slice(poly.vertices());
    let n = nodes.len();
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if segment_inside(poly, nodes[i], nodes[j]) {
                let w = nodes[i].distance(nodes[j]);
                adj[i].push((j, w));
                adj[j].push((i, w));
            }
        }
    }

    // Dijkstra from node 0 (a) to node 1 (b).
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[0] = 0.0;
    for _ in 0..n {
        let mut u = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, &d) in dist.iter().enumerate() {
            if !done[i] && d < best {
                best = d;
                u = i;
            }
        }
        if u == usize::MAX {
            break;
        }
        if u == 1 {
            return Some(dist[1]);
        }
        done[u] = true;
        for &(v, w) in &adj[u] {
            if dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
            }
        }
    }
    dist[1].is_finite().then_some(dist[1])
}

/// Reusable geodesic oracle for one polygon: the vertex-vertex visibility
/// graph is built once and shared by every subsequent query.
///
/// Use this instead of [`geodesic_distance`] whenever more than a couple of
/// distances are needed within the same polygon. The solver is cheap to
/// create (the visibility graph is built lazily, so convex polygons and
/// purely-visible query sets never pay for it) and immutable once built, but
/// not `Sync` — create one per thread when fanning out.
///
/// # Example
///
/// ```
/// use indoor_geom::{GeodesicSolver, Point, Polygon};
///
/// // 10×10 square minus its top-right 5×5 quadrant.
/// let l = Polygon::new(vec![
///     Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(10.0, 5.0),
///     Point::new(5.0, 5.0), Point::new(5.0, 10.0), Point::new(0.0, 10.0),
/// ]).unwrap();
/// let solver = GeodesicSolver::new(&l);
/// let doors = [Point::new(2.5, 9.0), Point::new(9.0, 2.5), Point::new(1.0, 1.0)];
/// let from_first = solver.distances_from(doors[0], &doors[1..]);
/// assert_eq!(from_first.len(), 2);
/// for (i, d) in from_first.iter().enumerate() {
///     assert_eq!(*d, indoor_geom::geodesic_distance(&l, doors[0], doors[i + 1]));
/// }
/// ```
#[derive(Debug)]
pub struct GeodesicSolver<'a> {
    poly: &'a Polygon,
    convex: bool,
    /// Vertex-vertex visibility adjacency `(vertex index, distance)`, built on
    /// the first query that actually needs a Dijkstra.
    vis: OnceCell<Vec<Vec<(usize, f64)>>>,
}

impl<'a> GeodesicSolver<'a> {
    /// Creates a solver for `poly`. No visibility work happens yet.
    #[must_use]
    pub fn new(poly: &'a Polygon) -> Self {
        GeodesicSolver {
            poly,
            convex: poly.is_convex(),
            vis: OnceCell::new(),
        }
    }

    /// The polygon this solver answers queries for.
    #[must_use]
    pub fn polygon(&self) -> &Polygon {
        self.poly
    }

    /// The cached vertex-vertex visibility adjacency.
    fn vertex_graph(&self) -> &Vec<Vec<(usize, f64)>> {
        self.vis.get_or_init(|| {
            let verts = self.poly.vertices();
            let n = verts.len();
            let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if segment_inside(self.poly, verts[i], verts[j]) {
                        let w = verts[i].distance(verts[j]);
                        adj[i].push((j, w));
                        adj[j].push((i, w));
                    }
                }
            }
            adj
        })
    }

    /// Shortest distances from `source` to every polygon vertex, travelling
    /// only inside the polygon. `dist[i]` is the geodesic distance to vertex
    /// `i` (infinite when unreachable, which cannot happen for interior
    /// sources of a simple polygon but is handled defensively).
    fn vertex_distances(&self, source: Point) -> Vec<f64> {
        let verts = self.poly.vertices();
        let n = verts.len();
        let adj = self.vertex_graph();
        // Node 0 is the source; nodes 1..=n are the vertices.
        let mut dist = vec![f64::INFINITY; n + 1];
        let mut done = vec![false; n + 1];
        dist[0] = 0.0;
        // Source → vertex edges, computed fresh per query (vertex indices).
        let mut src_edges: Vec<(usize, f64)> = Vec::new();
        for (i, &v) in verts.iter().enumerate() {
            if segment_inside(self.poly, source, v) {
                src_edges.push((i, source.distance(v)));
            }
        }
        for _ in 0..=n {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for (i, &d) in dist.iter().enumerate() {
                if !done[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == usize::MAX {
                break;
            }
            done[u] = true;
            let edges: &[(usize, f64)] = if u == 0 { &src_edges } else { &adj[u - 1] };
            for &(v, w) in edges {
                if dist[u] + w < dist[v + 1] {
                    dist[v + 1] = dist[u] + w;
                }
            }
        }
        dist.remove(0);
        dist
    }

    /// The geodesic distance from `a` to `b`, or `None` when either endpoint
    /// lies outside the polygon. Produces the same values as
    /// [`geodesic_distance`] while reusing the cached visibility graph.
    #[must_use]
    pub fn distance(&self, a: Point, b: Point) -> Option<f64> {
        self.distances_from(a, std::slice::from_ref(&b)).remove(0)
    }

    /// One-to-many query: geodesic distances from `source` to each target
    /// (`None` where the source or that target lies outside the polygon).
    ///
    /// Runs at most one Dijkstra regardless of the number of targets:
    /// mutually visible pairs short-circuit to the Euclidean distance, and the
    /// remaining targets are read off the single source-to-vertices distance
    /// field.
    #[must_use]
    pub fn distances_from(&self, source: Point, targets: &[Point]) -> Vec<Option<f64>> {
        if !self.poly.contains(source) {
            return vec![None; targets.len()];
        }
        let verts = self.poly.vertices();
        let mut from_source: Option<Vec<f64>> = None;
        targets
            .iter()
            .map(|&b| {
                if !self.poly.contains(b) {
                    return None;
                }
                if self.convex || segment_inside(self.poly, source, b) {
                    return Some(source.distance(b));
                }
                let dist = from_source.get_or_insert_with(|| self.vertex_distances(source));
                // The geodesic bends only at polygon vertices, so the answer
                // is the best "source field + last hop" combination over the
                // vertices visible from the target.
                let mut best = f64::INFINITY;
                for (i, &v) in verts.iter().enumerate() {
                    if dist[i].is_finite() && segment_inside(self.poly, v, b) {
                        let cand = dist[i] + v.distance(b);
                        if cand < best {
                            best = cand;
                        }
                    }
                }
                best.is_finite().then_some(best)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn l_shape() -> Polygon {
        // 10×10 square minus its top-right 5×5 quadrant.
        poly(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 5.0),
            (5.0, 5.0),
            (5.0, 10.0),
            (0.0, 10.0),
        ])
    }

    #[test]
    fn convex_polygon_is_euclidean() {
        let sq = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let d = geodesic_distance(&sq, Point::new(1.0, 1.0), Point::new(9.0, 9.0)).unwrap();
        assert!((d - (128.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn l_shape_goes_around_the_corner() {
        let l = l_shape();
        // From the top arm to the right arm: the straight line cuts through
        // the removed quadrant; the geodesic bends at the reflex corner (5,5).
        let a = Point::new(2.5, 9.0);
        let b = Point::new(9.0, 2.5);
        let direct = a.distance(b);
        let d = geodesic_distance(&l, a, b).unwrap();
        let via_corner = a.distance(Point::new(5.0, 5.0)) + Point::new(5.0, 5.0).distance(b);
        assert!(d > direct + 0.1, "must exceed the blocked straight line");
        assert!(
            (d - via_corner).abs() < 1e-9,
            "bends exactly at the reflex corner"
        );
    }

    #[test]
    fn same_arm_stays_euclidean() {
        let l = l_shape();
        let a = Point::new(1.0, 1.0);
        let b = Point::new(9.0, 1.0);
        assert!((geodesic_distance(&l, a, b).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn outside_points_rejected() {
        let l = l_shape();
        assert!(geodesic_distance(&l, Point::new(8.0, 8.0), Point::new(1.0, 1.0)).is_none());
        assert!(geodesic_distance(&l, Point::new(1.0, 1.0), Point::new(11.0, 1.0)).is_none());
    }

    #[test]
    fn boundary_endpoints_work() {
        // Door positions sit on partition boundaries: (0,5) and (10,0).
        let l = l_shape();
        let d = geodesic_distance(&l, Point::new(0.0, 10.0), Point::new(10.0, 0.0)).unwrap();
        let via = Point::new(0.0, 10.0).distance(Point::new(5.0, 5.0))
            + Point::new(5.0, 5.0).distance(Point::new(10.0, 0.0));
        // The straight corner-to-corner line passes exactly through (5,5);
        // both routes coincide here.
        assert!((d - via).abs() < 1e-6);
    }

    #[test]
    fn u_shape_deep_detour() {
        // U-shape: wall between the arms forces a long detour.
        let u = poly(&[
            (0.0, 0.0),
            (12.0, 0.0),
            (12.0, 10.0),
            (8.0, 10.0),
            (8.0, 2.0),
            (4.0, 2.0),
            (4.0, 10.0),
            (0.0, 10.0),
        ]);
        let a = Point::new(2.0, 9.0);
        let b = Point::new(10.0, 9.0);
        let d = geodesic_distance(&u, a, b).unwrap();
        // Must descend below y = 2 and come back up: at least 2·7 m of
        // vertical travel plus 8 m across.
        assert!(d > 18.0, "geodesic {d} suspiciously short");
        assert!(d < 25.0, "geodesic {d} suspiciously long");
    }

    #[test]
    fn solver_matches_pairwise_on_l_shape() {
        let l = l_shape();
        let solver = GeodesicSolver::new(&l);
        let pts = [
            Point::new(2.5, 9.0),
            Point::new(9.0, 2.5),
            Point::new(1.0, 1.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 0.0),
            Point::new(8.0, 8.0), // outside: the removed quadrant
        ];
        for &a in &pts {
            let many = solver.distances_from(a, &pts);
            assert_eq!(many.len(), pts.len());
            for (i, &b) in pts.iter().enumerate() {
                let pairwise = geodesic_distance(&l, a, b);
                assert_eq!(solver.distance(a, b), pairwise, "{a} → {b}");
                assert_eq!(many[i], pairwise, "{a} → {b} (one-to-many)");
            }
        }
    }

    #[test]
    fn solver_matches_pairwise_on_u_shape() {
        let u = poly(&[
            (0.0, 0.0),
            (12.0, 0.0),
            (12.0, 10.0),
            (8.0, 10.0),
            (8.0, 2.0),
            (4.0, 2.0),
            (4.0, 10.0),
            (0.0, 10.0),
        ]);
        let solver = GeodesicSolver::new(&u);
        let pts = [
            Point::new(2.0, 9.0),
            Point::new(10.0, 9.0),
            Point::new(6.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        for &a in &pts {
            let many = solver.distances_from(a, &pts);
            for (i, &b) in pts.iter().enumerate() {
                assert_eq!(many[i], geodesic_distance(&u, a, b), "{a} → {b}");
            }
        }
    }

    #[test]
    fn solver_convex_never_builds_a_graph() {
        let sq = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let solver = GeodesicSolver::new(&sq);
        let d = solver
            .distance(Point::new(1.0, 1.0), Point::new(9.0, 9.0))
            .unwrap();
        assert!((d - (128.0f64).sqrt()).abs() < 1e-9);
        assert!(solver.vis.get().is_none(), "convex queries stay graph-free");
    }

    #[test]
    fn solver_rejects_outside_source() {
        let l = l_shape();
        let solver = GeodesicSolver::new(&l);
        let out = solver.distances_from(
            Point::new(8.0, 8.0),
            &[Point::new(1.0, 1.0), Point::new(2.0, 2.0)],
        );
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn segment_inside_basics() {
        let l = l_shape();
        assert!(segment_inside(
            &l,
            Point::new(1.0, 1.0),
            Point::new(9.0, 1.0)
        ));
        assert!(!segment_inside(
            &l,
            Point::new(2.5, 9.0),
            Point::new(9.0, 2.5)
        ));
        // Degenerate segment.
        assert!(segment_inside(
            &l,
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0)
        ));
    }
}
