//! Geodesic (shortest-path) distances inside a simple polygon.
//!
//! Straight-line distance between two doors of a partition underestimates the
//! walk when the partition is non-convex (an L-shaped hallway, say). This
//! module computes the exact interior shortest path via the classic
//! visibility-graph construction: nodes are the two query points plus the
//! polygon's reflex-relevant vertices; edges join mutually visible nodes;
//! Dijkstra gives the geodesic.
//!
//! Sizes are small (partitions have a handful of vertices), so the O(n³)
//! visibility graph is perfectly adequate and keeps the code auditable.

use crate::{Point, Polygon, EPS};

/// Whether the open segment `a`–`b` stays strictly inside `poly` (endpoints
/// may lie on the boundary).
#[must_use]
pub fn segment_inside(poly: &Polygon, a: Point, b: Point) -> bool {
    if a.distance(b) <= EPS {
        return poly.contains(a);
    }
    let verts = poly.vertices();
    let n = verts.len();
    // Any proper crossing with a polygon edge disqualifies the segment.
    for i in 0..n {
        let c = verts[i];
        let d = verts[(i + 1) % n];
        if segments_properly_cross(a, b, c, d) {
            return false;
        }
    }
    // No proper crossing: the segment lies fully inside or fully outside
    // (possibly running along the boundary). Check interior points; sampling
    // several guards against touching the boundary at a vertex.
    for t in [0.5, 0.25, 0.75, 0.125, 0.875] {
        let m = a.lerp(b, t);
        if !poly.contains(m) {
            return false;
        }
    }
    true
}

/// Proper crossing test: the open segments intersect in exactly one interior
/// point (shared endpoints and collinear overlaps do not count).
fn segments_properly_cross(a: Point, b: Point, c: Point, d: Point) -> bool {
    let d1 = (b - a).cross(c - a);
    let d2 = (b - a).cross(d - a);
    let d3 = (d - c).cross(a - c);
    let d4 = (d - c).cross(b - c);
    d1 * d2 < -EPS && d3 * d4 < -EPS
}

/// The geodesic distance from `a` to `b` inside `poly`, or `None` when either
/// endpoint lies outside the polygon.
///
/// Convex polygons short-circuit to the Euclidean distance.
#[must_use]
pub fn geodesic_distance(poly: &Polygon, a: Point, b: Point) -> Option<f64> {
    if !poly.contains(a) || !poly.contains(b) {
        return None;
    }
    if poly.is_convex() || segment_inside(poly, a, b) {
        return Some(a.distance(b));
    }

    // Visibility graph over {a, b} ∪ vertices.
    let mut nodes: Vec<Point> = vec![a, b];
    nodes.extend_from_slice(poly.vertices());
    let n = nodes.len();
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if segment_inside(poly, nodes[i], nodes[j]) {
                let w = nodes[i].distance(nodes[j]);
                adj[i].push((j, w));
                adj[j].push((i, w));
            }
        }
    }

    // Dijkstra from node 0 (a) to node 1 (b).
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[0] = 0.0;
    for _ in 0..n {
        let mut u = usize::MAX;
        let mut best = f64::INFINITY;
        for (i, &d) in dist.iter().enumerate() {
            if !done[i] && d < best {
                best = d;
                u = i;
            }
        }
        if u == usize::MAX {
            break;
        }
        if u == 1 {
            return Some(dist[1]);
        }
        done[u] = true;
        for &(v, w) in &adj[u] {
            if dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
            }
        }
    }
    dist[1].is_finite().then_some(dist[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(pts: &[(f64, f64)]) -> Polygon {
        Polygon::new(pts.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn l_shape() -> Polygon {
        // 10×10 square minus its top-right 5×5 quadrant.
        poly(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 5.0),
            (5.0, 5.0),
            (5.0, 10.0),
            (0.0, 10.0),
        ])
    }

    #[test]
    fn convex_polygon_is_euclidean() {
        let sq = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let d = geodesic_distance(&sq, Point::new(1.0, 1.0), Point::new(9.0, 9.0)).unwrap();
        assert!((d - (128.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn l_shape_goes_around_the_corner() {
        let l = l_shape();
        // From the top arm to the right arm: the straight line cuts through
        // the removed quadrant; the geodesic bends at the reflex corner (5,5).
        let a = Point::new(2.5, 9.0);
        let b = Point::new(9.0, 2.5);
        let direct = a.distance(b);
        let d = geodesic_distance(&l, a, b).unwrap();
        let via_corner = a.distance(Point::new(5.0, 5.0)) + Point::new(5.0, 5.0).distance(b);
        assert!(d > direct + 0.1, "must exceed the blocked straight line");
        assert!(
            (d - via_corner).abs() < 1e-9,
            "bends exactly at the reflex corner"
        );
    }

    #[test]
    fn same_arm_stays_euclidean() {
        let l = l_shape();
        let a = Point::new(1.0, 1.0);
        let b = Point::new(9.0, 1.0);
        assert!((geodesic_distance(&l, a, b).unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn outside_points_rejected() {
        let l = l_shape();
        assert!(geodesic_distance(&l, Point::new(8.0, 8.0), Point::new(1.0, 1.0)).is_none());
        assert!(geodesic_distance(&l, Point::new(1.0, 1.0), Point::new(11.0, 1.0)).is_none());
    }

    #[test]
    fn boundary_endpoints_work() {
        // Door positions sit on partition boundaries: (0,5) and (10,0).
        let l = l_shape();
        let d = geodesic_distance(&l, Point::new(0.0, 10.0), Point::new(10.0, 0.0)).unwrap();
        let via = Point::new(0.0, 10.0).distance(Point::new(5.0, 5.0))
            + Point::new(5.0, 5.0).distance(Point::new(10.0, 0.0));
        // The straight corner-to-corner line passes exactly through (5,5);
        // both routes coincide here.
        assert!((d - via).abs() < 1e-6);
    }

    #[test]
    fn u_shape_deep_detour() {
        // U-shape: wall between the arms forces a long detour.
        let u = poly(&[
            (0.0, 0.0),
            (12.0, 0.0),
            (12.0, 10.0),
            (8.0, 10.0),
            (8.0, 2.0),
            (4.0, 2.0),
            (4.0, 10.0),
            (0.0, 10.0),
        ]);
        let a = Point::new(2.0, 9.0);
        let b = Point::new(10.0, 9.0);
        let d = geodesic_distance(&u, a, b).unwrap();
        // Must descend below y = 2 and come back up: at least 2·7 m of
        // vertical travel plus 8 m across.
        assert!(d > 18.0, "geodesic {d} suspiciously short");
        assert!(d < 25.0, "geodesic {d} suspiciously long");
    }

    #[test]
    fn segment_inside_basics() {
        let l = l_shape();
        assert!(segment_inside(
            &l,
            Point::new(1.0, 1.0),
            Point::new(9.0, 1.0)
        ));
        assert!(!segment_inside(
            &l,
            Point::new(2.5, 9.0),
            Point::new(9.0, 2.5)
        ));
        // Degenerate segment.
        assert!(segment_inside(
            &l,
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0)
        ));
    }
}
