//! Error type for geometric constructions.

use std::fmt;

use crate::Point;

/// Errors raised by geometric constructors and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A rectangle with non-positive extent or non-finite corners.
    DegenerateRect {
        /// Requested min corner.
        min: Point,
        /// Requested max corner.
        max: Point,
    },
    /// A polygon with fewer than three vertices.
    TooFewVertices(usize),
    /// A polygon whose ring encloses no area.
    ZeroAreaPolygon,
    /// An operation that requires a rectilinear polygon received a general one.
    NotRectilinear,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::DegenerateRect { min, max } => {
                write!(f, "degenerate rectangle: min {min}, max {max}")
            }
            GeomError::TooFewVertices(n) => {
                write!(f, "polygon needs at least 3 vertices, got {n}")
            }
            GeomError::ZeroAreaPolygon => write!(f, "polygon encloses no area"),
            GeomError::NotRectilinear => {
                write!(f, "operation requires a rectilinear polygon")
            }
        }
    }
}

impl std::error::Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = GeomError::DegenerateRect {
            min: Point::new(0.0, 0.0),
            max: Point::new(0.0, 1.0),
        };
        assert!(e.to_string().contains("degenerate"));
        assert!(GeomError::TooFewVertices(2).to_string().contains('2'));
        assert!(GeomError::NotRectilinear
            .to_string()
            .contains("rectilinear"));
    }
}
