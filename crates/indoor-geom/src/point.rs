//! Planar points and vectors.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A point in a per-floor local frame, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

/// A displacement between two [`Point`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vector {
    /// X component in metres.
    pub x: f64,
    /// Y component in metres.
    pub y: f64,
}

impl Point {
    /// The origin of the local frame.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance (avoids the square root for comparisons).
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// The midpoint between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl Vector {
    /// Creates a vector.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    #[must_use]
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }
}

impl Sub for Point {
    type Output = Vector;

    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;

    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Add for Vector {
    type Output = Vector;

    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;

    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(2.5, 5.0));
    }

    #[test]
    fn vector_algebra() {
        let v = Point::new(4.0, 6.0) - Point::new(1.0, 2.0);
        assert_eq!(v, Vector::new(3.0, 4.0));
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.dot(Vector::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vector::new(1.0, 0.0)), -4.0);
        assert_eq!(Point::new(1.0, 2.0) + v, Point::new(4.0, 6.0));
        assert_eq!((-v).length(), 5.0);
        assert_eq!((v * 2.0).length(), 10.0);
        assert_eq!((v + v).length(), 10.0);
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.00, 2.50)");
    }
}
