//! Simple polygons.

use serde::{Deserialize, Serialize};

use crate::{GeomError, Point, EPS};

/// A simple polygon described by its vertex ring (either orientation; no
/// repeated closing vertex).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<Point>", into = "Vec<Point>")]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from at least three vertices with non-zero area.
    ///
    /// # Errors
    /// Returns [`GeomError::TooFewVertices`] for fewer than three vertices and
    /// [`GeomError::ZeroAreaPolygon`] when the ring is degenerate.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::TooFewVertices(vertices.len()));
        }
        let poly = Polygon { vertices };
        if poly.area() <= EPS {
            return Err(GeomError::ZeroAreaPolygon);
        }
        Ok(poly)
    }

    /// The vertex ring.
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Signed area: positive for counter-clockwise rings.
    #[must_use]
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        acc / 2.0
    }

    /// Absolute area in square metres.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// The area centroid.
    #[must_use]
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let a = self.signed_area();
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Point-in-polygon test (even-odd rule); boundary points count as inside.
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // Boundary check: p on segment ab.
            let ab = b - a;
            let ap = p - a;
            if ab.cross(ap).abs() <= EPS && ap.dot(ab) >= -EPS && (p - b).dot(-ab) >= -EPS {
                return true;
            }
            // Ray casting to +x.
            if (a.y > p.y) != (b.y > p.y) {
                let x_int = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if x_int > p.x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Whether every edge is axis-parallel (the input class accepted by
    /// [`crate::decompose_rectilinear`]).
    #[must_use]
    pub fn is_rectilinear(&self) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            (a.x - b.x).abs() <= EPS || (a.y - b.y).abs() <= EPS
        })
    }

    /// Whether the polygon is convex (either orientation).
    #[must_use]
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        let mut sign: Option<f64> = None;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let cross = (b - a).cross(c - b);
            if cross.abs() <= EPS {
                continue;
            }
            match sign {
                None => sign = Some(cross.signum()),
                Some(s) if cross.signum() != s => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// The axis-aligned bounding box as `(min, max)` corners.
    #[must_use]
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices[1..] {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }
}

impl TryFrom<Vec<Point>> for Polygon {
    type Error = GeomError;

    fn try_from(v: Vec<Point>) -> Result<Self, GeomError> {
        Polygon::new(v)
    }
}

impl From<Polygon> for Vec<Point> {
    fn from(p: Polygon) -> Vec<Point> {
        p.vertices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap()
    }

    fn l_shape() -> Polygon {
        // An L: 10x10 square minus its top-right 5x5 quadrant.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).is_err());
        assert!(Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0)
        ])
        .is_err()); // collinear
    }

    #[test]
    fn area_and_centroid() {
        assert_eq!(square().area(), 100.0);
        assert_eq!(square().centroid(), Point::new(5.0, 5.0));
        assert_eq!(l_shape().area(), 75.0);
        // Clockwise ring has the same absolute area.
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        assert!(cw.signed_area() < 0.0);
        assert_eq!(cw.area(), 100.0);
        assert_eq!(cw.centroid(), Point::new(5.0, 5.0));
    }

    #[test]
    fn containment() {
        let l = l_shape();
        assert!(l.contains(Point::new(2.0, 2.0)));
        assert!(l.contains(Point::new(2.0, 8.0)));
        assert!(!l.contains(Point::new(8.0, 8.0))); // removed quadrant
        assert!(l.contains(Point::new(0.0, 0.0))); // corner
        assert!(l.contains(Point::new(5.0, 7.0))); // boundary edge
        assert!(!l.contains(Point::new(-0.1, 5.0)));
    }

    #[test]
    fn shape_predicates() {
        assert!(square().is_rectilinear());
        assert!(square().is_convex());
        assert!(l_shape().is_rectilinear());
        assert!(!l_shape().is_convex());
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        ])
        .unwrap();
        assert!(!tri.is_rectilinear());
        assert!(tri.is_convex());
    }

    #[test]
    fn bounding_box() {
        let (min, max) = l_shape().bounding_box();
        assert_eq!(min, Point::new(0.0, 0.0));
        assert_eq!(max, Point::new(10.0, 10.0));
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&l_shape()).unwrap();
        let back: Polygon = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l_shape());
    }
}
