//! Property-based tests for the geometry substrate.

use indoor_geom::{
    decompose_rectilinear, geodesic_distance, GeodesicSolver, Point, Polygon, Rect, Segment,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -500.0f64..500.0,
        -500.0f64..500.0,
        0.5f64..200.0,
        0.5f64..200.0,
    )
        .prop_map(|(x, y, w, h)| Rect::with_size(Point::new(x, y), w, h))
}

/// A random rectilinear "staircase" polygon: monotone steps up then a closing
/// rectangle back, guaranteed simple.
fn arb_staircase() -> impl Strategy<Value = Polygon> {
    prop::collection::vec((1.0f64..30.0, 1.0f64..30.0), 1..6).prop_map(|steps| {
        let mut verts = vec![Point::new(0.0, 0.0)];
        let mut x = 0.0;
        let mut y = 0.0;
        for (dx, dy) in &steps {
            x += dx;
            verts.push(Point::new(x, y));
            y += dy;
            verts.push(Point::new(x, y));
        }
        verts.push(Point::new(0.0, y));
        Polygon::new(verts).expect("staircase is simple with positive area")
    })
}

/// A random L-shaped polygon: a `w × h` rectangle minus its top-right
/// `nw × nh` corner (the notch stays strictly inside the rectangle).
fn arb_l_shape() -> impl Strategy<Value = Polygon> {
    (20.0f64..100.0, 20.0f64..100.0, 0.2f64..0.8, 0.2f64..0.8).prop_map(|(w, h, fx, fy)| {
        let (nw, nh) = (w * fx, h * fy);
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(w, 0.0),
            Point::new(w, h - nh),
            Point::new(w - nw, h - nh),
            Point::new(w - nw, h),
            Point::new(0.0, h),
        ])
        .expect("L-shape is simple")
    })
}

/// A random U-shaped polygon: a `w × h` rectangle with a slot of width
/// `sw` cut downward from the top edge to depth `sd`.
fn arb_u_shape() -> impl Strategy<Value = Polygon> {
    (30.0f64..120.0, 20.0f64..80.0, 0.2f64..0.5, 0.3f64..0.9).prop_map(|(w, h, fw, fd)| {
        let sw = w * fw;
        let sd = h * fd;
        let sx0 = (w - sw) / 2.0;
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(w, 0.0),
            Point::new(w, h),
            Point::new(sx0 + sw, h),
            Point::new(sx0 + sw, h - sd),
            Point::new(sx0, h - sd),
            Point::new(sx0, h),
            Point::new(0.0, h),
        ])
        .expect("U-shape is simple")
    })
}

/// Random points, some inside the polygon's bounding box (hence a mix of
/// interior and exterior samples).
fn arb_probes(n: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.01f64..0.99, 0.01f64..0.99), 2..n)
}

fn solver_parity(poly: &Polygon, probes: &[(f64, f64)]) -> Result<(), TestCaseError> {
    let (min, max) = poly.bounding_box();
    let pts: Vec<Point> = probes
        .iter()
        .map(|&(fx, fy)| Point::new(min.x + fx * (max.x - min.x), min.y + fy * (max.y - min.y)))
        .collect();
    let solver = GeodesicSolver::new(poly);
    for &a in &pts {
        let many = solver.distances_from(a, &pts);
        for (i, &b) in pts.iter().enumerate() {
            let pairwise = geodesic_distance(poly, a, b);
            prop_assert_eq!(
                many[i],
                pairwise,
                "solver disagrees with pairwise for {} → {}",
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    /// The amortised solver returns exactly the distances of the pairwise
    /// oracle on random L-shaped polygons (identical `f64`s, not just close).
    #[test]
    fn solver_matches_pairwise_on_l_shapes(poly in arb_l_shape(), probes in arb_probes(8)) {
        solver_parity(&poly, &probes)?;
    }

    /// Same parity on random U-shaped polygons, whose slot forces true
    /// multi-bend geodesics between the two arms.
    #[test]
    fn solver_matches_pairwise_on_u_shapes(poly in arb_u_shape(), probes in arb_probes(8)) {
        solver_parity(&poly, &probes)?;
    }

    /// Distance is a metric (symmetry + triangle inequality + identity).
    #[test]
    fn distance_is_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        prop_assert_eq!(a.distance(a), 0.0);
    }

    /// Closest point on a segment is never farther than either endpoint.
    #[test]
    fn segment_projection_dominates_endpoints(a in arb_point(), b in arb_point(), p in arb_point()) {
        let s = Segment::new(a, b);
        let d = s.distance_to_point(p);
        prop_assert!(d <= p.distance(a) + 1e-9);
        prop_assert!(d <= p.distance(b) + 1e-9);
        prop_assert!(s.length() >= 0.0);
    }

    /// Rect centre is always contained; area is width*height.
    #[test]
    fn rect_invariants(r in arb_rect()) {
        prop_assert!(r.contains(r.center()));
        prop_assert!((r.area() - r.width() * r.height()).abs() < 1e-9);
        let poly = r.to_polygon();
        prop_assert!((poly.area() - r.area()).abs() < 1e-6);
        prop_assert!(poly.is_rectilinear());
        prop_assert!(poly.is_convex());
    }

    /// Shared edges are symmetric and lie on both rectangles' boundaries.
    #[test]
    fn shared_edge_symmetry(r in arb_rect(), dy in -50.0f64..50.0, w in 0.5f64..100.0) {
        // A neighbour glued to the right edge of r with vertical offset dy.
        let nb = Rect::with_size(Point::new(r.max().x, r.min().y + dy), w, r.height());
        let e1 = r.shared_edge(nb);
        let e2 = nb.shared_edge(r);
        prop_assert_eq!(e1.is_some(), e2.is_some());
        if let (Some(e1), Some(e2)) = (e1, e2) {
            prop_assert!((e1.length() - e2.length()).abs() < 1e-9);
            let m = e1.midpoint();
            prop_assert!(r.contains(m) && nb.contains(m));
        }
    }

    /// Rectilinear decomposition covers exactly the polygon area with
    /// non-overlapping rectangles.
    #[test]
    fn decomposition_preserves_area(poly in arb_staircase()) {
        let rects = decompose_rectilinear(&poly).unwrap();
        let total: f64 = rects.iter().map(|r| r.area()).sum();
        prop_assert!((total - poly.area()).abs() < 1e-6,
            "area mismatch: rects {} vs polygon {}", total, poly.area());
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                prop_assert!(!a.intersects(*b));
            }
            prop_assert!(poly.contains(a.center()));
        }
    }

    /// Polygon containment agrees between a rect and its polygon form.
    #[test]
    fn rect_polygon_containment_agrees(r in arb_rect(), p in arb_point()) {
        let poly = r.to_polygon();
        // Interior points (strictly) must agree; boundary tolerance may differ.
        let strictly_inside = r.min().x + 1e-6 < p.x && p.x < r.max().x - 1e-6
            && r.min().y + 1e-6 < p.y && p.y < r.max().y - 1e-6;
        if strictly_inside {
            prop_assert!(poly.contains(p));
            prop_assert!(r.contains(p));
        }
        let clearly_outside = p.x < r.min().x - 1e-6 || p.x > r.max().x + 1e-6
            || p.y < r.min().y - 1e-6 || p.y > r.max().y + 1e-6;
        if clearly_outside {
            prop_assert!(!poly.contains(p));
            prop_assert!(!r.contains(p));
        }
    }
}
