//! Error type for venue construction and validation.

use std::fmt;

use crate::{DoorId, PartitionId};

/// Errors raised while building or validating an [`crate::IndoorSpace`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// A referenced partition id does not exist.
    UnknownPartition(PartitionId),
    /// A referenced door id does not exist.
    UnknownDoor(DoorId),
    /// A door was connected to more than two distinct partitions.
    TooManySides(DoorId),
    /// A door was never connected to any partition.
    DanglingDoor(DoorId),
    /// A door was connected twice to the same partition pair.
    DuplicateConnection(DoorId),
    /// A door connection references the same partition on both sides.
    SelfLoop(DoorId, PartitionId),
    /// A computed or supplied distance is negative or non-finite.
    InvalidDistance {
        /// First door of the offending pair.
        a: DoorId,
        /// Second door of the offending pair.
        b: DoorId,
        /// Offending value.
        value: f64,
    },
    /// An explicit distance override paired a door with itself. The diagonal
    /// of every distance matrix is fixed at zero, so such an override would be
    /// silently ignored by construction — reject it loudly instead.
    SelfDistance {
        /// The partition whose matrix the override targeted.
        partition: PartitionId,
        /// The door paired with itself.
        door: DoorId,
    },
    /// An explicit distance references a door that is not on the partition.
    ForeignDoor {
        /// The partition whose matrix was being built.
        partition: PartitionId,
        /// The door that does not belong to it.
        door: DoorId,
    },
    /// The venue has no partitions at all.
    EmptyVenue,
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            SpaceError::UnknownDoor(d) => write!(f, "unknown door {d}"),
            SpaceError::TooManySides(d) => {
                write!(f, "door {d} connects more than two partitions")
            }
            SpaceError::DanglingDoor(d) => {
                write!(f, "door {d} is not connected to any partition")
            }
            SpaceError::DuplicateConnection(d) => {
                write!(f, "door {d} was connected more than once")
            }
            SpaceError::SelfLoop(d, p) => {
                write!(f, "door {d} connects partition {p} to itself")
            }
            SpaceError::InvalidDistance { a, b, value } => {
                write!(f, "invalid distance {value} between {a} and {b}")
            }
            SpaceError::SelfDistance { partition, door } => {
                write!(
                    f,
                    "distance override pairs door {door} with itself in partition {partition} \
                     (the matrix diagonal is fixed at zero)"
                )
            }
            SpaceError::ForeignDoor { partition, door } => {
                write!(f, "door {door} does not belong to partition {partition}")
            }
            SpaceError::EmptyVenue => write!(f, "venue has no partitions"),
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(SpaceError::UnknownDoor(DoorId(4))
            .to_string()
            .contains("d4"));
        assert!(SpaceError::SelfLoop(DoorId(1), PartitionId(2))
            .to_string()
            .contains("itself"));
        assert!(SpaceError::ForeignDoor {
            partition: PartitionId(3),
            door: DoorId(9)
        }
        .to_string()
        .contains("belong"));
        assert!(SpaceError::SelfDistance {
            partition: PartitionId(1),
            door: DoorId(2)
        }
        .to_string()
        .contains("itself"));
    }
}
