//! Indoor points: query endpoints located inside a partition.

use indoor_geom::Point;
use serde::{Deserialize, Serialize};

use crate::PartitionId;

/// A point inside a specific partition — the `ps` / `pt` of a query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndoorPoint {
    /// The covering partition `P(p)`.
    pub partition: PartitionId,
    /// Position in the floor's local frame.
    pub position: Point,
}

impl IndoorPoint {
    /// Creates an indoor point.
    #[must_use]
    pub fn new(partition: PartitionId, position: Point) -> Self {
        IndoorPoint {
            partition,
            position,
        }
    }
}

impl std::fmt::Display for IndoorPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.partition, self.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let p = IndoorPoint::new(PartitionId(3), Point::new(1.0, 2.0));
        assert_eq!(p.to_string(), "v3@(1.00, 2.00)");
    }
}
