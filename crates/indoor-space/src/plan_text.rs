//! A human-writable text format for indoor floor plans.
//!
//! JSON round-trips venues exactly but is unpleasant to author by hand. The
//! *plan text* format lets venue operators describe a floor plan in a few
//! lines — the quickstart venue looks like this:
//!
//! ```text
//! # office floor
//! partition room_a   public
//! partition hallway  public
//! partition archive  private
//!
//! door a public  7:00-20:00            @ 0,0   room_a <> hallway
//! door b public  7:00-20:00            @ 10,0  hallway <> room_b
//! door c private 9:00-17:00            @ 5,-4  hallway <> archive
//! door e public  always                @ 2,8   hallway <> out      # out = outdoors
//! door x public  never                 @ 9,9   archive |           # boundary door
//! door g public  0:00-6:00, 6:30-23:00 @ 1,1   room_a -> hallway   # one-way, two ATIs
//!
//! distance hallway a b 12.5            # explicit DM override
//! ```
//!
//! Grammar (one directive per line; `#` starts a comment):
//!
//! * `partition NAME public|private|outdoor [floor N] [polygon x,y x,y …]`
//! * `door NAME public|private ATIS @ X,Y[,FLOOR] A <> B | A -> B | A |`
//!   where `ATIS` is `always`, `never` or a comma-separated list of
//!   `H:MM-H:MM` intervals, and the tail picks two-way, one-way or boundary
//!   connection (`out` names the implicit outdoor partition);
//! * `distance PARTITION DOOR DOOR METRES`
//!
//! Names are case-sensitive identifiers without whitespace or `#`. [`parse`]
//! produces a validated [`IndoorSpace`]; [`to_plan_text`] writes one back
//! (polygons included, explicit overrides folded into geometry are not
//! recoverable and are re-emitted as `distance` lines only when they differ
//! from geometry).

use std::collections::HashMap;
use std::fmt::Write as _;

use indoor_geom::{Point, Polygon};
use indoor_time::{AtiList, Interval, TimeOfDay};

use crate::{
    Connection, DoorKind, FloorId, IndoorSpace, PartitionId, PartitionKind, SpaceError,
    VenueBuilder,
};

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// 1-based line of the offending directive (0 for builder-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanError {}

fn err(line: usize, message: impl Into<String>) -> PlanError {
    PlanError {
        line,
        message: message.into(),
    }
}

impl From<SpaceError> for PlanError {
    fn from(e: SpaceError) -> Self {
        err(0, e.to_string())
    }
}

/// Parses plan text into a validated venue.
///
/// # Errors
/// Returns the first syntax or validation error with its line number.
#[allow(clippy::too_many_lines)]
pub fn parse(text: &str) -> Result<IndoorSpace, PlanError> {
    let mut b = VenueBuilder::new();
    let mut partitions: HashMap<String, PartitionId> = HashMap::new();
    let mut doors: HashMap<String, crate::DoorId> = HashMap::new();
    let mut outdoor: Option<PartitionId> = None;

    // Two passes so doors may reference partitions declared later.
    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = strip_comment(raw);
        let mut words = line.split_whitespace();
        let Some(head) = words.next() else { continue };
        if head != "partition" {
            continue;
        }
        let name = words
            .next()
            .ok_or_else(|| err(line_no, "partition needs a name"))?;
        if partitions.contains_key(name) {
            return Err(err(line_no, format!("duplicate partition `{name}`")));
        }
        let kind = match words.next() {
            Some("public") => PartitionKind::Public,
            Some("private") => PartitionKind::Private,
            Some("outdoor") => PartitionKind::Outdoor,
            other => {
                return Err(err(
                    line_no,
                    format!("expected public|private|outdoor, got {other:?}"),
                ))
            }
        };
        let rest: Vec<&str> = words.collect();
        let mut floor = FloorId(0);
        let mut poly_words: &[&str] = &[];
        match rest.first() {
            Some(&"floor") => {
                let n = rest
                    .get(1)
                    .ok_or_else(|| err(line_no, "floor needs a number"))?;
                floor = FloorId(n.parse().map_err(|_| err(line_no, "bad floor number"))?);
                if rest.get(2) == Some(&"polygon") {
                    poly_words = &rest[3..];
                }
            }
            Some(&"polygon") => poly_words = &rest[1..],
            Some(w) => return Err(err(line_no, format!("unexpected `{w}`"))),
            None => {}
        }
        let polygon = if poly_words.is_empty() {
            None
        } else {
            let pts = poly_words
                .iter()
                .map(|w| parse_xy(w).ok_or_else(|| err(line_no, format!("bad vertex `{w}`"))))
                .collect::<Result<Vec<Point>, _>>()?;
            Some(Polygon::new(pts).map_err(|e| err(line_no, e.to_string()))?)
        };
        let id = b.add_partition_on(name, kind, floor, polygon);
        partitions.insert(name.to_owned(), id);
        if kind == PartitionKind::Outdoor && outdoor.is_none() {
            outdoor = Some(id);
        }
    }

    let mut lookup = |b: &mut VenueBuilder,
                      partitions: &mut HashMap<String, PartitionId>,
                      name: &str|
     -> PartitionId {
        if name == "out" {
            *outdoor.get_or_insert_with(|| {
                let id = b.add_partition_on("out", PartitionKind::Outdoor, FloorId(0), None);
                partitions.insert("out".into(), id);
                id
            })
        } else {
            partitions[name]
        }
    };

    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = strip_comment(raw);
        let mut words = line.split_whitespace().peekable();
        let Some(head) = words.next() else { continue };
        match head {
            "partition" => {} // first pass
            "door" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, "door needs a name"))?
                    .to_owned();
                if doors.contains_key(&name) {
                    return Err(err(line_no, format!("duplicate door `{name}`")));
                }
                let kind = match words.next() {
                    Some("public") => DoorKind::Public,
                    Some("private") => DoorKind::Private,
                    other => {
                        return Err(err(
                            line_no,
                            format!("expected public|private, got {other:?}"),
                        ))
                    }
                };
                // ATIs: tokens until `@`.
                let mut ati_text = String::new();
                for w in words.by_ref() {
                    if w == "@" {
                        break;
                    }
                    ati_text.push_str(w);
                }
                let atis = parse_atis(&ati_text).map_err(|m| err(line_no, m))?;
                let pos_word = words
                    .next()
                    .ok_or_else(|| err(line_no, "door needs `@ X,Y` position"))?;
                let (pos, floor) =
                    parse_position(pos_word).ok_or_else(|| err(line_no, "bad position"))?;
                // Connection: `A <> B`, `A -> B` or `A |`.
                let a = words
                    .next()
                    .ok_or_else(|| err(line_no, "door needs a connection"))?;
                let op = words
                    .next()
                    .ok_or_else(|| err(line_no, "door needs `<>`, `->` or `|`"))?;
                fn check(
                    partitions: &HashMap<String, PartitionId>,
                    line_no: usize,
                    n: &str,
                ) -> Result<(), PlanError> {
                    if n != "out" && !partitions.contains_key(n) {
                        return Err(err(line_no, format!("unknown partition `{n}`")));
                    }
                    Ok(())
                }
                check(&partitions, line_no, a)?;
                let pa = lookup(&mut b, &mut partitions, a);
                let conn = match op {
                    "|" => Connection::Boundary(pa),
                    "<>" | "->" => {
                        let bb = words
                            .next()
                            .ok_or_else(|| err(line_no, "missing second partition"))?;
                        check(&partitions, line_no, bb)?;
                        let pb = lookup(&mut b, &mut partitions, bb);
                        if op == "<>" {
                            Connection::TwoWay(pa, pb)
                        } else {
                            Connection::OneWay { from: pa, to: pb }
                        }
                    }
                    other => return Err(err(line_no, format!("bad connector `{other}`"))),
                };
                let id = b.add_door_on(&name, kind, atis, pos, floor);
                b.connect(id, conn)
                    .map_err(|e| err(line_no, e.to_string()))?;
                doors.insert(name, id);
            }
            "distance" => {
                let p = words
                    .next()
                    .ok_or_else(|| err(line_no, "distance needs a partition"))?;
                let d1 = words
                    .next()
                    .ok_or_else(|| err(line_no, "distance needs two doors"))?;
                let d2 = words
                    .next()
                    .ok_or_else(|| err(line_no, "distance needs two doors"))?;
                let m: f64 = words
                    .next()
                    .ok_or_else(|| err(line_no, "distance needs metres"))?
                    .parse()
                    .map_err(|_| err(line_no, "bad metres value"))?;
                let pid = *partitions
                    .get(p)
                    .ok_or_else(|| err(line_no, format!("unknown partition `{p}`")))?;
                let a = *doors
                    .get(d1)
                    .ok_or_else(|| err(line_no, format!("unknown door `{d1}`")))?;
                let bb = *doors
                    .get(d2)
                    .ok_or_else(|| err(line_no, format!("unknown door `{d2}`")))?;
                b.set_distance(pid, a, bb, m)
                    .map_err(|e| err(line_no, e.to_string()))?;
            }
            other => return Err(err(line_no, format!("unknown directive `{other}`"))),
        }
    }

    b.build().map_err(PlanError::from)
}

/// Serialises a venue to plan text (connections are reconstructed from the
/// directional topology; explicit overrides are re-emitted when they differ
/// from door-position geometry).
#[must_use]
pub fn to_plan_text(space: &IndoorSpace) -> String {
    let mut out = String::from("# itspq plan text\n");
    for p in space.partitions() {
        let kind = match p.kind {
            PartitionKind::Public => "public",
            PartitionKind::Private => "private",
            PartitionKind::Outdoor => "outdoor",
        };
        let _ = write!(
            out,
            "partition {} {kind} floor {}",
            sanitize(&p.name),
            p.floor.0
        );
        if let Some(poly) = &p.polygon {
            let _ = write!(out, " polygon");
            for v in poly.vertices() {
                let _ = write!(out, " {},{}", v.x, v.y);
            }
        }
        out.push('\n');
    }
    for d in space.doors() {
        let kind = match d.kind {
            DoorKind::Public => "public",
            DoorKind::Private => "private",
        };
        let atis = atis_text(&d.atis);
        let leaves = space.d2p_leaveable(d.id);
        let enters = space.d2p_enterable(d.id);
        let conn = if leaves.len() == 1 && enters.len() == 1 && leaves[0] != enters[0] {
            format!(
                "{} -> {}",
                sanitize(&space.partition(leaves[0]).name),
                sanitize(&space.partition(enters[0]).name)
            )
        } else if leaves.len() == 2 {
            format!(
                "{} <> {}",
                sanitize(&space.partition(leaves[0]).name),
                sanitize(&space.partition(leaves[1]).name)
            )
        } else {
            format!("{} |", sanitize(&space.partition(leaves[0]).name))
        };
        let _ = writeln!(
            out,
            "door {} {kind} {atis} @ {},{},{} {conn}",
            sanitize(&d.name),
            d.position.x,
            d.position.y,
            d.floor.0
        );
    }
    // Explicit distances that differ from raw geometry.
    for p in space.partitions() {
        let dm = space.distance_matrix(p.id);
        let doors = dm.doors();
        for (i, &a) in doors.iter().enumerate() {
            for &bb in &doors[i + 1..] {
                // `doors()` enumerates exactly this matrix's keys.
                // itspq-lint: allow(no-panic-in-lib, "a and bb come from dm.doors(), so the entry exists")
                let stored = dm.distance(a, bb).expect("doors of this matrix");
                let geo = space.door(a).position.distance(space.door(bb).position);
                if (stored - geo).abs() > 1e-9 {
                    let _ = writeln!(
                        out,
                        "distance {} {} {} {}",
                        sanitize(&p.name),
                        sanitize(&space.door(a).name),
                        sanitize(&space.door(bb).name),
                        stored
                    );
                }
            }
        }
    }
    out
}

fn sanitize(name: &str) -> String {
    // Names must survive tokenisation: no whitespace, and `#` would start a
    // comment.
    name.chars()
        .map(|c| {
            if c.is_whitespace() || c == '#' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn strip_comment(line: &str) -> &str {
    line.split('#').next().unwrap_or("")
}

fn parse_xy(w: &str) -> Option<Point> {
    let (x, y) = w.split_once(',')?;
    Some(Point::new(x.parse().ok()?, y.parse().ok()?))
}

/// `X,Y` or `X,Y,FLOOR`.
fn parse_position(w: &str) -> Option<(Point, FloorId)> {
    let parts: Vec<&str> = w.split(',').collect();
    match parts.as_slice() {
        [x, y] => Some((Point::new(x.parse().ok()?, y.parse().ok()?), FloorId(0))),
        [x, y, f] => Some((
            Point::new(x.parse().ok()?, y.parse().ok()?),
            FloorId(f.parse().ok()?),
        )),
        _ => None,
    }
}

fn parse_hm(s: &str) -> Result<TimeOfDay, String> {
    let (h, m) = s.split_once(':').ok_or_else(|| format!("bad time `{s}`"))?;
    let h: u32 = h.parse().map_err(|_| format!("bad hour in `{s}`"))?;
    let m: u32 = m.parse().map_err(|_| format!("bad minute in `{s}`"))?;
    if h > 24 || m > 59 || (h == 24 && m != 0) {
        return Err(format!("time out of range `{s}`"));
    }
    Ok(TimeOfDay::hm(h, m))
}

fn parse_atis(text: &str) -> Result<AtiList, String> {
    match text {
        "" => Err("missing ATIs (use `always`, `never` or intervals)".into()),
        "always" => Ok(AtiList::always_open()),
        "never" => Ok(AtiList::never_open()),
        _ => {
            let mut intervals = Vec::new();
            for part in text.split(',').filter(|p| !p.is_empty()) {
                let (a, b) = part
                    .split_once('-')
                    .ok_or_else(|| format!("bad interval `{part}` (expected H:MM-H:MM)"))?;
                let interval = Interval::new(parse_hm(a)?, parse_hm(b)?)
                    .map_err(|e| format!("bad interval `{part}`: {e}"))?;
                intervals.push(interval);
            }
            AtiList::from_intervals(intervals).map_err(|e| e.to_string())
        }
    }
}

fn atis_text(atis: &AtiList) -> String {
    if atis.is_always_open() {
        return "always".into();
    }
    if atis.is_never_open() {
        return "never".into();
    }
    atis.intervals()
        .iter()
        .map(|iv| {
            let fmt = |t: TimeOfDay| {
                let s = t.seconds().round() as u64;
                format!("{}:{:02}", s / 3600, (s % 3600) / 60)
            };
            format!("{}-{}", fmt(iv.start()), fmt(iv.end()))
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# tiny office
partition room_a  public
partition hallway public polygon 0,0 20,0 20,10 0,10
partition archive private floor 0

door a public 7:00-20:00 @ 0,0 room_a <> hallway
door c private 9:00-17:00 @ 5,-4 hallway <> archive
door e public always @ 2,8 hallway -> out
door x public never @ 9,9 archive |
door g public 0:00-6:00,6:30-23:00 @ 1,1 room_a -> hallway

distance hallway a c 12.5
";

    #[test]
    fn parses_the_sample() {
        let space = parse(SAMPLE).unwrap();
        assert_eq!(space.num_partitions(), 4); // + implicit `out`
        assert_eq!(space.num_doors(), 5);
        let stats = space.stats();
        assert_eq!(stats.outdoor_partitions, 1);
        assert_eq!(stats.private_doors, 1);
        // ATIs parsed correctly.
        let g = space.doors().iter().find(|d| d.name == "g").unwrap();
        assert!(g.atis.is_open(TimeOfDay::hm(5, 0)));
        assert!(!g.atis.is_open(TimeOfDay::hm(6, 15)));
        assert!(g.atis.is_open(TimeOfDay::hm(12, 0)));
        // Directionality.
        let e = space.doors().iter().find(|d| d.name == "e").unwrap();
        assert_eq!(space.d2p_leaveable(e.id).len(), 1);
        assert_eq!(space.d2p_enterable(e.id).len(), 1);
        // Explicit distance override.
        let hallway = space
            .partitions()
            .iter()
            .find(|p| p.name == "hallway")
            .unwrap();
        let a = space.doors().iter().find(|d| d.name == "a").unwrap();
        let c = space.doors().iter().find(|d| d.name == "c").unwrap();
        assert_eq!(space.door_to_door(hallway.id, a.id, c.id), Some(12.5));
        // Polygon attached.
        assert!(hallway.polygon.is_some());
    }

    #[test]
    fn round_trips_through_plan_text() {
        let space = parse(SAMPLE).unwrap();
        let text = to_plan_text(&space);
        let again = parse(&text).unwrap();
        // Identical structure (names, kinds, topology, DMs, ATIs).
        assert_eq!(space.num_partitions(), again.num_partitions());
        assert_eq!(space.num_doors(), again.num_doors());
        for (p, q) in space.partitions().iter().zip(again.partitions()) {
            assert_eq!(p.kind, q.kind);
            assert_eq!(space.p2d(p.id), again.p2d(q.id));
            assert_eq!(space.distance_matrix(p.id), again.distance_matrix(q.id));
        }
        for (d, e) in space.doors().iter().zip(again.doors()) {
            assert_eq!(d.atis, e.atis);
            assert_eq!(d.kind, e.kind);
            assert_eq!(space.d2p_leaveable(d.id), again.d2p_leaveable(e.id));
            assert_eq!(space.d2p_enterable(d.id), again.d2p_enterable(e.id));
        }
    }

    #[test]
    fn paper_example_round_trips() {
        let ex = crate::paper_example::build();
        let text = to_plan_text(&ex.space);
        let again = parse(&text).unwrap();
        assert_eq!(ex.space.num_partitions(), again.num_partitions());
        assert_eq!(ex.space.num_doors(), again.num_doors());
        // The crucial v16 DM example survives.
        let v16 = again.partitions().iter().find(|p| p.name == "v16").unwrap();
        let d3 = again.doors().iter().find(|d| d.name == "d3").unwrap();
        let d17 = again.doors().iter().find(|d| d.name == "d17").unwrap();
        assert_eq!(again.door_to_door(v16.id, d3.id, d17.id), Some(2.0));
        // d3 stays one-way.
        assert_eq!(again.d2p_leaveable(d3.id).len(), 1);
        assert_eq!(again.d2p_enterable(d3.id).len(), 1);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let bad = "partition a public\nbogus directive\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let bad = "door d public always @ 0,0 nowhere <> elsewhere\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown partition"));

        let bad = "partition a public\npartition a private\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));

        let bad = "partition a public\ndoor d public 25:00-26:00 @ 0,0 a |\n";
        let e = parse(bad).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# nothing\n   \npartition solo public\ndoor d public always @ 1,2 solo |\n";
        let space = parse(text).unwrap();
        assert_eq!(space.num_partitions(), 1);
        assert_eq!(space.num_doors(), 1);
    }
}
