//! Indoor space model for temporal-variation aware routing.
//!
//! This crate models an indoor venue the way the ITSPQ paper (Liu et al.,
//! ICDE 2020) does:
//!
//! * **Partitions** ([`PartitionRecord`]) — rooms, hallway cells, staircases;
//!   each is public (`PBP`), private (`PRP`) or outdoor, and may carry a floor
//!   and a polygon footprint;
//! * **Doors** ([`DoorRecord`]) — public (`PBD`) or private (`PRD`), each with
//!   a position and the door's [`indoor_time::AtiList`] (its open intervals);
//! * **Topology** — door directionality and the accessibility mappings of
//!   Lu et al. (ICDE 2012) used throughout the paper:
//!   [`IndoorSpace::p2d`] (`P2D`), [`IndoorSpace::d2p`] (`D2P`),
//!   [`IndoorSpace::p2d_enterable`] (`P2D⊲`), [`IndoorSpace::p2d_leaveable`]
//!   (`P2D⊳`), [`IndoorSpace::d2p_enterable`] (`D2P⊲`) and
//!   [`IndoorSpace::d2p_leaveable`] (`D2P⊳`);
//! * **Distance matrices** ([`DistanceMatrix`]) — intra-partition door-to-door
//!   distances, derived from geometry or supplied explicitly;
//! * **[`VenueBuilder`]** — the validated construction path for venues;
//! * **[`audit`]** — structural health checks (unreachable partitions,
//!   never-open doors, triangle violations) for venue operators;
//! * **[`plan_text`]** — a human-writable text format for floor plans with a
//!   line-numbered parser and serialiser;
//! * **[`paper_example::build`]** — the running example of the paper
//!   (Figure 1 floor plan + Table I ATIs + query points p1–p4).
//!
//! The [`IndoorSpace`] produced here is the input to `itspq-core`'s IT-Graph.

#![forbid(unsafe_code)]

pub mod audit;
mod builder;
mod distance_matrix;
mod door;
mod error;
mod ids;
pub mod paper_example;
mod partition;
pub mod plan_text;
mod point;
mod stats;
mod venue;

pub use builder::{Connection, DistanceModel, VenueBuilder};
pub use distance_matrix::DistanceMatrix;
pub use door::{DoorKind, DoorRecord};
pub use error::SpaceError;
pub use ids::{DoorId, FloorId, PartitionId};
pub use partition::{PartitionKind, PartitionRecord};
pub use point::IndoorPoint;
pub use stats::SpaceStats;
pub use venue::IndoorSpace;
