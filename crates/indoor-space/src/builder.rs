//! Validated construction of indoor spaces.

use std::collections::HashMap;

use indoor_geom::{geodesic_distance, Point, Polygon};
use indoor_time::{AtiList, CheckpointSet};

use crate::{
    venue::Topology, DistanceMatrix, DoorId, DoorKind, DoorRecord, FloorId, IndoorSpace,
    PartitionId, PartitionKind, PartitionRecord, SpaceError,
};

/// How intra-partition door-to-door distances are derived when no explicit
/// override is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceModel {
    /// Straight-line distance between door positions. Exact for convex
    /// partitions (the output of the paper's hallway decomposition).
    #[default]
    Euclidean,
    /// Interior shortest-path distance within the partition's polygon
    /// ([`indoor_geom::geodesic_distance`]); falls back to Euclidean for
    /// partitions without a polygon or when a door lies outside it. Use for
    /// venues whose partitions are kept non-convex.
    Geodesic,
}

/// How a door connects partitions, including the paper's door directionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connection {
    /// A regular door: both partitions can be left and entered through it.
    TwoWay(PartitionId, PartitionId),
    /// A directional door: usable only from `from` into `to` (e.g. the paper's
    /// d3, an exit-only door from v3 into v16).
    OneWay {
        /// Partition one can leave through the door.
        from: PartitionId,
        /// Partition one can enter through the door.
        to: PartitionId,
    },
    /// A door on the venue boundary with a single modelled side (e.g. a roof
    /// access). It can be used to leave and re-enter that partition.
    Boundary(PartitionId),
}

impl Connection {
    fn partitions(self) -> (PartitionId, Option<PartitionId>) {
        match self {
            Connection::TwoWay(a, b) => (a, Some(b)),
            Connection::OneWay { from, to } => (from, Some(to)),
            Connection::Boundary(p) => (p, None),
        }
    }
}

/// Builder for [`IndoorSpace`]: add partitions and doors, connect them,
/// optionally override intra-partition distances, then [`VenueBuilder::build`].
///
/// # Example
///
/// ```
/// use indoor_geom::Point;
/// use indoor_space::{Connection, DoorKind, PartitionKind, VenueBuilder};
/// use indoor_time::AtiList;
///
/// let mut b = VenueBuilder::new();
/// let room = b.add_partition("room", PartitionKind::Public);
/// let hall = b.add_partition("hall", PartitionKind::Public);
/// let door = b.add_door("door", DoorKind::Public, AtiList::hm(&[((8, 0), (18, 0))]),
///                       Point::new(5.0, 0.0));
/// b.connect(door, Connection::TwoWay(room, hall)).unwrap();
/// let space = b.build().unwrap();
/// assert_eq!(space.num_partitions(), 2);
/// assert_eq!(space.d2p(door), vec![room, hall]);
/// ```
#[derive(Debug, Default)]
pub struct VenueBuilder {
    partitions: Vec<PartitionRecord>,
    doors: Vec<DoorRecord>,
    connections: Vec<Option<Connection>>,
    explicit: HashMap<(PartitionId, DoorId, DoorId), f64>,
    distance_model: DistanceModel,
}

impl VenueBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects how distance matrices are derived (default
    /// [`DistanceModel::Euclidean`]).
    pub fn distance_model(&mut self, model: DistanceModel) -> &mut Self {
        self.distance_model = model;
        self
    }

    /// Adds a partition on floor 0 without footprint.
    pub fn add_partition(&mut self, name: &str, kind: PartitionKind) -> PartitionId {
        self.add_partition_on(name, kind, FloorId(0), None)
    }

    /// Adds a partition with floor and optional polygon footprint.
    pub fn add_partition_on(
        &mut self,
        name: &str,
        kind: PartitionKind,
        floor: FloorId,
        polygon: Option<Polygon>,
    ) -> PartitionId {
        let id = PartitionId::from_index(self.partitions.len());
        self.partitions.push(PartitionRecord {
            id,
            name: name.to_owned(),
            kind,
            floor,
            polygon,
        });
        id
    }

    /// Adds a door on floor 0.
    pub fn add_door(
        &mut self,
        name: &str,
        kind: DoorKind,
        atis: AtiList,
        position: Point,
    ) -> DoorId {
        self.add_door_on(name, kind, atis, position, FloorId(0))
    }

    /// Adds a door with an explicit floor.
    pub fn add_door_on(
        &mut self,
        name: &str,
        kind: DoorKind,
        atis: AtiList,
        position: Point,
        floor: FloorId,
    ) -> DoorId {
        let id = DoorId::from_index(self.doors.len());
        self.doors.push(DoorRecord {
            id,
            name: name.to_owned(),
            kind,
            atis,
            position,
            floor,
        });
        self.connections.push(None);
        id
    }

    /// Connects a door to its partition(s).
    ///
    /// # Errors
    /// Rejects unknown ids, self-loops and doors connected twice.
    pub fn connect(&mut self, door: DoorId, conn: Connection) -> Result<(), SpaceError> {
        let slot = self
            .connections
            .get_mut(door.index())
            .ok_or(SpaceError::UnknownDoor(door))?;
        if slot.is_some() {
            return Err(SpaceError::DuplicateConnection(door));
        }
        let (a, b) = conn.partitions();
        let n = self.partitions.len();
        if a.index() >= n {
            return Err(SpaceError::UnknownPartition(a));
        }
        if let Some(b) = b {
            if b.index() >= n {
                return Err(SpaceError::UnknownPartition(b));
            }
            if a == b {
                return Err(SpaceError::SelfLoop(door, a));
            }
        }
        *slot = Some(conn);
        Ok(())
    }

    /// Overrides the intra-partition distance between two doors of
    /// `partition` (used where geometry would misestimate, e.g. the 20 m
    /// stairways of the paper's multi-floor venue). Applied symmetrically.
    ///
    /// # Errors
    /// Rejects unknown ids and invalid distances; door membership is verified
    /// at [`VenueBuilder::build`] time.
    pub fn set_distance(
        &mut self,
        partition: PartitionId,
        a: DoorId,
        b: DoorId,
        dist: f64,
    ) -> Result<(), SpaceError> {
        if partition.index() >= self.partitions.len() {
            return Err(SpaceError::UnknownPartition(partition));
        }
        if a.index() >= self.doors.len() {
            return Err(SpaceError::UnknownDoor(a));
        }
        if b.index() >= self.doors.len() {
            return Err(SpaceError::UnknownDoor(b));
        }
        if !dist.is_finite() || dist < 0.0 {
            return Err(SpaceError::InvalidDistance { a, b, value: dist });
        }
        let key = if a <= b {
            (partition, a, b)
        } else {
            (partition, b, a)
        };
        self.explicit.insert(key, dist);
        Ok(())
    }

    /// Validates the venue and derives topology mappings, distance matrices
    /// and the checkpoint set.
    ///
    /// # Errors
    /// Returns the first validation failure (dangling doors, foreign doors in
    /// explicit distances, empty venue …).
    pub fn build(self) -> Result<IndoorSpace, SpaceError> {
        if self.partitions.is_empty() {
            return Err(SpaceError::EmptyVenue);
        }
        let n_doors = self.doors.len();
        let n_parts = self.partitions.len();

        let mut door_leaves: Vec<Vec<PartitionId>> = vec![Vec::new(); n_doors];
        let mut door_enters: Vec<Vec<PartitionId>> = vec![Vec::new(); n_doors];
        for (i, conn) in self.connections.iter().enumerate() {
            let door = DoorId::from_index(i);
            let conn = conn.ok_or(SpaceError::DanglingDoor(door))?;
            match conn {
                Connection::TwoWay(a, b) => {
                    door_leaves[i] = vec![a, b];
                    door_enters[i] = vec![a, b];
                }
                Connection::OneWay { from, to } => {
                    door_leaves[i] = vec![from];
                    door_enters[i] = vec![to];
                }
                Connection::Boundary(p) => {
                    door_leaves[i] = vec![p];
                    door_enters[i] = vec![p];
                }
            }
        }

        let mut part_doors: Vec<Vec<DoorId>> = vec![Vec::new(); n_parts];
        let mut part_leaveable: Vec<Vec<DoorId>> = vec![Vec::new(); n_parts];
        let mut part_enterable: Vec<Vec<DoorId>> = vec![Vec::new(); n_parts];
        for i in 0..n_doors {
            let door = DoorId::from_index(i);
            let mut seen = Vec::new();
            for &p in door_leaves[i].iter().chain(door_enters[i].iter()) {
                if !seen.contains(&p) {
                    seen.push(p);
                    part_doors[p.index()].push(door);
                }
            }
            for &p in &door_leaves[i] {
                part_leaveable[p.index()].push(door);
            }
            for &p in &door_enters[i] {
                part_enterable[p.index()].push(door);
            }
        }
        for v in part_doors
            .iter_mut()
            .chain(part_leaveable.iter_mut())
            .chain(part_enterable.iter_mut())
        {
            v.sort_unstable();
            v.dedup();
        }

        // Validate explicit distances against door membership.
        for &(partition, a, b) in self.explicit.keys() {
            let doors = &part_doors[partition.index()];
            if !doors.contains(&a) {
                return Err(SpaceError::ForeignDoor { partition, door: a });
            }
            if !doors.contains(&b) {
                return Err(SpaceError::ForeignDoor { partition, door: b });
            }
        }

        // Distance matrices: explicit override, else the distance model.
        let mut dms = Vec::with_capacity(n_parts);
        for (pi, doors) in part_doors.iter().enumerate() {
            let partition = PartitionId::from_index(pi);
            let polygon = self.partitions[pi].polygon.as_ref();
            let dm = DistanceMatrix::build(doors.clone(), |a, b| {
                let key = if a <= b {
                    (partition, a, b)
                } else {
                    (partition, b, a)
                };
                if let Some(&d) = self.explicit.get(&key) {
                    return d;
                }
                let pa = self.doors[a.index()].position;
                let pb = self.doors[b.index()].position;
                if self.distance_model == DistanceModel::Geodesic {
                    if let Some(poly) = polygon {
                        if let Some(d) = geodesic_distance(poly, pa, pb) {
                            return d;
                        }
                    }
                }
                pa.distance(pb)
            })?;
            dms.push(dm);
        }

        let checkpoints = CheckpointSet::from_atis(self.doors.iter().map(|d| &d.atis));

        Ok(IndoorSpace::from_parts(
            self.partitions,
            self.doors,
            Topology {
                door_leaves,
                door_enters,
                part_doors,
                part_leaveable,
                part_enterable,
            },
            dms,
            checkpoints,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_room_builder() -> (VenueBuilder, PartitionId, PartitionId, DoorId) {
        let mut b = VenueBuilder::new();
        let p0 = b.add_partition("room", PartitionKind::Public);
        let p1 = b.add_partition("hall", PartitionKind::Public);
        let d = b.add_door(
            "door",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        (b, p0, p1, d)
    }

    #[test]
    fn empty_venue_rejected() {
        assert_eq!(
            VenueBuilder::new().build().unwrap_err(),
            SpaceError::EmptyVenue
        );
    }

    #[test]
    fn dangling_door_rejected() {
        let (b, _, _, d) = two_room_builder();
        assert_eq!(b.build().unwrap_err(), SpaceError::DanglingDoor(d));
    }

    #[test]
    fn duplicate_connection_rejected() {
        let (mut b, p0, p1, d) = two_room_builder();
        b.connect(d, Connection::TwoWay(p0, p1)).unwrap();
        assert_eq!(
            b.connect(d, Connection::TwoWay(p1, p0)).unwrap_err(),
            SpaceError::DuplicateConnection(d)
        );
    }

    #[test]
    fn self_loop_rejected() {
        let (mut b, p0, _, d) = two_room_builder();
        assert_eq!(
            b.connect(d, Connection::TwoWay(p0, p0)).unwrap_err(),
            SpaceError::SelfLoop(d, p0)
        );
    }

    #[test]
    fn unknown_ids_rejected() {
        let (mut b, p0, _, d) = two_room_builder();
        assert!(matches!(
            b.connect(d, Connection::TwoWay(p0, PartitionId(99))),
            Err(SpaceError::UnknownPartition(_))
        ));
        assert!(matches!(
            b.connect(DoorId(42), Connection::Boundary(p0)),
            Err(SpaceError::UnknownDoor(_))
        ));
        assert!(matches!(
            b.set_distance(PartitionId(99), d, d, 1.0),
            Err(SpaceError::UnknownPartition(_))
        ));
        assert!(matches!(
            b.set_distance(p0, DoorId(42), d, 1.0),
            Err(SpaceError::UnknownDoor(_))
        ));
    }

    #[test]
    fn invalid_explicit_distance_rejected() {
        let (mut b, p0, _, d) = two_room_builder();
        assert!(matches!(
            b.set_distance(p0, d, d, -2.0),
            Err(SpaceError::InvalidDistance { .. })
        ));
        assert!(b.set_distance(p0, d, d, f64::NAN).is_err());
    }

    #[test]
    fn foreign_door_in_explicit_distance_rejected() {
        let mut b = VenueBuilder::new();
        let p0 = b.add_partition("a", PartitionKind::Public);
        let p1 = b.add_partition("b", PartitionKind::Public);
        let p2 = b.add_partition("c", PartitionKind::Public);
        let d0 = b.add_door(
            "d0",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        let d1 = b.add_door(
            "d1",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        b.connect(d0, Connection::TwoWay(p0, p1)).unwrap();
        b.connect(d1, Connection::TwoWay(p1, p2)).unwrap();
        // d0 is not a door of p2.
        b.set_distance(p2, d0, d1, 3.0).unwrap();
        assert!(matches!(b.build(), Err(SpaceError::ForeignDoor { .. })));
    }

    #[test]
    fn one_way_directionality() {
        let mut b = VenueBuilder::new();
        let v3 = b.add_partition("v3", PartitionKind::Public);
        let v16 = b.add_partition("v16", PartitionKind::Public);
        let d3 = b.add_door(
            "d3",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        b.connect(d3, Connection::OneWay { from: v3, to: v16 })
            .unwrap();
        let s = b.build().unwrap();
        // The paper's example: D2P⊳(d3) = v3, D2P⊲(d3) = v16.
        assert_eq!(s.d2p_leaveable(d3), &[v3]);
        assert_eq!(s.d2p_enterable(d3), &[v16]);
        assert_eq!(s.d2p(d3), vec![v3, v16]);
        assert_eq!(s.p2d_leaveable(v3), &[d3]);
        assert!(s.p2d_enterable(v3).is_empty());
        assert_eq!(s.p2d_enterable(v16), &[d3]);
        assert!(s.p2d_leaveable(v16).is_empty());
    }

    #[test]
    fn boundary_door_has_single_side() {
        let mut b = VenueBuilder::new();
        let p = b.add_partition("lobby", PartitionKind::Public);
        let d = b.add_door(
            "roof",
            DoorKind::Private,
            AtiList::never_open(),
            Point::ORIGIN,
        );
        b.connect(d, Connection::Boundary(p)).unwrap();
        let s = b.build().unwrap();
        assert_eq!(s.d2p(d), vec![p]);
        assert_eq!(s.d2p_enterable(d), &[p]);
    }

    #[test]
    fn geodesic_model_bends_around_corners() {
        use indoor_geom::Polygon;
        // An L-shaped hallway whose two doors face each other across the
        // removed quadrant.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let build = |model: DistanceModel| {
            let mut b = VenueBuilder::new();
            b.distance_model(model);
            let hall = b.add_partition_on(
                "L",
                PartitionKind::Public,
                crate::FloorId(0),
                Some(l.clone()),
            );
            let side_a = b.add_partition("a", PartitionKind::Public);
            let side_b = b.add_partition("b", PartitionKind::Public);
            let da = b.add_door(
                "da",
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(2.5, 10.0), // on the top arm
            );
            let db = b.add_door(
                "db",
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(10.0, 2.5), // on the right arm
            );
            b.connect(da, Connection::TwoWay(hall, side_a)).unwrap();
            b.connect(db, Connection::TwoWay(hall, side_b)).unwrap();
            let s = b.build().unwrap();
            s.door_to_door(hall, da, db).unwrap()
        };
        let euclid = build(DistanceModel::Euclidean);
        let geo = build(DistanceModel::Geodesic);
        let corner = Point::new(5.0, 5.0);
        let expected =
            Point::new(2.5, 10.0).distance(corner) + corner.distance(Point::new(10.0, 2.5));
        assert!(geo > euclid + 0.1, "geodesic must exceed the blocked chord");
        assert!((geo - expected).abs() < 1e-9);
    }

    #[test]
    fn explicit_distance_overrides_geometry() {
        let mut b = VenueBuilder::new();
        let p = b.add_partition("stair", PartitionKind::Public);
        let q = b.add_partition("hall0", PartitionKind::Public);
        let r = b.add_partition("hall1", PartitionKind::Public);
        let lower = b.add_door(
            "lower",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        let upper = b.add_door(
            "upper",
            DoorKind::Public,
            AtiList::always_open(),
            Point::new(1.0, 0.0), // geometric distance would be 1 m
        );
        b.connect(lower, Connection::TwoWay(q, p)).unwrap();
        b.connect(upper, Connection::TwoWay(p, r)).unwrap();
        b.set_distance(p, lower, upper, 20.0).unwrap(); // the paper's stairway
        let s = b.build().unwrap();
        assert_eq!(s.door_to_door(p, lower, upper), Some(20.0));
        // Other partitions keep geometric distances.
        assert_eq!(s.door_to_door(q, lower, lower), Some(0.0));
    }
}
