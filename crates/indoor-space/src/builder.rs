//! Validated construction of indoor spaces.
//!
//! [`VenueBuilder::build`] is the production pipeline: topology is derived
//! with indexed membership checks, each partition's distance matrix is filled
//! from a per-polygon [`GeodesicSolver`] answering one-to-many queries, and
//! the per-partition matrix builds — which are independent of each other —
//! fan out over [`std::thread::scope`] workers. [`VenueBuilder::build_sequential`]
//! keeps the naive single-threaded pipeline (one pairwise
//! [`geodesic_distance`] call per door pair, each rebuilding the polygon's
//! visibility graph) as the reference: both paths produce identical
//! [`IndoorSpace`] values, which the test suite asserts, and the
//! `construction` benchmark measures the gap.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use indoor_geom::{geodesic_distance, GeodesicSolver, Point, Polygon};
use indoor_time::{AtiList, CheckpointSet};

use crate::{
    venue::Topology, DistanceMatrix, DoorId, DoorKind, DoorRecord, FloorId, IndoorSpace,
    PartitionId, PartitionKind, PartitionRecord, SpaceError,
};

/// How intra-partition door-to-door distances are derived when no explicit
/// override is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceModel {
    /// Straight-line distance between door positions. Exact for convex
    /// partitions (the output of the paper's hallway decomposition).
    #[default]
    Euclidean,
    /// Interior shortest-path distance within the partition's polygon
    /// ([`indoor_geom::geodesic_distance`]); falls back to Euclidean for
    /// partitions without a polygon or when a door lies outside it. Use for
    /// venues whose partitions are kept non-convex.
    Geodesic,
}

/// How a door connects partitions, including the paper's door directionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connection {
    /// A regular door: both partitions can be left and entered through it.
    TwoWay(PartitionId, PartitionId),
    /// A directional door: usable only from `from` into `to` (e.g. the paper's
    /// d3, an exit-only door from v3 into v16).
    OneWay {
        /// Partition one can leave through the door.
        from: PartitionId,
        /// Partition one can enter through the door.
        to: PartitionId,
    },
    /// A door on the venue boundary with a single modelled side (e.g. a roof
    /// access). It can be used to leave and re-enter that partition.
    Boundary(PartitionId),
}

impl Connection {
    fn partitions(self) -> (PartitionId, Option<PartitionId>) {
        match self {
            Connection::TwoWay(a, b) => (a, Some(b)),
            Connection::OneWay { from, to } => (from, Some(to)),
            Connection::Boundary(p) => (p, None),
        }
    }
}

/// Builder for [`IndoorSpace`]: add partitions and doors, connect them,
/// optionally override intra-partition distances, then [`VenueBuilder::build`].
///
/// # Example
///
/// ```
/// use indoor_geom::Point;
/// use indoor_space::{Connection, DoorKind, PartitionKind, VenueBuilder};
/// use indoor_time::AtiList;
///
/// let mut b = VenueBuilder::new();
/// let room = b.add_partition("room", PartitionKind::Public);
/// let hall = b.add_partition("hall", PartitionKind::Public);
/// let door = b.add_door("door", DoorKind::Public, AtiList::hm(&[((8, 0), (18, 0))]),
///                       Point::new(5.0, 0.0));
/// b.connect(door, Connection::TwoWay(room, hall)).unwrap();
/// let space = b.build().unwrap();
/// assert_eq!(space.num_partitions(), 2);
/// assert_eq!(space.d2p(door), vec![room, hall]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct VenueBuilder {
    partitions: Vec<PartitionRecord>,
    doors: Vec<DoorRecord>,
    connections: Vec<Option<Connection>>,
    explicit: HashMap<(PartitionId, DoorId, DoorId), f64>,
    distance_model: DistanceModel,
}

impl VenueBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects how distance matrices are derived (default
    /// [`DistanceModel::Euclidean`]).
    pub fn distance_model(&mut self, model: DistanceModel) -> &mut Self {
        self.distance_model = model;
        self
    }

    /// Adds a partition on floor 0 without footprint.
    pub fn add_partition(&mut self, name: &str, kind: PartitionKind) -> PartitionId {
        self.add_partition_on(name, kind, FloorId(0), None)
    }

    /// Adds a partition with floor and optional polygon footprint.
    pub fn add_partition_on(
        &mut self,
        name: &str,
        kind: PartitionKind,
        floor: FloorId,
        polygon: Option<Polygon>,
    ) -> PartitionId {
        let id = PartitionId::from_index(self.partitions.len());
        self.partitions.push(PartitionRecord {
            id,
            name: name.to_owned(),
            kind,
            floor,
            polygon,
        });
        id
    }

    /// Adds a door on floor 0.
    pub fn add_door(
        &mut self,
        name: &str,
        kind: DoorKind,
        atis: AtiList,
        position: Point,
    ) -> DoorId {
        self.add_door_on(name, kind, atis, position, FloorId(0))
    }

    /// Adds a door with an explicit floor.
    pub fn add_door_on(
        &mut self,
        name: &str,
        kind: DoorKind,
        atis: AtiList,
        position: Point,
        floor: FloorId,
    ) -> DoorId {
        let id = DoorId::from_index(self.doors.len());
        self.doors.push(DoorRecord {
            id,
            name: name.to_owned(),
            kind,
            atis,
            position,
            floor,
        });
        self.connections.push(None);
        id
    }

    /// Connects a door to its partition(s).
    ///
    /// # Errors
    /// Rejects unknown ids, self-loops and doors connected twice.
    pub fn connect(&mut self, door: DoorId, conn: Connection) -> Result<(), SpaceError> {
        let slot = self
            .connections
            .get_mut(door.index())
            .ok_or(SpaceError::UnknownDoor(door))?;
        if slot.is_some() {
            return Err(SpaceError::DuplicateConnection(door));
        }
        let (a, b) = conn.partitions();
        let n = self.partitions.len();
        if a.index() >= n {
            return Err(SpaceError::UnknownPartition(a));
        }
        if let Some(b) = b {
            if b.index() >= n {
                return Err(SpaceError::UnknownPartition(b));
            }
            if a == b {
                return Err(SpaceError::SelfLoop(door, a));
            }
        }
        *slot = Some(conn);
        Ok(())
    }

    /// Overrides the intra-partition distance between two doors of
    /// `partition` (used where geometry would misestimate, e.g. the 20 m
    /// stairways of the paper's multi-floor venue). Applied symmetrically.
    ///
    /// # Errors
    /// Rejects unknown ids, self-pairs (`a == b` — the matrix diagonal is
    /// fixed at zero and an override for it would be silently dropped) and
    /// invalid distances; door membership is verified at
    /// [`VenueBuilder::build`] time.
    pub fn set_distance(
        &mut self,
        partition: PartitionId,
        a: DoorId,
        b: DoorId,
        dist: f64,
    ) -> Result<(), SpaceError> {
        if partition.index() >= self.partitions.len() {
            return Err(SpaceError::UnknownPartition(partition));
        }
        if a.index() >= self.doors.len() {
            return Err(SpaceError::UnknownDoor(a));
        }
        if b.index() >= self.doors.len() {
            return Err(SpaceError::UnknownDoor(b));
        }
        if a == b {
            return Err(SpaceError::SelfDistance { partition, door: a });
        }
        if !dist.is_finite() || dist < 0.0 {
            return Err(SpaceError::InvalidDistance { a, b, value: dist });
        }
        let key = if a <= b {
            (partition, a, b)
        } else {
            (partition, b, a)
        };
        self.explicit.insert(key, dist);
        Ok(())
    }

    /// Validates the venue and derives topology mappings, distance matrices
    /// and the checkpoint set.
    ///
    /// This is the production pipeline: geodesic distance matrices reuse one
    /// [`GeodesicSolver`] per partition polygon (one-to-many queries instead
    /// of a visibility-graph rebuild per door pair), and the independent
    /// per-partition matrix builds fan out over [`std::thread::scope`]
    /// workers. The output is identical — value for value — to
    /// [`VenueBuilder::build_sequential`].
    ///
    /// # Errors
    /// Returns the first validation failure (dangling doors, foreign doors in
    /// explicit distances, empty venue …).
    pub fn build(self) -> Result<IndoorSpace, SpaceError> {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.assemble(Some(workers))
    }

    /// Like [`VenueBuilder::build`] with an explicit worker-thread count for
    /// the distance-matrix fan-out (mainly for tests and benchmarks; `build`
    /// picks the host parallelism). `workers == 1` runs the fast pipeline
    /// inline without spawning. The output never depends on the worker count.
    ///
    /// # Errors
    /// Returns the first validation failure, exactly as [`VenueBuilder::build`].
    pub fn build_with_workers(self, workers: usize) -> Result<IndoorSpace, SpaceError> {
        self.assemble(Some(workers.max(1)))
    }

    /// The reference construction pipeline: identical output to
    /// [`VenueBuilder::build`], computed one partition at a time with one
    /// pairwise [`geodesic_distance`] call per door pair.
    ///
    /// Kept as the parity oracle (the proptests assert both pipelines agree
    /// exactly) and as the baseline the `construction` benchmark measures
    /// [`VenueBuilder::build`] against. Prefer [`VenueBuilder::build`].
    ///
    /// # Errors
    /// Returns the first validation failure, exactly as [`VenueBuilder::build`].
    pub fn build_sequential(self) -> Result<IndoorSpace, SpaceError> {
        self.assemble(None)
    }

    /// Shared assembly: `workers` is `None` for the reference pipeline and
    /// `Some(n)` for the fast pipeline with an `n`-thread matrix fan-out.
    fn assemble(self, workers: Option<usize>) -> Result<IndoorSpace, SpaceError> {
        if self.partitions.is_empty() {
            return Err(SpaceError::EmptyVenue);
        }
        let n_doors = self.doors.len();
        let n_parts = self.partitions.len();

        let mut door_leaves: Vec<Vec<PartitionId>> = vec![Vec::new(); n_doors];
        let mut door_enters: Vec<Vec<PartitionId>> = vec![Vec::new(); n_doors];
        for (i, conn) in self.connections.iter().enumerate() {
            let door = DoorId::from_index(i);
            let conn = conn.ok_or(SpaceError::DanglingDoor(door))?;
            match conn {
                Connection::TwoWay(a, b) => {
                    door_leaves[i] = vec![a, b];
                    door_enters[i] = vec![a, b];
                }
                Connection::OneWay { from, to } => {
                    door_leaves[i] = vec![from];
                    door_enters[i] = vec![to];
                }
                Connection::Boundary(p) => {
                    door_leaves[i] = vec![p];
                    door_enters[i] = vec![p];
                }
            }
        }

        let mut part_doors: Vec<Vec<DoorId>> = vec![Vec::new(); n_parts];
        let mut part_leaveable: Vec<Vec<DoorId>> = vec![Vec::new(); n_parts];
        let mut part_enterable: Vec<Vec<DoorId>> = vec![Vec::new(); n_parts];
        for i in 0..n_doors {
            let door = DoorId::from_index(i);
            // A door touches at most two partitions, so the duplicate guard
            // is a two-element scan, not a membership problem.
            let mut seen = Vec::new();
            for &p in door_leaves[i].iter().chain(door_enters[i].iter()) {
                if !seen.contains(&p) {
                    seen.push(p);
                    part_doors[p.index()].push(door);
                }
            }
            for &p in &door_leaves[i] {
                part_leaveable[p.index()].push(door);
            }
            for &p in &door_enters[i] {
                part_enterable[p.index()].push(door);
            }
        }
        for v in part_doors
            .iter_mut()
            .chain(part_leaveable.iter_mut())
            .chain(part_enterable.iter_mut())
        {
            v.sort_unstable();
            v.dedup();
        }

        // Validate explicit distances against door membership. `part_doors`
        // is sorted, so membership is a binary search rather than a linear
        // scan per override (door-rich partitions made that quadratic).
        for &(partition, a, b) in self.explicit.keys() {
            let doors = &part_doors[partition.index()];
            if doors.binary_search(&a).is_err() {
                return Err(SpaceError::ForeignDoor { partition, door: a });
            }
            if doors.binary_search(&b).is_err() {
                return Err(SpaceError::ForeignDoor { partition, door: b });
            }
        }

        let dms = match workers {
            Some(w) => self.matrices_parallel(&part_doors, w)?,
            None => self.matrices_sequential(&part_doors)?,
        };

        let checkpoints = CheckpointSet::from_atis(self.doors.iter().map(|d| &d.atis));

        Ok(IndoorSpace::from_parts(
            self.partitions,
            self.doors,
            Topology {
                door_leaves,
                door_enters,
                part_doors,
                part_leaveable,
                part_enterable,
            },
            dms,
            checkpoints,
        ))
    }

    /// Reference distance-matrix pass: per pair, explicit override, else the
    /// distance model with a from-scratch [`geodesic_distance`] call.
    fn matrices_sequential(
        &self,
        part_doors: &[Vec<DoorId>],
    ) -> Result<Vec<DistanceMatrix>, SpaceError> {
        let mut dms = Vec::with_capacity(part_doors.len());
        for (pi, doors) in part_doors.iter().enumerate() {
            let partition = PartitionId::from_index(pi);
            let polygon = self.partitions[pi].polygon.as_ref();
            let dm = DistanceMatrix::build(doors.clone(), |a, b| {
                let key = if a <= b {
                    (partition, a, b)
                } else {
                    (partition, b, a)
                };
                if let Some(&d) = self.explicit.get(&key) {
                    return d;
                }
                let pa = self.doors[a.index()].position;
                let pb = self.doors[b.index()].position;
                if self.distance_model == DistanceModel::Geodesic {
                    if let Some(poly) = polygon {
                        if let Some(d) = geodesic_distance(poly, pa, pb) {
                            return d;
                        }
                    }
                }
                pa.distance(pb)
            })?;
            dms.push(dm);
        }
        Ok(dms)
    }

    /// One partition's distance matrix via the amortised path: a single
    /// [`GeodesicSolver`] answers one-to-many queries per source door, and
    /// explicit overrides are applied pair-wise on top.
    fn matrix_for(&self, pi: usize, doors: &[DoorId]) -> Result<DistanceMatrix, SpaceError> {
        let partition = PartitionId::from_index(pi);
        let polygon = self.partitions[pi].polygon.as_ref();
        let n = doors.len();

        // Geodesic rows, computed one-to-many: `geo[i]` holds the distances
        // from door i to doors i+1..n (the upper triangle the matrix build
        // asks for). `None` entries fall back to the Euclidean distance,
        // mirroring `geodesic_distance`'s out-of-polygon contract.
        let geo: Option<Vec<Vec<Option<f64>>>> = match polygon {
            Some(poly) if self.distance_model == DistanceModel::Geodesic && n > 1 => {
                let solver = GeodesicSolver::new(poly);
                let positions: Vec<Point> = doors
                    .iter()
                    .map(|d| self.doors[d.index()].position)
                    .collect();
                Some(
                    (0..n)
                        .map(|i| solver.distances_from(positions[i], &positions[i + 1..]))
                        .collect(),
                )
            }
            _ => None,
        };

        DistanceMatrix::build_indexed(doors.to_vec(), |sorted, i, j| {
            let (a, b) = (sorted[i], sorted[j]);
            let key = if a <= b {
                (partition, a, b)
            } else {
                (partition, b, a)
            };
            if let Some(&d) = self.explicit.get(&key) {
                return d;
            }
            if let Some(geo) = &geo {
                // `doors` arrives sorted and deduplicated (it is a
                // `part_doors` entry), so positions line up with `sorted`.
                if let Some(d) = geo[i][j - i - 1] {
                    return d;
                }
            }
            self.doors[a.index()]
                .position
                .distance(self.doors[b.index()].position)
        })
    }

    /// Fans the independent per-partition matrix builds out over scoped
    /// worker threads (the same atomic-counter work queue as
    /// `VenueServer::query_batch`). Results are re-assembled in partition
    /// order, and the reported error — if any — is the one the sequential
    /// pass would have hit first, so the two pipelines stay interchangeable.
    fn matrices_parallel(
        &self,
        part_doors: &[Vec<DoorId>],
        workers: usize,
    ) -> Result<Vec<DistanceMatrix>, SpaceError> {
        let n = part_doors.len();
        let workers = workers.min(n);
        if workers <= 1 {
            return (0..n)
                .map(|pi| self.matrix_for(pi, &part_doors[pi]))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, Result<DistanceMatrix, SpaceError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let pi = next.fetch_add(1, Ordering::Relaxed);
                                let Some(doors) = part_doors.get(pi) else {
                                    break;
                                };
                                local.push((pi, self.matrix_for(pi, doors)));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| match h.join() {
                        Ok(local) => local,
                        // Re-raise the worker's panic with its own payload.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
        indexed.sort_unstable_by_key(|&(pi, _)| pi);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_room_builder() -> (VenueBuilder, PartitionId, PartitionId, DoorId) {
        let mut b = VenueBuilder::new();
        let p0 = b.add_partition("room", PartitionKind::Public);
        let p1 = b.add_partition("hall", PartitionKind::Public);
        let d = b.add_door(
            "door",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        (b, p0, p1, d)
    }

    #[test]
    fn empty_venue_rejected() {
        assert_eq!(
            VenueBuilder::new().build().unwrap_err(),
            SpaceError::EmptyVenue
        );
    }

    #[test]
    fn dangling_door_rejected() {
        let (b, _, _, d) = two_room_builder();
        assert_eq!(b.build().unwrap_err(), SpaceError::DanglingDoor(d));
    }

    #[test]
    fn duplicate_connection_rejected() {
        let (mut b, p0, p1, d) = two_room_builder();
        b.connect(d, Connection::TwoWay(p0, p1)).unwrap();
        assert_eq!(
            b.connect(d, Connection::TwoWay(p1, p0)).unwrap_err(),
            SpaceError::DuplicateConnection(d)
        );
    }

    #[test]
    fn self_loop_rejected() {
        let (mut b, p0, _, d) = two_room_builder();
        assert_eq!(
            b.connect(d, Connection::TwoWay(p0, p0)).unwrap_err(),
            SpaceError::SelfLoop(d, p0)
        );
    }

    #[test]
    fn unknown_ids_rejected() {
        let (mut b, p0, _, d) = two_room_builder();
        assert!(matches!(
            b.connect(d, Connection::TwoWay(p0, PartitionId(99))),
            Err(SpaceError::UnknownPartition(_))
        ));
        assert!(matches!(
            b.connect(DoorId(42), Connection::Boundary(p0)),
            Err(SpaceError::UnknownDoor(_))
        ));
        assert!(matches!(
            b.set_distance(PartitionId(99), d, d, 1.0),
            Err(SpaceError::UnknownPartition(_))
        ));
        assert!(matches!(
            b.set_distance(p0, DoorId(42), d, 1.0),
            Err(SpaceError::UnknownDoor(_))
        ));
    }

    #[test]
    fn invalid_explicit_distance_rejected() {
        let (mut b, _, _, d) = two_room_builder();
        let e = b.add_door(
            "door2",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        let p = b.add_partition("annex", PartitionKind::Public);
        assert!(matches!(
            b.set_distance(p, d, e, -2.0),
            Err(SpaceError::InvalidDistance { .. })
        ));
        assert!(b.set_distance(p, d, e, f64::NAN).is_err());
        assert!(b.set_distance(p, d, e, f64::INFINITY).is_err());
    }

    #[test]
    fn self_pair_distance_rejected() {
        // Regression: a (p, d, d, x) override used to be accepted here and
        // then silently ignored by the matrix build (only i < j pairs consult
        // the distance function, and the diagonal is pinned at zero).
        let (mut b, p0, p1, d) = two_room_builder();
        assert_eq!(
            b.set_distance(p0, d, d, 7.0).unwrap_err(),
            SpaceError::SelfDistance {
                partition: p0,
                door: d
            }
        );
        // The builder stays usable and the diagonal stays zero.
        b.connect(d, Connection::TwoWay(p0, p1)).unwrap();
        let s = b.build().unwrap();
        assert_eq!(s.door_to_door(p0, d, d), Some(0.0));
    }

    #[test]
    fn foreign_door_in_explicit_distance_rejected() {
        let mut b = VenueBuilder::new();
        let p0 = b.add_partition("a", PartitionKind::Public);
        let p1 = b.add_partition("b", PartitionKind::Public);
        let p2 = b.add_partition("c", PartitionKind::Public);
        let d0 = b.add_door(
            "d0",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        let d1 = b.add_door(
            "d1",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        b.connect(d0, Connection::TwoWay(p0, p1)).unwrap();
        b.connect(d1, Connection::TwoWay(p1, p2)).unwrap();
        // d0 is not a door of p2.
        b.set_distance(p2, d0, d1, 3.0).unwrap();
        assert!(matches!(b.build(), Err(SpaceError::ForeignDoor { .. })));
    }

    #[test]
    fn one_way_directionality() {
        let mut b = VenueBuilder::new();
        let v3 = b.add_partition("v3", PartitionKind::Public);
        let v16 = b.add_partition("v16", PartitionKind::Public);
        let d3 = b.add_door(
            "d3",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        b.connect(d3, Connection::OneWay { from: v3, to: v16 })
            .unwrap();
        let s = b.build().unwrap();
        // The paper's example: D2P⊳(d3) = v3, D2P⊲(d3) = v16.
        assert_eq!(s.d2p_leaveable(d3), &[v3]);
        assert_eq!(s.d2p_enterable(d3), &[v16]);
        assert_eq!(s.d2p(d3), vec![v3, v16]);
        assert_eq!(s.p2d_leaveable(v3), &[d3]);
        assert!(s.p2d_enterable(v3).is_empty());
        assert_eq!(s.p2d_enterable(v16), &[d3]);
        assert!(s.p2d_leaveable(v16).is_empty());
    }

    #[test]
    fn boundary_door_has_single_side() {
        let mut b = VenueBuilder::new();
        let p = b.add_partition("lobby", PartitionKind::Public);
        let d = b.add_door(
            "roof",
            DoorKind::Private,
            AtiList::never_open(),
            Point::ORIGIN,
        );
        b.connect(d, Connection::Boundary(p)).unwrap();
        let s = b.build().unwrap();
        assert_eq!(s.d2p(d), vec![p]);
        assert_eq!(s.d2p_enterable(d), &[p]);
    }

    #[test]
    fn geodesic_model_bends_around_corners() {
        use indoor_geom::Polygon;
        // An L-shaped hallway whose two doors face each other across the
        // removed quadrant.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let build = |model: DistanceModel| {
            let mut b = VenueBuilder::new();
            b.distance_model(model);
            let hall = b.add_partition_on(
                "L",
                PartitionKind::Public,
                crate::FloorId(0),
                Some(l.clone()),
            );
            let side_a = b.add_partition("a", PartitionKind::Public);
            let side_b = b.add_partition("b", PartitionKind::Public);
            let da = b.add_door(
                "da",
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(2.5, 10.0), // on the top arm
            );
            let db = b.add_door(
                "db",
                DoorKind::Public,
                AtiList::always_open(),
                Point::new(10.0, 2.5), // on the right arm
            );
            b.connect(da, Connection::TwoWay(hall, side_a)).unwrap();
            b.connect(db, Connection::TwoWay(hall, side_b)).unwrap();
            let s = b.build().unwrap();
            s.door_to_door(hall, da, db).unwrap()
        };
        let euclid = build(DistanceModel::Euclidean);
        let geo = build(DistanceModel::Geodesic);
        let corner = Point::new(5.0, 5.0);
        let expected =
            Point::new(2.5, 10.0).distance(corner) + corner.distance(Point::new(10.0, 2.5));
        assert!(geo > euclid + 0.1, "geodesic must exceed the blocked chord");
        assert!((geo - expected).abs() < 1e-9);
    }

    #[test]
    fn parallel_and_sequential_pipelines_agree_exactly() {
        use indoor_geom::Polygon;
        // A venue that exercises every distance source: a non-convex hallway
        // (geodesic Dijkstras), convex side rooms (Euclidean short-circuit),
        // an explicit override, and a door outside its partition's polygon
        // (Euclidean fallback).
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let mut b = VenueBuilder::new();
        b.distance_model(DistanceModel::Geodesic);
        let hall = b.add_partition_on("L", PartitionKind::Public, crate::FloorId(0), Some(l));
        let side_a = b.add_partition("a", PartitionKind::Public);
        let side_b = b.add_partition("b", PartitionKind::Public);
        let da = b.add_door(
            "da",
            DoorKind::Public,
            AtiList::always_open(),
            Point::new(2.5, 10.0),
        );
        let db = b.add_door(
            "db",
            DoorKind::Public,
            AtiList::always_open(),
            Point::new(10.0, 2.5),
        );
        let dc = b.add_door(
            "dc",
            DoorKind::Public,
            AtiList::hm(&[((9, 0), (18, 0))]),
            Point::new(1.0, 0.0),
        );
        let d_out = b.add_door(
            "outside",
            DoorKind::Private,
            AtiList::always_open(),
            Point::new(20.0, 20.0), // outside the L: falls back to Euclidean
        );
        b.connect(da, Connection::TwoWay(hall, side_a)).unwrap();
        b.connect(db, Connection::TwoWay(hall, side_b)).unwrap();
        b.connect(
            dc,
            Connection::OneWay {
                from: hall,
                to: side_a,
            },
        )
        .unwrap();
        b.connect(d_out, Connection::Boundary(hall)).unwrap();
        b.set_distance(hall, da, dc, 42.0).unwrap();

        let fast = b.clone().build().unwrap();
        let threaded = b.clone().build_with_workers(4).unwrap();
        let slow = b.build_sequential().unwrap();
        assert_eq!(fast, slow, "pipelines must produce identical venues");
        assert_eq!(threaded, slow, "worker count must not influence the output");
        // And the geodesic really is in play: da↔db bends at (5,5).
        let corner = Point::new(5.0, 5.0);
        let expected =
            Point::new(2.5, 10.0).distance(corner) + corner.distance(Point::new(10.0, 2.5));
        assert_eq!(fast.door_to_door(hall, da, db), Some(expected));
        assert_eq!(fast.door_to_door(hall, da, dc), Some(42.0));
    }

    #[test]
    fn explicit_distance_overrides_geometry() {
        let mut b = VenueBuilder::new();
        let p = b.add_partition("stair", PartitionKind::Public);
        let q = b.add_partition("hall0", PartitionKind::Public);
        let r = b.add_partition("hall1", PartitionKind::Public);
        let lower = b.add_door(
            "lower",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        let upper = b.add_door(
            "upper",
            DoorKind::Public,
            AtiList::always_open(),
            Point::new(1.0, 0.0), // geometric distance would be 1 m
        );
        b.connect(lower, Connection::TwoWay(q, p)).unwrap();
        b.connect(upper, Connection::TwoWay(p, r)).unwrap();
        b.set_distance(p, lower, upper, 20.0).unwrap(); // the paper's stairway
        let s = b.build().unwrap();
        assert_eq!(s.door_to_door(p, lower, upper), Some(20.0));
        // Other partitions keep geometric distances.
        assert_eq!(s.door_to_door(q, lower, lower), Some(0.0));
    }
}
