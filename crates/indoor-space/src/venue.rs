//! The assembled indoor space.

use indoor_geom::Point;
use indoor_time::CheckpointSet;
use serde::{Deserialize, Serialize};

use crate::{
    DistanceMatrix, DoorId, DoorRecord, FloorId, IndoorPoint, PartitionId, PartitionRecord,
    SpaceStats,
};

/// Derived connectivity of a venue (the paper's accessibility mappings).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Topology {
    /// `D2P⊳(d)` — partitions one can leave through door `d`.
    pub door_leaves: Vec<Vec<PartitionId>>,
    /// `D2P⊲(d)` — partitions one can enter through door `d`.
    pub door_enters: Vec<Vec<PartitionId>>,
    /// `P2D(v)` — all doors of partition `v`.
    pub part_doors: Vec<Vec<DoorId>>,
    /// `P2D⊳(v)` — doors through which one can leave `v`.
    pub part_leaveable: Vec<Vec<DoorId>>,
    /// `P2D⊲(v)` — doors through which one can enter `v`.
    pub part_enterable: Vec<Vec<DoorId>>,
}

/// A validated indoor venue: partitions, doors, directional topology,
/// intra-partition distance matrices and the checkpoint set of all door ATIs.
///
/// Construct via [`crate::VenueBuilder`]; the paper's running example is
/// available from [`crate::paper_example::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndoorSpace {
    partitions: Vec<PartitionRecord>,
    doors: Vec<DoorRecord>,
    topology: Topology,
    dms: Vec<DistanceMatrix>,
    checkpoints: CheckpointSet,
}

impl IndoorSpace {
    pub(crate) fn from_parts(
        partitions: Vec<PartitionRecord>,
        doors: Vec<DoorRecord>,
        topology: Topology,
        dms: Vec<DistanceMatrix>,
        checkpoints: CheckpointSet,
    ) -> Self {
        IndoorSpace {
            partitions,
            doors,
            topology,
            dms,
            checkpoints,
        }
    }

    /// All partitions, indexable by [`PartitionId::index`].
    #[must_use]
    pub fn partitions(&self) -> &[PartitionRecord] {
        &self.partitions
    }

    /// All doors, indexable by [`DoorId::index`].
    #[must_use]
    pub fn doors(&self) -> &[DoorRecord] {
        &self.doors
    }

    /// Number of partitions.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of doors.
    #[must_use]
    pub fn num_doors(&self) -> usize {
        self.doors.len()
    }

    /// The record of a partition. Panics on a foreign id (ids are dense and
    /// only minted by the builder).
    #[must_use]
    pub fn partition(&self, id: PartitionId) -> &PartitionRecord {
        &self.partitions[id.index()]
    }

    /// The record of a door. Panics on a foreign id.
    #[must_use]
    pub fn door(&self, id: DoorId) -> &DoorRecord {
        &self.doors[id.index()]
    }

    /// `P2D(v)`: all doors of partition `v`.
    #[must_use]
    pub fn p2d(&self, v: PartitionId) -> &[DoorId] {
        &self.topology.part_doors[v.index()]
    }

    /// `P2D⊳(v)`: doors through which one can leave `v`.
    #[must_use]
    pub fn p2d_leaveable(&self, v: PartitionId) -> &[DoorId] {
        &self.topology.part_leaveable[v.index()]
    }

    /// `P2D⊲(v)`: doors through which one can enter `v`.
    #[must_use]
    pub fn p2d_enterable(&self, v: PartitionId) -> &[DoorId] {
        &self.topology.part_enterable[v.index()]
    }

    /// `D2P(d)`: the partitions connected by door `d` (one or two).
    #[must_use]
    pub fn d2p(&self, d: DoorId) -> Vec<PartitionId> {
        let mut out = self.topology.door_leaves[d.index()].clone();
        for &p in &self.topology.door_enters[d.index()] {
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out.sort_unstable();
        out
    }

    /// `D2P⊳(d)`: partitions one can leave through door `d`.
    #[must_use]
    pub fn d2p_leaveable(&self, d: DoorId) -> &[PartitionId] {
        &self.topology.door_leaves[d.index()]
    }

    /// `D2P⊲(d)`: partitions one can enter through door `d`.
    #[must_use]
    pub fn d2p_enterable(&self, d: DoorId) -> &[PartitionId] {
        &self.topology.door_enters[d.index()]
    }

    /// The distance matrix of partition `v`.
    #[must_use]
    pub fn distance_matrix(&self, v: PartitionId) -> &DistanceMatrix {
        &self.dms[v.index()]
    }

    /// `DM(v, a, b)`: intra-partition walking distance between doors `a` and
    /// `b` of `v`, or `None` if either door is not on `v`.
    #[must_use]
    pub fn door_to_door(&self, v: PartitionId, a: DoorId, b: DoorId) -> Option<f64> {
        self.dms[v.index()].distance(a, b)
    }

    /// Walking distance from an indoor point to a door of its partition
    /// (`|p, d|_E` in the paper), or `None` if the door is not on the
    /// partition.
    #[must_use]
    pub fn point_to_door(&self, p: &IndoorPoint, d: DoorId) -> Option<f64> {
        if !self.p2d(p.partition).contains(&d) {
            return None;
        }
        Some(p.position.distance(self.doors[d.index()].position))
    }

    /// Straight-line distance between two points of the *same* partition, or
    /// `None` if they lie in different partitions.
    #[must_use]
    pub fn point_to_point(&self, a: &IndoorPoint, b: &IndoorPoint) -> Option<f64> {
        (a.partition == b.partition).then(|| a.position.distance(b.position))
    }

    /// The venue's checkpoint set `T` (all door open/close instants).
    #[must_use]
    pub fn checkpoints(&self) -> &CheckpointSet {
        &self.checkpoints
    }

    /// Finds the partition on `floor` whose footprint contains `p` (first
    /// match; partitions with no polygon are skipped).
    #[must_use]
    pub fn locate(&self, floor: FloorId, p: Point) -> Option<PartitionId> {
        self.partitions
            .iter()
            .find(|part| {
                part.floor == floor && part.polygon.as_ref().is_some_and(|poly| poly.contains(p))
            })
            .map(|part| part.id)
    }

    /// Summary statistics of the venue.
    #[must_use]
    pub fn stats(&self) -> SpaceStats {
        SpaceStats::compute(self)
    }

    /// Approximate heap footprint of the venue model in bytes (used by the
    /// memory-cost experiments).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let mut total = 0;
        total += self.partitions.capacity() * std::mem::size_of::<PartitionRecord>();
        total += self.doors.capacity() * std::mem::size_of::<DoorRecord>();
        for dm in &self.dms {
            total += dm.heap_bytes();
        }
        let vec_bytes_d = |v: &Vec<Vec<DoorId>>| -> usize {
            v.iter()
                .map(|x| x.capacity() * std::mem::size_of::<DoorId>() + 24)
                .sum()
        };
        let vec_bytes_p = |v: &Vec<Vec<PartitionId>>| -> usize {
            v.iter()
                .map(|x| x.capacity() * std::mem::size_of::<PartitionId>() + 24)
                .sum()
        };
        total += vec_bytes_p(&self.topology.door_leaves);
        total += vec_bytes_p(&self.topology.door_enters);
        total += vec_bytes_d(&self.topology.part_doors);
        total += vec_bytes_d(&self.topology.part_leaveable);
        total += vec_bytes_d(&self.topology.part_enterable);
        total += self.checkpoints.len() * std::mem::size_of::<indoor_time::TimeOfDay>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Connection, DoorKind, PartitionKind, VenueBuilder};
    use indoor_time::{AtiList, TimeOfDay};

    /// room --d0-- hall --d1-- office, d1 private one-way into office.
    fn venue() -> (IndoorSpace, [PartitionId; 3], [DoorId; 2]) {
        let mut b = VenueBuilder::new();
        let room = b.add_partition("room", PartitionKind::Public);
        let hall = b.add_partition("hall", PartitionKind::Public);
        let office = b.add_partition("office", PartitionKind::Private);
        let d0 = b.add_door(
            "d0",
            DoorKind::Public,
            AtiList::hm(&[((8, 0), (18, 0))]),
            Point::new(0.0, 0.0),
        );
        let d1 = b.add_door(
            "d1",
            DoorKind::Private,
            AtiList::hm(&[((9, 0), (17, 0))]),
            Point::new(6.0, 8.0),
        );
        b.connect(d0, Connection::TwoWay(room, hall)).unwrap();
        b.connect(
            d1,
            Connection::OneWay {
                from: hall,
                to: office,
            },
        )
        .unwrap();
        (b.build().unwrap(), [room, hall, office], [d0, d1])
    }

    #[test]
    fn mappings() {
        let (s, [room, hall, office], [d0, d1]) = venue();
        assert_eq!(s.p2d(hall), &[d0, d1]);
        assert_eq!(s.p2d_leaveable(hall), &[d0, d1]);
        assert_eq!(s.p2d_enterable(hall), &[d0]);
        assert_eq!(s.p2d_enterable(office), &[d1]);
        assert!(s.p2d_leaveable(office).is_empty());
        assert_eq!(s.d2p(d1), vec![hall, office]);
        assert_eq!(s.d2p_leaveable(d0), &[room, hall]);
    }

    #[test]
    fn distances() {
        let (s, [_, hall, _], [d0, d1]) = venue();
        assert_eq!(s.door_to_door(hall, d0, d1), Some(10.0));
        assert_eq!(s.door_to_door(hall, d0, d0), Some(0.0));
        // d1 is not a door of room (index 0).
        let (_, [room, ..], _) = venue();
        assert_eq!(s.door_to_door(room, d0, d1), None);
    }

    #[test]
    fn point_distances() {
        let (s, [room, hall, _], [d0, d1]) = venue();
        let p = IndoorPoint::new(room, Point::new(3.0, 4.0));
        assert_eq!(s.point_to_door(&p, d0), Some(5.0));
        assert_eq!(s.point_to_door(&p, d1), None); // d1 not on room
        let q = IndoorPoint::new(room, Point::new(0.0, 0.0));
        assert_eq!(s.point_to_point(&p, &q), Some(5.0));
        let h = IndoorPoint::new(hall, Point::new(0.0, 0.0));
        assert_eq!(s.point_to_point(&p, &h), None);
    }

    #[test]
    fn checkpoints_collected() {
        let (s, _, _) = venue();
        assert_eq!(
            s.checkpoints().times(),
            &[
                TimeOfDay::MIDNIGHT,
                TimeOfDay::hm(8, 0),
                TimeOfDay::hm(9, 0),
                TimeOfDay::hm(17, 0),
                TimeOfDay::hm(18, 0),
            ]
        );
    }

    #[test]
    fn serde_round_trip() {
        let (s, _, _) = venue();
        let json = serde_json::to_string(&s).unwrap();
        let back: IndoorSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn heap_bytes_reasonable() {
        let (s, _, _) = venue();
        let b = s.heap_bytes();
        assert!(b > 100, "suspiciously small: {b}");
        assert!(b < 1_000_000, "suspiciously large: {b}");
    }
}
