//! Door records.

use indoor_geom::Point;
use indoor_time::AtiList;
use serde::{Deserialize, Serialize};

use crate::{DoorId, FloorId};

/// The paper's door types: public (`PBD`) or private (`PRD`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DoorKind {
    /// `PBD` — a public door.
    Public,
    /// `PRD` — a private door (e.g. a staff door or a shop's back door).
    Private,
}

impl DoorKind {
    /// The paper's abbreviation (`PBD` / `PRD`).
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            DoorKind::Public => "PBD",
            DoorKind::Private => "PRD",
        }
    }
}

/// A door of the venue: the `(IDd, d-type, ATIs)` edge label of the IT-Graph
/// plus its geometric position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoorRecord {
    /// Dense identifier.
    pub id: DoorId,
    /// Human-readable name (e.g. `"d7"` or `"shop 12 front"`).
    pub name: String,
    /// `d-type`: public or private.
    pub kind: DoorKind,
    /// The door's Active Time Intervals.
    pub atis: AtiList,
    /// Door position in the local frame of its floor.
    pub position: Point,
    /// Floor hosting the door (stair doors carry the lower floor).
    pub floor: FloorId,
}

impl DoorRecord {
    /// Whether the door's ATIs are neither always-open nor never-open.
    #[must_use]
    pub fn has_temporal_variation(&self) -> bool {
        self.atis.has_variation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_time::AtiList;

    #[test]
    fn abbreviations() {
        assert_eq!(DoorKind::Public.abbrev(), "PBD");
        assert_eq!(DoorKind::Private.abbrev(), "PRD");
    }

    #[test]
    fn temporal_variation_flag() {
        let mk = |atis: AtiList| DoorRecord {
            id: DoorId(0),
            name: "d0".into(),
            kind: DoorKind::Public,
            atis,
            position: Point::ORIGIN,
            floor: FloorId(0),
        };
        assert!(!mk(AtiList::always_open()).has_temporal_variation());
        assert!(!mk(AtiList::never_open()).has_temporal_variation());
        assert!(mk(AtiList::hm(&[((8, 0), (16, 0))])).has_temporal_variation());
    }
}
