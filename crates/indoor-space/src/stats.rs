//! Venue summary statistics.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DoorKind, IndoorSpace, PartitionKind};

/// Counts describing a venue — used to verify the synthetic generator against
/// the paper's reported sizes (141 partitions / 224 doors per floor; 705 /
/// 1120 for the default five-floor venue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceStats {
    /// Total partitions (including outdoor if modelled).
    pub partitions: usize,
    /// Public (`PBP`) partitions.
    pub public_partitions: usize,
    /// Private (`PRP`) partitions.
    pub private_partitions: usize,
    /// Outdoor partitions.
    pub outdoor_partitions: usize,
    /// Total doors.
    pub doors: usize,
    /// Public (`PBD`) doors.
    pub public_doors: usize,
    /// Private (`PRD`) doors.
    pub private_doors: usize,
    /// Doors whose ATIs actually vary during the day.
    pub doors_with_variation: usize,
    /// Distinct floors.
    pub floors: usize,
    /// Size of the checkpoint set `|T|` (including the implicit midnight).
    pub checkpoints: usize,
}

impl SpaceStats {
    pub(crate) fn compute(space: &IndoorSpace) -> Self {
        let mut s = SpaceStats {
            partitions: space.num_partitions(),
            public_partitions: 0,
            private_partitions: 0,
            outdoor_partitions: 0,
            doors: space.num_doors(),
            public_doors: 0,
            private_doors: 0,
            doors_with_variation: 0,
            floors: 0,
            checkpoints: space.checkpoints().len(),
        };
        let mut floors = BTreeSet::new();
        for p in space.partitions() {
            match p.kind {
                PartitionKind::Public => s.public_partitions += 1,
                PartitionKind::Private => s.private_partitions += 1,
                PartitionKind::Outdoor => s.outdoor_partitions += 1,
            }
            floors.insert(p.floor);
        }
        for d in space.doors() {
            match d.kind {
                DoorKind::Public => s.public_doors += 1,
                DoorKind::Private => s.private_doors += 1,
            }
            if d.has_temporal_variation() {
                s.doors_with_variation += 1;
            }
        }
        s.floors = floors.len();
        s
    }
}

impl fmt::Display for SpaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} partitions ({} PBP, {} PRP, {} OUT) on {} floor(s); \
             {} doors ({} PBD, {} PRD, {} varying); |T| = {}",
            self.partitions,
            self.public_partitions,
            self.private_partitions,
            self.outdoor_partitions,
            self.floors,
            self.doors,
            self.public_doors,
            self.private_doors,
            self.doors_with_variation,
            self.checkpoints,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Connection, VenueBuilder};
    use indoor_geom::Point;
    use indoor_time::AtiList;

    #[test]
    fn counts() {
        let mut b = VenueBuilder::new();
        let a = b.add_partition("a", PartitionKind::Public);
        let c = b.add_partition("b", PartitionKind::Private);
        let o = b.add_partition("out", PartitionKind::Outdoor);
        let d0 = b.add_door(
            "d0",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        let d1 = b.add_door(
            "d1",
            DoorKind::Private,
            AtiList::hm(&[((8, 0), (16, 0))]),
            Point::ORIGIN,
        );
        b.connect(d0, Connection::TwoWay(a, o)).unwrap();
        b.connect(d1, Connection::TwoWay(a, c)).unwrap();
        let s = b.build().unwrap().stats();
        assert_eq!(s.partitions, 3);
        assert_eq!(s.public_partitions, 1);
        assert_eq!(s.private_partitions, 1);
        assert_eq!(s.outdoor_partitions, 1);
        assert_eq!(s.doors, 2);
        assert_eq!(s.public_doors, 1);
        assert_eq!(s.private_doors, 1);
        assert_eq!(s.doors_with_variation, 1);
        assert_eq!(s.floors, 1);
        assert_eq!(s.checkpoints, 3); // 0:00, 8:00, 16:00
        let text = s.to_string();
        assert!(text.contains("3 partitions"));
        assert!(text.contains("|T| = 3"));
    }
}
