//! Venue audit: structural health checks a venue operator runs before
//! deploying routing on a floor plan.
//!
//! The builder already rejects malformed inputs; the audit reports *suspect*
//! but legal structure: partitions unreachable from a chosen origin, doors
//! that never open, distance matrices violating the triangle inequality,
//! public partitions whose only doors are private, and so on.

use std::collections::VecDeque;
use std::fmt;

use crate::{DoorId, IndoorSpace, PartitionId, PartitionKind};

/// One audit finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// The partition cannot be reached from the audit origin (ignoring time).
    Unreachable(PartitionId),
    /// The door's ATI list is empty — it can never be crossed.
    NeverOpenDoor(DoorId),
    /// The partition's distance matrix violates the triangle inequality.
    TriangleViolation {
        /// The partition whose matrix is inconsistent.
        partition: PartitionId,
        /// Witness triple `(a, b, via)` with `DM(a,b) > DM(a,via) + DM(via,b)`.
        witness: (DoorId, DoorId, DoorId),
    },
    /// A public partition reachable only through private partitions.
    PublicBehindPrivate(PartitionId),
    /// A partition with exactly one door that is itself never open.
    SealedRoom(PartitionId),
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::Unreachable(p) => write!(f, "partition {p} is unreachable from the origin"),
            Finding::NeverOpenDoor(d) => write!(f, "door {d} never opens"),
            Finding::TriangleViolation { partition, witness } => write!(
                f,
                "distance matrix of {partition} violates the triangle inequality at \
                 ({}, {}, via {})",
                witness.0, witness.1, witness.2
            ),
            Finding::PublicBehindPrivate(p) => {
                write!(
                    f,
                    "public partition {p} is only reachable through private space"
                )
            }
            Finding::SealedRoom(p) => {
                write!(f, "partition {p} has a single door that never opens")
            }
        }
    }
}

/// The audit report.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// All findings, grouped by kind in a stable order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Whether the audit found nothing suspicious.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "audit clean");
        }
        writeln!(f, "{} finding(s):", self.findings.len())?;
        for finding in &self.findings {
            writeln!(f, "  - {finding}")?;
        }
        Ok(())
    }
}

/// Audits `space`, measuring reachability from `origin` (pick a main
/// entrance hall). Temporal state is ignored except for never-open doors.
#[must_use]
pub fn audit(space: &IndoorSpace, origin: PartitionId) -> AuditReport {
    let mut findings = Vec::new();

    // Reachability ignoring time and privacy (can you get there at all?),
    // and reachability through public space only.
    let reach_all = reachable(space, origin, false);
    let reach_public = reachable(space, origin, true);
    for p in space.partitions() {
        if p.id == origin || p.kind == PartitionKind::Outdoor {
            continue;
        }
        if !reach_all[p.id.index()] {
            findings.push(Finding::Unreachable(p.id));
        } else if p.kind == PartitionKind::Public && !reach_public[p.id.index()] {
            findings.push(Finding::PublicBehindPrivate(p.id));
        }
    }

    for d in space.doors() {
        if d.atis.is_never_open() {
            findings.push(Finding::NeverOpenDoor(d.id));
        }
    }

    for p in space.partitions() {
        let doors = space.p2d(p.id);
        if doors.len() == 1 && space.door(doors[0]).atis.is_never_open() {
            findings.push(Finding::SealedRoom(p.id));
        }
        if let Some(witness) = space.distance_matrix(p.id).triangle_violation(1e-6) {
            findings.push(Finding::TriangleViolation {
                partition: p.id,
                witness,
            });
        }
    }

    AuditReport { findings }
}

/// BFS over the directed door topology. With `public_only`, intermediate
/// partitions must be traversable (the endpoints-exempt rule does not apply
/// to an audit).
fn reachable(space: &IndoorSpace, origin: PartitionId, public_only: bool) -> Vec<bool> {
    let mut seen = vec![false; space.num_partitions()];
    seen[origin.index()] = true;
    let mut queue = VecDeque::from([origin]);
    while let Some(v) = queue.pop_front() {
        for &d in space.p2d_leaveable(v) {
            for &u in space.d2p_enterable(d) {
                if seen[u.index()] {
                    continue;
                }
                seen[u.index()] = true;
                // Mark entry, but only continue *through* traversable space.
                if !public_only || space.partition(u).kind.traversable() {
                    queue.push_back(u);
                }
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Connection, DoorKind, VenueBuilder};
    use indoor_geom::Point;
    use indoor_time::AtiList;

    #[test]
    fn clean_venue_audits_clean() {
        let mut b = VenueBuilder::new();
        let a = b.add_partition("a", PartitionKind::Public);
        let c = b.add_partition("b", PartitionKind::Public);
        let d = b.add_door("d", DoorKind::Public, AtiList::always_open(), Point::ORIGIN);
        b.connect(d, Connection::TwoWay(a, c)).unwrap();
        let report = audit(&b.build().unwrap(), a);
        assert!(report.is_clean());
        assert_eq!(report.to_string(), "audit clean");
    }

    #[test]
    fn detects_unreachable_and_sealed() {
        let mut b = VenueBuilder::new();
        let a = b.add_partition("a", PartitionKind::Public);
        let island = b.add_partition("island", PartitionKind::Public);
        let locked = b.add_door(
            "locked",
            DoorKind::Private,
            AtiList::never_open(),
            Point::ORIGIN,
        );
        // The island's only door never opens (still a topological link, so it
        // is "reachable" structurally but sealed temporally).
        b.connect(locked, Connection::TwoWay(a, island)).unwrap();
        let far = b.add_partition("far", PartitionKind::Public);
        let lonely = b.add_door(
            "lonely",
            DoorKind::Public,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        b.connect(lonely, Connection::Boundary(far)).unwrap();
        let report = audit(&b.build().unwrap(), a);
        assert!(report.findings.contains(&Finding::Unreachable(far)));
        assert!(report.findings.contains(&Finding::NeverOpenDoor(locked)));
        assert!(report.findings.contains(&Finding::SealedRoom(island)));
    }

    #[test]
    fn detects_public_behind_private() {
        let mut b = VenueBuilder::new();
        let lobby = b.add_partition("lobby", PartitionKind::Public);
        let vault = b.add_partition("vault corridor", PartitionKind::Private);
        let office = b.add_partition("office", PartitionKind::Public);
        let d1 = b.add_door(
            "d1",
            DoorKind::Private,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        let d2 = b.add_door(
            "d2",
            DoorKind::Private,
            AtiList::always_open(),
            Point::ORIGIN,
        );
        b.connect(d1, Connection::TwoWay(lobby, vault)).unwrap();
        b.connect(d2, Connection::TwoWay(vault, office)).unwrap();
        let report = audit(&b.build().unwrap(), lobby);
        assert!(report
            .findings
            .contains(&Finding::PublicBehindPrivate(office)));
        // The vault itself is private: reachable, not flagged.
        assert!(!report
            .findings
            .contains(&Finding::PublicBehindPrivate(vault)));
    }

    #[test]
    fn detects_triangle_violations() {
        let mut b = VenueBuilder::new();
        let hub = b.add_partition("hub", PartitionKind::Public);
        let (mut sides, mut doors) = (Vec::new(), Vec::new());
        for i in 0..3 {
            let s = b.add_partition(&format!("s{i}"), PartitionKind::Public);
            let d = b.add_door(
                &format!("d{i}"),
                DoorKind::Public,
                AtiList::always_open(),
                Point::ORIGIN,
            );
            b.connect(d, Connection::TwoWay(hub, s)).unwrap();
            sides.push(s);
            doors.push(d);
        }
        b.set_distance(hub, doors[0], doors[1], 100.0).unwrap();
        b.set_distance(hub, doors[0], doors[2], 1.0).unwrap();
        b.set_distance(hub, doors[1], doors[2], 1.0).unwrap();
        let report = audit(&b.build().unwrap(), hub);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::TriangleViolation { .. })));
        assert!(report.to_string().contains("triangle"));
    }

    #[test]
    fn generated_mall_is_structurally_sound() {
        // The synthetic mall's only expected findings are its locked roof
        // doors (tested from the synthetic crate side as well).
        let ex = crate::paper_example::build();
        let report = audit(&ex.space, ex.v(3));
        assert!(report.findings.is_empty(), "unexpected findings: {report}");
    }
}
