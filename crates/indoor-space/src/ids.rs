//! Dense integer identifiers for venue entities.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw dense index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            #[must_use]
            pub fn from_index(i: usize) -> Self {
                $name(i as $repr)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an indoor partition (a vertex of the IT-Graph).
    PartitionId,
    "v",
    u32
);
id_type!(
    /// Identifier of a door (an edge label of the IT-Graph).
    DoorId,
    "d",
    u32
);
id_type!(
    /// Identifier of a floor in a multi-floor venue.
    FloorId,
    "F",
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let p = PartitionId::from_index(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "v7");
        assert_eq!(DoorId(3).to_string(), "d3");
        assert_eq!(FloorId(2).to_string(), "F2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(DoorId(1) < DoorId(2));
        assert!(PartitionId(10) > PartitionId(9));
    }

    #[test]
    fn serde_is_transparent() {
        assert_eq!(serde_json::to_string(&DoorId(5)).unwrap(), "5");
        let d: DoorId = serde_json::from_str("5").unwrap();
        assert_eq!(d, DoorId(5));
    }
}
