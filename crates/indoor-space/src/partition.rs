//! Partition records.

use indoor_geom::Polygon;
use serde::{Deserialize, Serialize};

use crate::{FloorId, PartitionId};

/// The paper's partition types (`p-type`), extended with an explicit outdoor
/// kind for the `v0` vertex of the IT-Graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionKind {
    /// `PBP` — a public partition; paths may traverse it freely.
    Public,
    /// `PRP` — a private partition; traversal is forbidden unless it contains
    /// the source or target point.
    Private,
    /// The outdoor space (`v0` in the paper's Figure 2). Routing never passes
    /// through it; it exists so entrance doors have a second side.
    Outdoor,
}

impl PartitionKind {
    /// The paper's abbreviation.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            PartitionKind::Public => "PBP",
            PartitionKind::Private => "PRP",
            PartitionKind::Outdoor => "OUT",
        }
    }

    /// Whether a path may pass *through* this partition (rule 2 of the ITSPQ
    /// definition allows only public partitions as intermediates).
    #[must_use]
    pub fn traversable(self) -> bool {
        matches!(self, PartitionKind::Public)
    }
}

/// A partition of the venue: the `(IDv, p-type, DM)` vertex label of the
/// IT-Graph plus its footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionRecord {
    /// Dense identifier.
    pub id: PartitionId,
    /// Human-readable name (e.g. `"v16"` or `"hall 2/3"`).
    pub name: String,
    /// `p-type`: public, private or outdoor.
    pub kind: PartitionKind,
    /// Floor hosting the partition.
    pub floor: FloorId,
    /// Optional polygon footprint in the floor's local frame.
    pub polygon: Option<Polygon>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_and_traversability() {
        assert_eq!(PartitionKind::Public.abbrev(), "PBP");
        assert_eq!(PartitionKind::Private.abbrev(), "PRP");
        assert_eq!(PartitionKind::Outdoor.abbrev(), "OUT");
        assert!(PartitionKind::Public.traversable());
        assert!(!PartitionKind::Private.traversable());
        assert!(!PartitionKind::Outdoor.traversable());
    }
}
