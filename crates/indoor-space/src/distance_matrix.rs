//! Intra-partition door-to-door distance matrices.

use serde::{Deserialize, Serialize};

use crate::{DoorId, SpaceError};

/// The `DM` vertex label of the IT-Graph: for one partition, the walking
/// distance between every pair of its doors.
///
/// Distances are symmetric with a zero diagonal. The paper stores `null` for
/// single-door partitions; here a 1×1 zero matrix plays that role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    /// The partition's doors in ascending id order.
    doors: Vec<DoorId>,
    /// Row-major `n × n` distances in metres.
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix for `doors` (sorted and deduplicated internally) using
    /// the provided distance function.
    ///
    /// # Errors
    /// Returns [`SpaceError::InvalidDistance`] if the function produces a
    /// negative or non-finite distance.
    pub fn build(
        doors: Vec<DoorId>,
        mut d: impl FnMut(DoorId, DoorId) -> f64,
    ) -> Result<Self, SpaceError> {
        Self::build_indexed(doors, |doors, i, j| d(doors[i], doors[j]))
    }

    /// Like [`DistanceMatrix::build`], but the distance function receives the
    /// sorted door slice plus the *positions* of the pair within it. Callers
    /// that precompute distances row-by-row (the builder's one-to-many
    /// geodesic path) index straight into their tables instead of re-deriving
    /// positions from door ids on every pair.
    ///
    /// # Errors
    /// Returns [`SpaceError::InvalidDistance`] if the function produces a
    /// negative or non-finite distance.
    pub fn build_indexed(
        mut doors: Vec<DoorId>,
        mut d: impl FnMut(&[DoorId], usize, usize) -> f64,
    ) -> Result<Self, SpaceError> {
        doors.sort_unstable();
        doors.dedup();
        // Dedup can leave excess capacity behind; the matrix is immutable from
        // here on, so drop it — `heap_bytes` must reflect what is kept alive,
        // not what construction briefly used.
        doors.shrink_to_fit();
        let n = doors.len();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = d(&doors, i, j);
                if !v.is_finite() || v < 0.0 {
                    return Err(SpaceError::InvalidDistance {
                        a: doors[i],
                        b: doors[j],
                        value: v,
                    });
                }
                dist[i * n + j] = v;
                dist[j * n + i] = v;
            }
        }
        Ok(DistanceMatrix { doors, dist })
    }

    /// The doors covered by this matrix, in ascending id order.
    #[must_use]
    pub fn doors(&self) -> &[DoorId] {
        &self.doors
    }

    /// Number of doors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doors.len()
    }

    /// Whether the matrix covers no doors (a door-less partition).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doors.is_empty()
    }

    /// The index of `door` within the matrix, if present.
    #[must_use]
    pub fn position(&self, door: DoorId) -> Option<usize> {
        self.doors.binary_search(&door).ok()
    }

    /// The walking distance between two doors of the partition, or `None` if
    /// either door does not belong to it.
    #[must_use]
    pub fn distance(&self, a: DoorId, b: DoorId) -> Option<f64> {
        let (i, j) = (self.position(a)?, self.position(b)?);
        Some(self.dist[i * self.doors.len() + j])
    }

    /// Heap bytes used by this matrix (for the paper's memory-cost metric).
    ///
    /// Counts live elements (`len`), not allocation capacity: the metric must
    /// not be inflated by whatever growth slack the construction path left
    /// behind. (`build` also shrinks its vectors, so the two views coincide
    /// for matrices it produced.)
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.doors.len() * std::mem::size_of::<DoorId>()
            + self.dist.len() * std::mem::size_of::<f64>()
    }

    /// Verifies the triangle inequality within the matrix up to `tol` metres;
    /// returns the first violating triple if any. Geometric venues satisfy
    /// this; explicitly-specified matrices may not, which is worth surfacing.
    ///
    /// Only ordered pairs `i < j` with `k ∉ {i, j}` are checked: the matrix is
    /// symmetric with a zero diagonal, so `j < i` duplicates each check and
    /// degenerate triples (`k == i`, `k == j`, or `i == j`) reduce to
    /// `d ≤ d + tol`, which cannot violate. This halves the work on large
    /// matrices without changing what is detected.
    #[must_use]
    pub fn triangle_violation(&self, tol: f64) -> Option<(DoorId, DoorId, DoorId)> {
        let n = self.doors.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let direct = self.dist[i * n + j];
                for k in 0..n {
                    if k == i || k == j {
                        continue;
                    }
                    if direct > self.dist[i * n + k] + self.dist[k * n + j] + tol {
                        return Some((self.doors[i], self.doors[j], self.doors[k]));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistanceMatrix {
        // Paper's v16: (d3,d17)=2, (d3,d21)=4, (d17,d21)=5.
        DistanceMatrix::build(vec![DoorId(3), DoorId(17), DoorId(21)], |a, b| {
            match (a.0, b.0) {
                (3, 17) | (17, 3) => 2.0,
                (3, 21) | (21, 3) => 4.0,
                (17, 21) | (21, 17) => 5.0,
                _ => 0.0,
            }
        })
        .unwrap()
    }

    #[test]
    fn lookups_are_symmetric_with_zero_diagonal() {
        let dm = sample();
        assert_eq!(dm.len(), 3);
        assert_eq!(dm.distance(DoorId(3), DoorId(17)), Some(2.0));
        assert_eq!(dm.distance(DoorId(17), DoorId(3)), Some(2.0));
        assert_eq!(dm.distance(DoorId(3), DoorId(21)), Some(4.0));
        assert_eq!(dm.distance(DoorId(17), DoorId(21)), Some(5.0));
        assert_eq!(dm.distance(DoorId(3), DoorId(3)), Some(0.0));
        assert_eq!(dm.distance(DoorId(3), DoorId(99)), None);
    }

    #[test]
    fn build_sorts_and_dedups() {
        let dm = DistanceMatrix::build(vec![DoorId(5), DoorId(1), DoorId(5)], |_, _| 1.0).unwrap();
        assert_eq!(dm.doors(), &[DoorId(1), DoorId(5)]);
        assert_eq!(dm.len(), 2);
    }

    #[test]
    fn rejects_invalid_distances() {
        let err = DistanceMatrix::build(vec![DoorId(0), DoorId(1)], |_, _| -1.0);
        assert!(matches!(err, Err(SpaceError::InvalidDistance { .. })));
        let err = DistanceMatrix::build(vec![DoorId(0), DoorId(1)], |_, _| f64::NAN);
        assert!(err.is_err());
    }

    #[test]
    fn single_door_matrix_is_trivial() {
        let dm = DistanceMatrix::build(vec![DoorId(7)], |_, _| unreachable!()).unwrap();
        assert_eq!(dm.distance(DoorId(7), DoorId(7)), Some(0.0));
        assert!(!dm.is_empty());
    }

    #[test]
    fn triangle_check() {
        // The sample (2, 4, 5) satisfies the triangle inequality: 5 <= 2+4.
        assert_eq!(sample().triangle_violation(1e-9), None);
        // 10 > 1 + 1 violates it.
        let bad = DistanceMatrix::build(vec![DoorId(0), DoorId(1), DoorId(2)], |a, b| {
            if (a.0, b.0) == (0, 2) || (a.0, b.0) == (2, 0) {
                10.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert!(bad.triangle_violation(1e-9).is_some());
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(sample().heap_bytes() >= 3 * 3 * 8);
    }

    #[test]
    fn heap_bytes_reports_live_elements_not_capacity() {
        // A doors vec with huge growth slack: the metric must not see it.
        let mut doors = Vec::with_capacity(1024);
        doors.extend([DoorId(0), DoorId(1)]);
        let dm = DistanceMatrix::build(doors, |_, _| 1.0).unwrap();
        let expected = 2 * std::mem::size_of::<DoorId>() + 2 * 2 * std::mem::size_of::<f64>();
        assert_eq!(dm.heap_bytes(), expected);
        // Dedup shrinks too: 3 entries collapse to 2, capacity slack dropped.
        let dm = DistanceMatrix::build(vec![DoorId(5), DoorId(1), DoorId(5)], |_, _| 1.0).unwrap();
        assert_eq!(dm.heap_bytes(), expected);
    }

    #[test]
    fn triangle_check_skips_degenerate_triples() {
        // A matrix whose only "violations" would come from degenerate triples
        // under a negative tolerance reading: all real triples are fine.
        let dm = DistanceMatrix::build(vec![DoorId(0), DoorId(1)], |_, _| 3.0).unwrap();
        assert_eq!(dm.triangle_violation(0.0), None);
        // Violations are still found, and the witness names the short-cut
        // pair (i, j) plus the intermediate k that exposes it.
        let bad = DistanceMatrix::build(vec![DoorId(0), DoorId(1), DoorId(2)], |a, b| {
            if (a.0, b.0) == (0, 2) || (a.0, b.0) == (2, 0) {
                10.0
            } else {
                1.0
            }
        })
        .unwrap();
        let (i, j, k) = bad.triangle_violation(1e-9).unwrap();
        assert_eq!((i, j, k), (DoorId(0), DoorId(2), DoorId(1)));
    }

    #[test]
    fn build_indexed_matches_build() {
        let by_id = sample();
        let by_index = DistanceMatrix::build_indexed(
            vec![DoorId(21), DoorId(3), DoorId(17)],
            |doors, i, j| by_id.distance(doors[i], doors[j]).unwrap(),
        )
        .unwrap();
        assert_eq!(by_id, by_index);
    }
}
