//! The running example of the ITSPQ paper: Figure 1's floor plan with the
//! Table I door ATIs and the query points p1–p4.
//!
//! The 4-page paper does not publish exact coordinates, so positions are
//! chosen to satisfy every quantity it does state:
//!
//! * Table I ATIs for doors d1–d21;
//! * `D2P(d3) = {v3, v16}`, `D2P⊳(d3) = v3`, `D2P⊲(d3) = v16` (d3 is one-way);
//! * `P2D(v3) = P2D⊳(v3) = {d1, d2, d3, d5, d6}`, `P2D⊲(v3) = {d1, d2, d5, d6}`;
//! * v1 is private with the single door d1; v16 is public with the DM entries
//!   `(d3,d17) = 2`, `(d3,d21) = 4`, `(d17,d21) = 5`;
//! * d7 is a private door (`PRD`), d3 a public one (`PBD`);
//! * Example 1: the candidate paths `(p3, d15, d16, p4)` of length **10 m**
//!   (through the private partition v15) and `(p3, d18, p4)` of length
//!   **12 m**; `ITSPQ(p3, p4, 9:00)` must return the latter and
//!   `ITSPQ(p3, p4, 23:30)` must return no path (d18 closes at 23:00).
//!
//! Topology not pinned down by the paper (the remaining rooms and hallways) is
//! filled in consistently with Figure 1's look: v3 and v16/v12 are hallways,
//! v1/v7/v11/v15 are private, d14 is the always-open building entrance to the
//! outdoor partition v0.

use indoor_geom::Point;
use indoor_time::AtiList;

use crate::{
    Connection, DoorId, DoorKind, IndoorPoint, IndoorSpace, PartitionId, PartitionKind,
    VenueBuilder,
};

/// The built example: the venue plus handles to its named entities.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// The assembled venue.
    pub space: IndoorSpace,
    /// Query point p1 (in hallway v3).
    pub p1: IndoorPoint,
    /// Query point p2 (in room v10).
    pub p2: IndoorPoint,
    /// Query point p3 (in room v13) — source of Example 1.
    pub p3: IndoorPoint,
    /// Query point p4 (in room v14) — target of Example 1.
    pub p4: IndoorPoint,
}

impl PaperExample {
    /// Partition `v{n}` (0 = outdoors, 1–17 as in Figure 1).
    #[must_use]
    pub fn v(&self, n: u32) -> PartitionId {
        assert!(n <= 17, "the example has partitions v0..v17");
        PartitionId(n)
    }

    /// Door `d{n}` (1–21 as in Table I).
    #[must_use]
    pub fn d(&self, n: u32) -> DoorId {
        assert!((1..=21).contains(&n), "the example has doors d1..d21");
        DoorId(n - 1)
    }
}

/// Table I: the ATIs of doors d1–d21.
#[must_use]
pub fn table1_atis() -> Vec<AtiList> {
    vec![
        AtiList::hm(&[((5, 0), (23, 0))]),                     // d1
        AtiList::hm(&[((8, 0), (16, 0))]),                     // d2
        AtiList::hm(&[((6, 0), (23, 0))]),                     // d3
        AtiList::hm(&[((9, 0), (18, 0))]),                     // d4
        AtiList::hm(&[((6, 30), (23, 0))]),                    // d5
        AtiList::hm(&[((8, 0), (16, 0))]),                     // d6
        AtiList::hm(&[((6, 0), (23, 30))]),                    // d7
        AtiList::hm(&[((9, 0), (18, 0))]),                     // d8
        AtiList::hm(&[((0, 0), (6, 0)), ((6, 30), (23, 0))]),  // d9
        AtiList::hm(&[((8, 0), (16, 0))]),                     // d10
        AtiList::hm(&[((5, 0), (23, 0))]),                     // d11
        AtiList::hm(&[((5, 0), (23, 0))]),                     // d12
        AtiList::hm(&[((5, 0), (17, 0)), ((18, 0), (23, 0))]), // d13
        AtiList::hm(&[((0, 0), (24, 0))]),                     // d14
        AtiList::hm(&[((8, 0), (16, 0))]),                     // d15
        AtiList::hm(&[((8, 0), (17, 0))]),                     // d16
        AtiList::hm(&[((0, 0), (24, 0))]),                     // d17
        AtiList::hm(&[((0, 0), (23, 0))]),                     // d18
        AtiList::hm(&[((8, 0), (16, 0))]),                     // d19
        AtiList::hm(&[((5, 0), (23, 0))]),                     // d20
        AtiList::hm(&[((8, 0), (16, 0))]),                     // d21
    ]
}

/// Builds the running example.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build() -> PaperExample {
    let mut b = VenueBuilder::new();

    // Partitions v0 (outdoors) .. v17; ids align with their numbers.
    let kinds: [(u32, PartitionKind); 18] = [
        (0, PartitionKind::Outdoor),
        (1, PartitionKind::Private), // v1: office with single door d1
        (2, PartitionKind::Public),
        (3, PartitionKind::Public), // v3: upper hallway
        (4, PartitionKind::Public),
        (5, PartitionKind::Public),
        (6, PartitionKind::Public),
        (7, PartitionKind::Private), // v7: security zone behind d7
        (8, PartitionKind::Public),
        (9, PartitionKind::Public),
        (10, PartitionKind::Public),
        (11, PartitionKind::Private), // v11: storage with single door d11
        (12, PartitionKind::Public),  // v12: lower hallway
        (13, PartitionKind::Public),  // v13: hosts p3
        (14, PartitionKind::Public),  // v14: hosts p4
        (15, PartitionKind::Private), // v15: private shortcut of Example 1
        (16, PartitionKind::Public),  // v16: hallway with the DM example
        (17, PartitionKind::Public),
    ];
    let mut vs = Vec::with_capacity(18);
    for (n, kind) in kinds {
        vs.push(b.add_partition(&format!("v{n}"), kind));
    }

    let atis = table1_atis();
    // Door positions. The Example-1 cluster is collinear so that the two
    // candidate path lengths are exactly 10 m and 12 m:
    //   p3 = (0,0), d15 = (3,0), d16 = (7,0), p4 = (10,0), d18 = (-1,0).
    let positions: [Point; 21] = [
        Point::new(5.0, 35.0),  // d1
        Point::new(12.0, 35.0), // d2
        Point::new(6.0, 28.0),  // d3
        Point::new(16.0, 32.0), // d4
        Point::new(14.0, 30.0), // d5
        Point::new(10.0, 30.0), // d6
        Point::new(20.0, 36.0), // d7
        Point::new(22.0, 30.0), // d8
        Point::new(26.0, 24.0), // d9
        Point::new(14.0, 26.0), // d10
        Point::new(30.0, 12.0), // d11
        Point::new(28.0, 16.0), // d12
        Point::new(18.0, 4.0),  // d13
        Point::new(34.0, 18.0), // d14
        Point::new(3.0, 0.0),   // d15
        Point::new(7.0, 0.0),   // d16
        Point::new(7.0, 26.0),  // d17
        Point::new(-1.0, 0.0),  // d18
        Point::new(24.0, 14.0), // d19
        Point::new(2.0, 6.0),   // d20
        Point::new(10.0, 24.0), // d21
    ];
    let mut ds = Vec::with_capacity(21);
    for (i, atis) in atis.into_iter().enumerate() {
        // The paper marks d7 as the example private door (Door Table).
        let kind = if i + 1 == 7 {
            DoorKind::Private
        } else {
            DoorKind::Public
        };
        ds.push(b.add_door(&format!("d{}", i + 1), kind, atis, positions[i]));
    }
    let v = |n: usize| vs[n];
    let d = |n: usize| ds[n - 1];

    let two_way: [(usize, usize, usize); 20] = [
        (1, 1, 3),    // d1: v1 - v3
        (2, 2, 3),    // d2: v2 - v3
        (4, 2, 6),    // d4: v2 - v6
        (5, 3, 4),    // d5: v3 - v4
        (6, 3, 5),    // d6: v3 - v5
        (7, 4, 7),    // d7: v4 - v7 (private door into the security zone)
        (8, 4, 8),    // d8: v4 - v8
        (9, 8, 17),   // d9: v8 - v17
        (10, 5, 6),   // d10: v5 - v6
        (11, 9, 11),  // d11: v9 - v11
        (12, 9, 10),  // d12: v9 - v10
        (13, 14, 17), // d13: v14 - v17
        (14, 10, 0),  // d14: v10 - v0 (building entrance)
        (15, 13, 15), // d15: v13 - v15
        (16, 15, 14), // d16: v15 - v14
        (17, 12, 16), // d17: v16 - v12
        (18, 13, 14), // d18: v13 - v14
        (19, 10, 12), // d19: v10 - v12
        (20, 12, 13), // d20: v12 - v13
        (21, 9, 16),  // d21: v9 - v16
    ];
    for (door, a, bb) in two_way {
        b.connect(d(door), Connection::TwoWay(v(a), v(bb)))
            // itspq-lint: allow(no-panic-in-lib, "Figure 1 literals: every id is declared above and used once")
            .expect("example connections are valid");
    }
    // d3 is directional: usable only from v3 into v16 (Figure 1's arrow).
    b.connect(
        d(3),
        Connection::OneWay {
            from: v(3),
            to: v(16),
        },
    )
    // itspq-lint: allow(no-panic-in-lib, "Figure 1 literal: d3, v3 and v16 are declared above")
    .expect("example connections are valid");

    // The DM entries the paper states for v16 (Partition Table of Figure 2).
    // itspq-lint: allow(no-panic-in-lib, "Figure 2 literals: doors and distances are the paper's own table")
    b.set_distance(v(16), d(3), d(17), 2.0).expect("v16 DM");
    // itspq-lint: allow(no-panic-in-lib, "Figure 2 literals: doors and distances are the paper's own table")
    b.set_distance(v(16), d(3), d(21), 4.0).expect("v16 DM");
    // itspq-lint: allow(no-panic-in-lib, "Figure 2 literals: doors and distances are the paper's own table")
    b.set_distance(v(16), d(17), d(21), 5.0).expect("v16 DM");

    // itspq-lint: allow(no-panic-in-lib, "the checked-in Figure 1 venue builds; the umbrella test suite exercises it")
    let space = b.build().expect("the paper example is a valid venue");
    PaperExample {
        p1: IndoorPoint::new(v(3), Point::new(8.0, 31.0)),
        p2: IndoorPoint::new(v(10), Point::new(30.0, 17.0)),
        p3: IndoorPoint::new(v(13), Point::new(0.0, 0.0)),
        p4: IndoorPoint::new(v(14), Point::new(10.0, 0.0)),
        space,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_time::TimeOfDay;

    #[test]
    fn sizes() {
        let ex = build();
        assert_eq!(ex.space.num_partitions(), 18); // v0..v17
        assert_eq!(ex.space.num_doors(), 21); // d1..d21
    }

    #[test]
    fn section2_mapping_examples() {
        // "we have D2P(d3) = {v3, v16}, D2P⊳(d3) = v3, and D2P⊲(d3) = v16.
        //  Also, P2D(v3) = P2D⊳(v3) = {d1,d2,d3,d5,d6} whereas
        //  P2D⊲(v3) = {d1,d2,d5,d6}."
        let ex = build();
        let s = &ex.space;
        assert_eq!(s.d2p(ex.d(3)), vec![ex.v(3), ex.v(16)]);
        assert_eq!(s.d2p_leaveable(ex.d(3)), &[ex.v(3)]);
        assert_eq!(s.d2p_enterable(ex.d(3)), &[ex.v(16)]);
        let doors = |ns: &[u32]| ns.iter().map(|&n| ex.d(n)).collect::<Vec<_>>();
        assert_eq!(s.p2d(ex.v(3)), doors(&[1, 2, 3, 5, 6]));
        assert_eq!(s.p2d_leaveable(ex.v(3)), doors(&[1, 2, 3, 5, 6]));
        assert_eq!(s.p2d_enterable(ex.v(3)), doors(&[1, 2, 5, 6]));
    }

    #[test]
    fn v16_distance_matrix_matches_partition_table() {
        let ex = build();
        let s = &ex.space;
        assert_eq!(s.door_to_door(ex.v(16), ex.d(3), ex.d(17)), Some(2.0));
        assert_eq!(s.door_to_door(ex.v(16), ex.d(3), ex.d(21)), Some(4.0));
        assert_eq!(s.door_to_door(ex.v(16), ex.d(17), ex.d(21)), Some(5.0));
        assert_eq!(s.p2d(ex.v(16)), vec![ex.d(3), ex.d(17), ex.d(21)]);
    }

    #[test]
    fn door_table_types() {
        let ex = build();
        assert_eq!(ex.space.door(ex.d(7)).kind, DoorKind::Private);
        assert_eq!(ex.space.door(ex.d(3)).kind, DoorKind::Public);
    }

    #[test]
    fn v1_is_private_with_single_door() {
        let ex = build();
        assert_eq!(ex.space.partition(ex.v(1)).kind, PartitionKind::Private);
        assert_eq!(ex.space.p2d(ex.v(1)), &[ex.d(1)]);
        assert_eq!(ex.space.distance_matrix(ex.v(1)).len(), 1);
    }

    #[test]
    fn example1_candidate_path_lengths() {
        let ex = build();
        let s = &ex.space;
        // (p3, d15, d16, p4): |p3,d15| + DM(v15, d15, d16) + |d16,p4| = 10 m.
        let via_v15 = s.point_to_door(&ex.p3, ex.d(15)).unwrap()
            + s.door_to_door(ex.v(15), ex.d(15), ex.d(16)).unwrap()
            + s.point_to_door(&ex.p4, ex.d(16)).unwrap();
        assert!((via_v15 - 10.0).abs() < 1e-9, "got {via_v15}");
        // (p3, d18, p4): |p3,d18| + |d18,p4| = 12 m.
        let via_d18 =
            s.point_to_door(&ex.p3, ex.d(18)).unwrap() + s.point_to_door(&ex.p4, ex.d(18)).unwrap();
        assert!((via_d18 - 12.0).abs() < 1e-9, "got {via_d18}");
        // v15 is private.
        assert_eq!(s.partition(ex.v(15)).kind, PartitionKind::Private);
    }

    #[test]
    fn table1_spot_checks() {
        let ex = build();
        let open = |n, h, m| ex.space.door(ex.d(n)).atis.is_open(TimeOfDay::hm(h, m));
        assert!(open(1, 5, 0) && !open(1, 23, 0));
        assert!(open(9, 5, 59) && !open(9, 6, 15) && open(9, 6, 30));
        assert!(open(14, 0, 0) && open(14, 23, 59));
        assert!(open(18, 22, 59) && !open(18, 23, 30)); // Example 1's 23:30 query
        assert!(open(13, 16, 59) && !open(13, 17, 30) && open(13, 18, 0));
    }

    #[test]
    fn checkpoints_cover_table1() {
        let ex = build();
        let cps = ex.space.checkpoints();
        for t in [
            TimeOfDay::MIDNIGHT,
            TimeOfDay::hm(5, 0),
            TimeOfDay::hm(6, 0),
            TimeOfDay::hm(6, 30),
            TimeOfDay::hm(8, 0),
            TimeOfDay::hm(9, 0),
            TimeOfDay::hm(16, 0),
            TimeOfDay::hm(17, 0),
            TimeOfDay::hm(18, 0),
            TimeOfDay::hm(23, 0),
            TimeOfDay::hm(23, 30),
        ] {
            assert!(cps.times().contains(&t), "missing checkpoint {t}");
        }
    }

    #[test]
    fn accessor_guards() {
        let ex = build();
        assert_eq!(ex.v(0), PartitionId(0));
        assert_eq!(ex.d(21), DoorId(20));
    }

    #[test]
    #[should_panic(expected = "doors d1..d21")]
    fn door_accessor_rejects_zero() {
        let ex = build();
        let _ = ex.d(0);
    }
}
