//! Property-based tests of venue construction: random connection patterns
//! must always yield mutually consistent accessibility mappings.

use indoor_geom::Point;
use indoor_space::{
    audit, plan_text, Connection, DoorId, DoorKind, IndoorSpace, PartitionId, PartitionKind,
    VenueBuilder,
};
use indoor_time::AtiList;
use proptest::prelude::*;

/// A random connection spec: door kind, ATI choice and how it connects two
/// partition indices.
#[derive(Debug, Clone)]
struct ConnSpec {
    a: usize,
    b: usize,
    one_way: bool,
    boundary: bool,
    private: bool,
    ati_kind: u8,
}

fn arb_conn(n_parts: usize) -> impl Strategy<Value = ConnSpec> {
    (
        0..n_parts,
        0..n_parts,
        any::<bool>(),
        prop::bool::weighted(0.1),
        any::<bool>(),
        0u8..4,
    )
        .prop_map(|(a, b, one_way, boundary, private, ati_kind)| ConnSpec {
            a,
            b,
            one_way,
            boundary,
            private,
            ati_kind,
        })
}

fn build(n_parts: usize, specs: &[ConnSpec]) -> IndoorSpace {
    let mut b = VenueBuilder::new();
    let parts: Vec<PartitionId> = (0..n_parts)
        .map(|i| {
            let kind = if i % 5 == 4 {
                PartitionKind::Private
            } else {
                PartitionKind::Public
            };
            b.add_partition(&format!("p{i}"), kind)
        })
        .collect();
    for (i, spec) in specs.iter().enumerate() {
        let atis = match spec.ati_kind {
            0 => AtiList::always_open(),
            1 => AtiList::never_open(),
            2 => AtiList::hm(&[((8, 0), (16, 0))]),
            _ => AtiList::hm(&[((0, 0), (6, 0)), ((9, 30), (22, 0))]),
        };
        let kind = if spec.private {
            DoorKind::Private
        } else {
            DoorKind::Public
        };
        let door = b.add_door(
            &format!("d{i}"),
            kind,
            atis,
            Point::new(i as f64, (i % 7) as f64),
        );
        let conn = if spec.boundary || spec.a == spec.b {
            Connection::Boundary(parts[spec.a])
        } else if spec.one_way {
            Connection::OneWay {
                from: parts[spec.a],
                to: parts[spec.b],
            }
        } else {
            Connection::TwoWay(parts[spec.a], parts[spec.b])
        };
        b.connect(door, conn).expect("valid random connection");
    }
    b.build().expect("random venues build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// P2D⊳ / D2P⊳ and P2D⊲ / D2P⊲ are dual relations, and P2D is their union.
    #[test]
    fn mappings_are_dual(n_parts in 2usize..8,
                         specs in prop::collection::vec(arb_conn(8), 1..16)) {
        let specs: Vec<_> = specs.into_iter()
            .map(|mut s| { s.a %= n_parts; s.b %= n_parts; s })
            .collect();
        let space = build(n_parts, &specs);
        for p in space.partitions() {
            for &d in space.p2d_leaveable(p.id) {
                prop_assert!(space.d2p_leaveable(d).contains(&p.id),
                    "P2D⊳/D2P⊳ duality broken at {} / {}", p.id, d);
            }
            for &d in space.p2d_enterable(p.id) {
                prop_assert!(space.d2p_enterable(d).contains(&p.id));
            }
            // P2D = leaveable ∪ enterable.
            for &d in space.p2d(p.id) {
                prop_assert!(space.p2d_leaveable(p.id).contains(&d)
                    || space.p2d_enterable(p.id).contains(&d));
            }
        }
        for i in 0..space.num_doors() {
            let d = DoorId::from_index(i);
            for &p in space.d2p_leaveable(d) {
                prop_assert!(space.p2d_leaveable(p).contains(&d));
            }
            for &p in space.d2p_enterable(d) {
                prop_assert!(space.p2d_enterable(p).contains(&d));
            }
            let pair = space.d2p(d);
            prop_assert!((1..=2).contains(&pair.len()),
                "a door connects one or two partitions, got {}", pair.len());
        }
    }

    /// Distance matrices are symmetric with zero diagonals and cover exactly
    /// the partition's doors.
    #[test]
    fn distance_matrices_are_consistent(n_parts in 2usize..8,
                                        specs in prop::collection::vec(arb_conn(8), 1..16)) {
        let specs: Vec<_> = specs.into_iter()
            .map(|mut s| { s.a %= n_parts; s.b %= n_parts; s })
            .collect();
        let space = build(n_parts, &specs);
        for p in space.partitions() {
            let dm = space.distance_matrix(p.id);
            prop_assert_eq!(dm.doors(), space.p2d(p.id));
            for &x in dm.doors() {
                prop_assert_eq!(dm.distance(x, x), Some(0.0));
                for &y in dm.doors() {
                    let xy = dm.distance(x, y).unwrap();
                    let yx = dm.distance(y, x).unwrap();
                    prop_assert!((xy - yx).abs() < 1e-12);
                    prop_assert!(xy >= 0.0);
                }
            }
        }
    }

    /// Serde round trips preserve random venues exactly.
    #[test]
    fn serde_round_trip(n_parts in 2usize..6,
                        specs in prop::collection::vec(arb_conn(6), 1..10)) {
        let specs: Vec<_> = specs.into_iter()
            .map(|mut s| { s.a %= n_parts; s.b %= n_parts; s })
            .collect();
        let space = build(n_parts, &specs);
        let json = serde_json::to_string(&space).unwrap();
        let back: IndoorSpace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(space, back);
    }

    /// The audit never panics and flags every never-open door.
    #[test]
    fn audit_is_total(n_parts in 2usize..8,
                      specs in prop::collection::vec(arb_conn(8), 1..16)) {
        let specs: Vec<_> = specs.into_iter()
            .map(|mut s| { s.a %= n_parts; s.b %= n_parts; s })
            .collect();
        let space = build(n_parts, &specs);
        let report = audit::audit(&space, PartitionId(0));
        let never_open = space.doors().iter().filter(|d| d.atis.is_never_open()).count();
        let flagged = report
            .findings
            .iter()
            .filter(|f| matches!(f, audit::Finding::NeverOpenDoor(_)))
            .count();
        prop_assert_eq!(never_open, flagged);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Plan-text serialisation of random venues parses back to the same
    /// topology, kinds, ATIs and distance matrices.
    #[test]
    fn plan_text_round_trip(n_parts in 2usize..6,
                            specs in prop::collection::vec(arb_conn(6), 1..10)) {
        let specs: Vec<_> = specs.into_iter()
            .map(|mut s| { s.a %= n_parts; s.b %= n_parts; s })
            .collect();
        let space = build(n_parts, &specs);
        let text = plan_text::to_plan_text(&space);
        let again = plan_text::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(space.num_partitions(), again.num_partitions());
        prop_assert_eq!(space.num_doors(), again.num_doors());
        for (p, q) in space.partitions().iter().zip(again.partitions()) {
            prop_assert_eq!(p.kind, q.kind);
            prop_assert_eq!(space.p2d(p.id), again.p2d(q.id));
            prop_assert_eq!(space.p2d_leaveable(p.id), again.p2d_leaveable(q.id));
            prop_assert_eq!(space.p2d_enterable(p.id), again.p2d_enterable(q.id));
            prop_assert_eq!(space.distance_matrix(p.id), again.distance_matrix(q.id));
        }
        for (d, e) in space.doors().iter().zip(again.doors()) {
            prop_assert_eq!(&d.atis, &e.atis);
            prop_assert_eq!(d.kind, e.kind);
        }
    }
}
