//! Property-based parity of the two construction pipelines.
//!
//! `VenueBuilder::build` (indexed lookups, per-polygon `GeodesicSolver`,
//! parallel matrix fan-out) must produce *exactly* the same `IndoorSpace` —
//! topology maps, every distance matrix, checkpoints — as
//! `VenueBuilder::build_sequential` (per-pair `geodesic_distance`, one
//! partition at a time), on venues whose partitions carry random L- and
//! U-shaped polygons.

use indoor_geom::{Point, Polygon};
use indoor_space::{Connection, DistanceModel, DoorKind, PartitionKind, VenueBuilder};
use indoor_time::AtiList;
use proptest::prelude::*;

/// Parameters of one random non-convex partition polygon.
#[derive(Debug, Clone)]
struct ShapeSpec {
    /// U-shape when true, L-shape otherwise.
    u_shape: bool,
    w: f64,
    h: f64,
    fa: f64,
    fb: f64,
    /// Door positions as bounding-box fractions (a mix of interior,
    /// boundary-adjacent and outside-the-polygon samples).
    doors: Vec<(f64, f64)>,
}

fn shape_polygon(s: &ShapeSpec) -> Polygon {
    if s.u_shape {
        let sw = s.w * (0.2 + 0.3 * s.fa);
        let sd = s.h * (0.3 + 0.6 * s.fb);
        let sx0 = (s.w - sw) / 2.0;
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(s.w, 0.0),
            Point::new(s.w, s.h),
            Point::new(sx0 + sw, s.h),
            Point::new(sx0 + sw, s.h - sd),
            Point::new(sx0, s.h - sd),
            Point::new(sx0, s.h),
            Point::new(0.0, s.h),
        ])
        .expect("U-shape is simple")
    } else {
        let (nw, nh) = (s.w * (0.2 + 0.6 * s.fa), s.h * (0.2 + 0.6 * s.fb));
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(s.w, 0.0),
            Point::new(s.w, s.h - nh),
            Point::new(s.w - nw, s.h - nh),
            Point::new(s.w - nw, s.h),
            Point::new(0.0, s.h),
        ])
        .expect("L-shape is simple")
    }
}

fn arb_shape() -> impl Strategy<Value = ShapeSpec> {
    (
        any::<bool>(),
        20.0f64..80.0,
        20.0f64..80.0,
        0.0f64..1.0,
        0.0f64..1.0,
        prop::collection::vec((0.01f64..0.99, 0.01f64..0.99), 2..7),
    )
        .prop_map(|(u_shape, w, h, fa, fb, doors)| ShapeSpec {
            u_shape,
            w,
            h,
            fa,
            fb,
            doors,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fast and sequential pipelines agree exactly on random multi-partition
    /// geodesic venues, including explicit overrides.
    #[test]
    fn pipelines_agree_on_random_venues(
        shapes in prop::collection::vec(arb_shape(), 1..4),
        override_dist in 1.0f64..100.0,
    ) {
        let mut b = VenueBuilder::new();
        b.distance_model(DistanceModel::Geodesic);
        let mut overridable = None;
        for (si, s) in shapes.iter().enumerate() {
            let poly = shape_polygon(s);
            let hall = b.add_partition_on(
                &format!("hall{si}"),
                PartitionKind::Public,
                indoor_space::FloorId(0),
                Some(poly.clone()),
            );
            let mut prev = None;
            for (di, &(fx, fy)) in s.doors.iter().enumerate() {
                let pos = Point::new(fx * s.w, fy * s.h);
                let room = b.add_partition(&format!("room{si}.{di}"), PartitionKind::Public);
                let door = b.add_door(
                    &format!("d{si}.{di}"),
                    DoorKind::Public,
                    AtiList::hm(&[((8, 0), (20, 0))]),
                    pos,
                );
                b.connect(door, Connection::TwoWay(hall, room)).unwrap();
                if let Some(p) = prev {
                    if di % 2 == 0 {
                        b.set_distance(hall, p, door, override_dist).unwrap();
                    }
                }
                prev = Some(door);
            }
            overridable.get_or_insert(hall);
        }
        let fast = b.clone().build().unwrap();
        let threaded = b.clone().build_with_workers(4).unwrap();
        let slow = b.build_sequential().unwrap();
        prop_assert_eq!(&fast, &slow, "fast pipeline diverged from reference");
        prop_assert_eq!(&threaded, &slow, "output depends on worker count");
    }
}
