//! Order-free differential replay: door-level sharing's per-member
//! derivation.
//!
//! Door-level grouping batches queries that leave the *same source
//! partition* at compatible departure times but from **different source
//! points**. Floating-point addition is not associative, so a member's
//! answer cannot be recovered from the lead's labels by offset arithmetic —
//! instead, the lead's sweep records its complete relaxation log (a
//! [`Trace`]: one shared door-event stream plus a per-target leg stream)
//! and this module computes each member's *own* final labels from it.
//!
//! The key fact is that Dijkstra's **final** labels do not depend on the
//! priority-queue order: `dist[v]` is the minimum over relaxation chains of
//! bit-exact weight sums, and each sum is computed identically no matter
//! when its relaxation ran. So the member needs no heap at all — repeated
//! passes over the recorded relaxations converge to the member's label
//! fixpoint (one pass when the lead's order happens to be a valid schedule
//! for the member, a couple more when source legs reorder the frontier),
//! substituting only the member-specific inputs:
//!
//! * source→door legs are recomputed from the member's own point
//!   (`point_to_door`, cached per door); door-to-door and door-to-target
//!   weights are venue geometry, bit-identical by construction and reused
//!   from the trace;
//! * every deciding `TV_Check` verdict is the member's own: when the
//!   member's arrival lands inside the recorded constant-topology window
//!   `[lo, hi)` (the membership form of
//!   [`indoor_time::CheckpointSet::same_topology_interval`]) the lead's
//!   verdict transfers — same window, same verdict — for two `f64` compares
//!   instead of two binary searches; an arrival outside the window falls
//!   back to evaluating the door's ATIs at the member's own arrival, which
//!   *is* the engine's verdict for order-pure checkers.
//!
//! This transfer argument needs verdicts that are pure functions of the
//! arrival and topology views that do not depend on call order — true for
//! ITG/S and ITG/A in [`crate::AsynMode::Exact`] (static leaveable lists,
//! per-interval view lookups), and false for the paper-faithful
//! [`crate::AsynMode::Faithful`] cursor, whose verdict depends on the
//! sequence of preceding checks. The server therefore only records traces
//! for the pure engines; Faithful groups serve non-identical members
//! per-query.
//!
//! What *does* depend on execution order is which relaxations a real search
//! attempts. Exact float ties are resolved, not bailed on: a label's writer
//! in the member's own run is the earliest relaxation achieving the final
//! value, parents relax at their settles, and the heap settles equal labels
//! in door-index order — so the winning predecessor is the minimum of the
//! deterministic key `(parent label, parent index)` (source legs precede
//! every settle). After the labels converge, three certificates establish
//! that the member's own search would have attempted exactly the recorded
//! relaxation set:
//!
//! * **frontier containment** — every door the member settles
//!   (`dist < dist(target)`) must be lead-settled, so its full relaxation
//!   star is on record;
//! * **entry agreement** — each such door must be entered through the
//!   lead's recorded partition, so the member's expansion excludes the same
//!   neighbor;
//! * **omission certificate** — the sweep's settled-skip (Algorithm 1 line
//!   26) drops relaxations into already-settled doors from the record, and
//!   the member's different settle order can make it attempt edges the lead
//!   skipped. Every such pair — an expansion by a member-settled door into
//!   a door the lead settled earlier — is re-checked against the real
//!   door-to-door weight: the unrecorded edge must not improve (or
//!   ambiguously tie) the member's labels.
//!
//! Any failed certificate aborts with a [`ReplayBail`] and the server
//! answers that member with an ordinary per-query search — divergence can
//! cost time, never correctness. A derivation that passes every certificate
//! is a proof that the member's own Algorithm 1 run computes exactly these
//! labels, so the reconstructed path (or certified "no such routes") is
//! byte-identical to per-query execution.
//!
//! Replay cost is pay-as-you-go: no priority queue, no `TV_Check` binary
//! searches, no door-to-door weight lookups beyond the omission pairs, and
//! geodesics only for the member's own source legs (plus the rare target
//! legs the sweep skipped after finalising the member early). All label
//! arrays come from a pooled [`ReplayScratch`] whose reset is proportional
//! to what the previous replay actually touched; the per-group
//! [`LeadIndex`] (settle order, settled set, entry partitions) is built
//! once and shared by every member.

use indoor_space::{DoorId, IndoorSpace, PartitionId};

use crate::framework::{reconstruct, DoorEvent, PrevEntry, Trace};
use crate::{ItspqConfig, Path, Query};

/// Upper bound on label-fixpoint passes over the trace. Each extra pass is
/// only needed when an improvement discovered late in the stream feeds a
/// relaxation recorded earlier; real source-leg perturbations settle in two
/// or three passes, so hitting the cap means the member's frontier is
/// shaped nothing like the lead's and per-query execution is cheaper.
const MAX_PASSES: usize = 8;

/// Why a member's derivation could not be certified (it falls back
/// per-query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayBail {
    /// The member has a source→door geodesic where the lead had none, so its
    /// own search would relax an unrecorded edge.
    SourceLeg,
    /// The labels did not converge within [`MAX_PASSES`] passes.
    NoFixpoint,
    /// A converged label is not achieved by any recorded edge at the final
    /// bases with an accepting verdict: it rode an intermediate-pass base
    /// whose improvement flipped the arrival verdict, so the member's own
    /// run never writes it.
    Unsupported,
    /// The member's search would settle a door the lead's sweep never
    /// settled — its relaxation star is not on record — or the answer would
    /// hang off a door whose label exactly equals the target distance,
    /// which only lead-unsettled stars could certify.
    Frontier,
    /// The member enters a settled door through a different partition than
    /// the lead, so its expansion would relax unrecorded edges.
    ViaMismatch,
    /// A settled-skip relaxation absent from the record would improve (or
    /// ambiguously tie) the member's labels.
    Omission,
}

/// Per-group facts about the lead's sweep, shared by every member's
/// derivation: which doors the lead settled (their full relaxation stars
/// are on record), in which order (for the omission certificate), and
/// through which partition each was entered (the expansion's excluded
/// neighbor). Built once per group from the trace and pooled per worker;
/// the reset is proportional to the doors the previous group touched.
#[derive(Debug, Default)]
pub(crate) struct LeadIndex {
    settled: Vec<bool>,
    via: Vec<Option<PartitionId>>,
    order: Vec<u32>,
    touched: Vec<u32>,
}

impl LeadIndex {
    /// Rebuilds the index for `trace` over a venue with `n` doors.
    pub(crate) fn build(&mut self, trace: &Trace, n: usize) {
        if self.settled.len() == n {
            for &d in &self.touched {
                self.settled[d as usize] = false;
                self.via[d as usize] = None;
            }
        } else {
            self.settled.clear();
            self.settled.resize(n, false);
            self.via.clear();
            self.via.resize(n, None);
        }
        self.touched.clear();
        self.order.clear();
        for ev in &trace.doors {
            match *ev {
                // A door only ever pops after an improving relax pushed it,
                // and settled doors are never relaxed again — so the last
                // improving relax before the pop carries the lead's entry
                // partition at settle time.
                DoorEvent::Relax {
                    door,
                    via,
                    improved: true,
                    ..
                } => {
                    if self.via[door as usize].is_none() {
                        self.touched.push(door);
                    }
                    self.via[door as usize] = Some(via);
                }
                DoorEvent::Pop { door } => {
                    self.settled[door as usize] = true;
                    self.order.push(door);
                }
                _ => {}
            }
        }
    }
}

/// Pooled per-worker state for [`replay_member`]: distance / predecessor
/// arrays, the member's source-leg cache, the recorded-target-leg markers
/// and the per-partition settle lists of the omission certificate — each
/// with a touched list so resets are proportional to actual work. One
/// scratch serves every derivation a worker performs, across groups and
/// batches, so the per-member cost carries no O(|doors|) allocation.
#[derive(Debug, Default)]
pub(crate) struct ReplayScratch {
    dist: Vec<f64>,
    prev: Vec<Option<PrevEntry>>,
    /// Doors whose labels left their defaults since the last reset.
    touched: Vec<u32>,
    /// Support-validation marks (reset through `touched`).
    support: Vec<bool>,
    /// Doors with a recorded target-leg weight for the current member.
    tleg: Vec<bool>,
    tleg_touched: Vec<u32>,
    /// Memoized member source legs: `(door, point_to_door(source, door))`.
    src_legs: Vec<(u32, Option<f64>)>,
    /// Per partition: lead-settled doors leaveable through it, in settle
    /// order, and the running max of their member labels.
    part_doors: Vec<Vec<u32>>,
    part_max: Vec<f64>,
    part_touched: Vec<u32>,
}

impl ReplayScratch {
    /// Restores the pristine state for a venue with `n` doors and `p`
    /// partitions, undoing only the writes the previous derivation recorded
    /// in its touched lists.
    fn reset(&mut self, n: usize, p: usize) {
        if self.dist.len() == n {
            for &d in &self.touched {
                self.dist[d as usize] = f64::INFINITY;
                self.prev[d as usize] = None;
                self.support[d as usize] = false;
            }
            for &d in &self.tleg_touched {
                self.tleg[d as usize] = false;
            }
        } else {
            self.dist.clear();
            self.dist.resize(n, f64::INFINITY);
            self.prev.clear();
            self.prev.resize(n, None);
            self.support.clear();
            self.support.resize(n, false);
            self.tleg.clear();
            self.tleg.resize(n, false);
        }
        if self.part_max.len() == p {
            for &w in &self.part_touched {
                self.part_doors[w as usize].clear();
                self.part_max[w as usize] = f64::NEG_INFINITY;
            }
        } else {
            self.part_doors.clear();
            self.part_doors.resize_with(p, Vec::new);
            self.part_max.clear();
            self.part_max.resize(p, f64::NEG_INFINITY);
        }
        self.touched.clear();
        self.tleg_touched.clear();
        self.src_legs.clear();
        self.part_touched.clear();
    }
}

/// The member-run writer key of a relaxation: parents write at their
/// settles, the heap settles equal labels in door-index order, and source
/// legs relax before the first settle. The minimum key among relaxations
/// achieving a door's final label is the member's actual predecessor.
fn writer_key(dist: &[f64], from: Option<u32>) -> (f64, i64) {
    match from {
        Some(f) => (dist[f as usize], i64::from(f)),
        None => (0.0, -1),
    }
}

/// Derives group member `k`'s own answer from the lead's relaxation trace.
///
/// `member` must be the validated query whose target was `targets[k]` of the
/// traced sweep, with the same source partition as the lead and a departure
/// in the same checkpoint interval, under an engine with order-pure TV
/// verdicts (ITG/S, or ITG/A in `Exact` mode — the server does not record
/// traces otherwise). Returns the member's byte-identical answer, or a
/// [`ReplayBail`] when the member's search provably (or even possibly)
/// diverges from the record.
pub(crate) fn replay_member(
    space: &IndoorSpace,
    config: &ItspqConfig,
    trace: &Trace,
    lead: &LeadIndex,
    member: &Query,
    k: u32,
    scratch: &mut ReplayScratch,
) -> Result<Option<Path>, ReplayBail> {
    let t0 = member.departure();
    scratch.reset(space.num_doors(), space.num_partitions());
    let ReplayScratch {
        dist,
        prev,
        touched,
        support,
        tleg,
        tleg_touched,
        src_legs,
        part_doors,
        part_max,
        part_touched,
    } = scratch;

    let mut src_leg = |door: u32| -> Option<f64> {
        if let Some(&(_, w)) = src_legs.iter().find(|&&(d, _)| d == door) {
            return w;
        }
        let w = space.point_to_door(&member.source, DoorId(door));
        src_legs.push((door, w));
        w
    };

    // The member's own `TV_Check` verdict for a deciding candidate. Fast
    // path: an arrival inside the lead's recorded window shares its
    // constant-topology interval, so the recorded verdict transfers. Slow
    // path: the door's ATIs at the member's own arrival — exactly the
    // engine's verdict, since order-pure checkers (ITG/S directly, and
    // ITG/A(Exact) via the arrival interval's reduced view, which mirrors
    // the interval-constant ATI state) decide from the arrival alone.
    let verdict = |door: u32, cand: f64, lo: f64, hi: f64, open: bool| -> bool {
        let tarr = t0 + config.velocity.travel_time(cand);
        let secs = tarr.seconds();
        if secs >= lo && secs < hi {
            open
        } else {
            space.door(DoorId(door)).atis.is_open_at(tarr)
        }
    };

    // Label fixpoint: apply the recorded relaxations in lead order until a
    // full pass changes nothing. Labels only decrease, and every write is a
    // relaxation the member's own run performs, so the fixpoint is the
    // member's final label set over the recorded edges.
    let mut converged = false;
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for ev in &trace.doors {
            match *ev {
                DoorEvent::Pop { .. } => {}
                DoorEvent::SourceLegMissing { door } => {
                    // The lead never relaxed this door from the source; a
                    // member with a geodesic to it would relax an
                    // unrecorded edge.
                    if src_leg(door).is_some() {
                        return Err(ReplayBail::SourceLeg);
                    }
                }
                DoorEvent::Relax {
                    door,
                    from,
                    via,
                    weight,
                    lo,
                    hi,
                    open,
                    ..
                } => {
                    let (base, w) = match from {
                        Some(f) => (dist[f as usize], weight), // venue geometry, shared
                        None => match src_leg(door) {
                            Some(w) => (0.0, w),
                            None => continue, // no such member leg; its search skips
                        },
                    };
                    if base.is_infinite() {
                        continue; // member never reaches `from`: star never expands
                    }
                    let d = door as usize;
                    let cand = base + w;
                    if !cand.is_finite() || cand > dist[d] {
                        continue; // a no-op in the member's run as well
                    }
                    if cand == dist[d] {
                        // Equal candidate: resolve the member's actual first
                        // writer by key. Only a strictly earlier writer with
                        // an accepting verdict displaces the standing entry.
                        let standing = prev[d].expect("finite label has a predecessor"); // itspq-lint: allow(no-panic-in-lib, "dist and prev are written together: every finite label was stored alongside its PrevEntry two branches below")
                        if standing.from == from {
                            continue; // same star, venue-fixed order: first kept
                        }
                        if writer_key(dist, standing.from) <= writer_key(dist, from) {
                            continue;
                        }
                        if verdict(door, cand, lo, hi, open) {
                            prev[d] = Some(PrevEntry { via, from });
                            changed = true;
                        }
                        continue;
                    }
                    if !verdict(door, cand, lo, hi, open) {
                        continue; // the member's own check rejects this edge
                    }
                    if dist[d].is_infinite() {
                        touched.push(door);
                    }
                    dist[d] = cand;
                    prev[d] = Some(PrevEntry { via, from });
                    changed = true;
                }
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(ReplayBail::NoFixpoint);
    }

    // Support validation: a label written mid-pass can ride a base that a
    // later pass improves past an arrival-verdict flip, in which case the
    // convergence check sees only a *rejected* improvement and leaves the
    // stale label standing. Every finite label must be re-achieved by some
    // recorded edge at the final bases with an accepting verdict. (The
    // predecessors need no separate validation: tie resolution re-evaluates
    // writer keys against live labels every pass, and a writer's verdict
    // depends only on the candidate value, which equals the final label.)
    for ev in &trace.doors {
        let DoorEvent::Relax {
            door,
            from,
            weight,
            lo,
            hi,
            open,
            ..
        } = *ev
        else {
            continue;
        };
        let d = door as usize;
        if !dist[d].is_finite() || support[d] {
            continue;
        }
        let (base, w) = match from {
            Some(f) => (dist[f as usize], weight),
            None => match src_leg(door) {
                Some(w) => (0.0, w),
                None => continue,
            },
        };
        if base + w == dist[d] && verdict(door, dist[d], lo, hi, open) {
            support[d] = true;
        }
    }
    for &dt in touched.iter() {
        if dist[dt as usize].is_finite() && !support[dt as usize] {
            return Err(ReplayBail::Unsupported);
        }
    }

    // Target legs: recorded weights first (shared geometry), then the legs
    // the sweep skipped because it had already finalised this member —
    // recomputed on demand, exactly as the member's own search would. The
    // member relaxes the target at each door's settle, so an equal
    // candidate keeps the door with the smaller (label, index) key.
    let relax_target =
        |dist: &[f64], door: u32, weight: f64, td: &mut f64, tp: &mut Option<u32>| {
            let cand = dist[door as usize] + weight;
            if !cand.is_finite() {
                return; // never an improvement, exactly as in the search
            }
            if cand < *td {
                *td = cand;
                *tp = Some(door);
            } else if cand == *td {
                let s = tp.expect("finite target label has a predecessor"); // itspq-lint: allow(no-panic-in-lib, "td and tp are written together: a finite target distance always carries its settling door")
                let (ds, dn) = (dist[s as usize], dist[door as usize]);
                if dn < ds || (dn == ds && door < s) {
                    *tp = Some(door);
                }
            }
        };
    let own = trace.targets.get(k as usize).map_or(&[][..], Vec::as_slice);
    let mut target_dist = f64::INFINITY;
    let mut target_prev: Option<u32> = None;
    for ev in own {
        let d = ev.door as usize;
        if !tleg[d] {
            tleg[d] = true;
            tleg_touched.push(ev.door);
        }
        if dist[d].is_finite() {
            relax_target(dist, ev.door, ev.weight, &mut target_dist, &mut target_prev);
        }
    }
    for &dl in space.p2d_enterable(member.target.partition) {
        let d = dl.index();
        if lead.settled[d] && !tleg[d] && dist[d].is_finite() {
            if let Some(w) = space.point_to_door(&member.target, dl) {
                relax_target(dist, d as u32, w, &mut target_dist, &mut target_prev);
            }
        }
    }
    let t_hat = target_dist;
    if let Some(tp) = target_prev {
        // A zero-length head leg from a door whose label equals the target
        // distance is real only if that label is — and labels at exactly
        // the target distance sit outside the certificates below.
        if dist[tp as usize] >= t_hat {
            return Err(ReplayBail::Frontier);
        }
    }

    // Frontier containment + entry agreement: every door the member's own
    // search settles (final label below the target distance) must have its
    // full relaxation star on record, entered through the same partition.
    for &dt in touched.iter() {
        let d = dt as usize;
        if dist[d] < t_hat {
            if !lead.settled[d] {
                return Err(ReplayBail::Frontier);
            }
            if prev[d].map(|p| p.via) != lead.via[d] {
                return Err(ReplayBail::ViaMismatch);
            }
        }
    }

    // Omission certificate: the record drops relaxations into doors that
    // were already settled (line 26). Walking the lead's settle order with
    // per-partition lists reconstructs exactly those dropped pairs; each
    // pair the member's own search *would* attempt (expander settled by the
    // member, target labelled above it) is checked against the real
    // door-to-door weight. Private partitions follow the sweep's rule 2.
    let src_p = member.source.partition;
    let allowed = |v: PartitionId| -> bool { v == src_p || space.partition(v).kind.traversable() };
    for &u in &lead.order {
        let ui = u as usize;
        let du = dist[ui];
        if du < t_hat {
            let via = lead.via[ui]; // == the member's entry, certified above
            for &wp in space.d2p_enterable(DoorId(u)) {
                if Some(wp) == via || !allowed(wp) {
                    continue;
                }
                if part_max[wp.index()] <= du {
                    continue; // every earlier label ≤ du: skips are no-ops
                }
                for &v in &part_doors[wp.index()] {
                    let dv = dist[v as usize];
                    if dv <= du {
                        continue;
                    }
                    let Some(w) = space.door_to_door(wp, DoorId(u), DoorId(v)) else {
                        continue;
                    };
                    let cand = du + w;
                    if !cand.is_finite() || cand > dv {
                        continue; // the member's relax of this edge is a no-op
                    }
                    if cand == dv
                        && writer_key(dist, Some(u))
                            >= writer_key(
                                dist,
                                prev[v as usize]
                                    .expect("finite label has a predecessor") // itspq-lint: allow(no-panic-in-lib, "reached only when cand == dv with cand finite, and the fixpoint stores every finite label with its PrevEntry")
                                    .from,
                            )
                    {
                        continue; // ties to the derived writer, which wrote first
                    }
                    // The unrecorded edge decides — unless the member's own
                    // TV verdict rejects it (pure, so directly computable).
                    if space
                        .door(DoorId(v))
                        .atis
                        .is_open_at(t0 + config.velocity.travel_time(cand))
                    {
                        return Err(ReplayBail::Omission);
                    }
                }
            }
        }
        for &wp in space.d2p_leaveable(DoorId(u)) {
            let wi = wp.index();
            if part_doors[wi].is_empty() {
                part_touched.push(wi as u32);
            }
            part_doors[wi].push(u);
            if du > part_max[wi] {
                part_max[wi] = du;
            }
        }
    }

    if t_hat.is_finite() {
        return Ok(reconstruct(
            &member.source,
            &member.target,
            config,
            dist,
            prev,
            target_dist,
            target_prev,
            t0,
        ));
    }
    // Labels converged with an unreachable target, and every reachable door
    // is certified settled with a recorded star: the member's own search
    // equally exhausts its frontier and answers "no such routes".
    Ok(None)
}
