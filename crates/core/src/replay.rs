//! Differential replay: door-level sharing's per-member verification.
//!
//! Door-level grouping batches queries that leave the *same source
//! partition* at compatible departure times but from **different source
//! points**. Floating-point addition is not associative, so a member's
//! answer cannot be recovered from the lead's labels by offset arithmetic —
//! instead, the lead's sweep records its complete decision log (a
//! [`TraceEvent`] stream) and this module *re-derives* each member's own
//! search from it:
//!
//! * the only member-specific weights — the source→door legs — are
//!   recomputed from the member's own point (`point_to_door`), and all
//!   venue-level weights (door-to-door matrix entries, target legs) are
//!   reused from the trace, where they are bit-identical by construction;
//! * the member's labels, predecessors and its own priority queue are
//!   simulated with the very same [`MinHeap`], so tie-breaking and staleness
//!   behave exactly as in a real run;
//! * every decision is *verified*, not assumed: each `TV_Check` outcome must
//!   transfer through the interval-identity witness
//!   (`CheckpointSet::same_topology_interval` — arrivals in the same
//!   constant-topology interval get the same verdict from every checker,
//!   including the stateful paper-faithful ITG/A cursor, whose update
//!   sequence is then identical), each improvement comparison must agree
//!   with the lead's, and each heap pop must surface the same node.
//!
//! Any mismatch aborts with a [`ReplayBail`] and the server answers that
//! member with an ordinary per-query search — divergence can cost time,
//! never correctness. A replay that runs to completion is a *proof* that the
//! member's own Algorithm 1 run takes exactly the recorded decision
//! sequence, so the reconstructed path (or certified "no such routes") is
//! byte-identical to per-query execution.

use indoor_space::{DoorId, IndoorSpace};

use crate::framework::{reconstruct, PrevEntry, TraceEvent};
use crate::heap::{MinHeap, Node};
use crate::{ItspqConfig, Path, Query};

/// Why a member's replay could not be certified (it falls back per-query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayBail {
    /// The member's source→door geodesics differ in *existence* from the
    /// lead's (one has a leg where the other has none).
    SourceLeg,
    /// A checked arrival fell into a different constant-topology interval
    /// than the lead's, so the `TV_Check` verdict does not transfer.
    TvInterval,
    /// An improvement comparison disagreed with the lead's decision.
    Decision,
    /// The member's queue surfaced a different node (or staleness) than the
    /// trace at the same position.
    PopOrder,
    /// The member's queue ran dry (or still held entries) where the lead's
    /// did not — the searches have structurally diverged.
    HeapShape,
}

/// Re-derives group member `k`'s own search from the lead's decision trace.
///
/// `member` must be the validated query whose target was `targets[k]` of the
/// traced sweep, with the same source partition as the lead and a departure
/// in the same checkpoint interval. Returns the member's byte-identical
/// answer, or a [`ReplayBail`] when the member's search provably (or even
/// possibly) diverges from the trace.
pub(crate) fn replay_member(
    space: &IndoorSpace,
    config: &ItspqConfig,
    events: &[TraceEvent],
    member: &Query,
    k: u32,
) -> Result<Option<Path>, ReplayBail> {
    let t0 = member.departure();
    let cps = space.checkpoints();
    let n = space.num_doors();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<PrevEntry>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = MinHeap::new();
    let mut target_dist = f64::INFINITY;
    let mut target_prev: Option<u32> = None;

    for ev in events {
        match *ev {
            TraceEvent::SourceLegMissing { door } => {
                // The lead never relaxed this door from the source; a member
                // with a geodesic to it would push an entry the trace cannot
                // account for.
                if space.point_to_door(&member.source, DoorId(door)).is_some() {
                    return Err(ReplayBail::SourceLeg);
                }
            }
            TraceEvent::Relax {
                door,
                from,
                via,
                weight,
                arrival,
                open,
                improved,
            } => {
                // The structural guards before a relaxation (skip the entry
                // door, skip settled doors) depend only on `settled` and the
                // predecessor topology, which evolve in lockstep with the
                // lead's — so the member's own search attempts exactly the
                // relaxations the trace holds.
                let weight = match from {
                    Some(_) => weight, // door-to-door: venue geometry, shared
                    None => space
                        .point_to_door(&member.source, DoorId(door))
                        .ok_or(ReplayBail::SourceLeg)?,
                };
                let base = match from {
                    Some(f) => dist[f as usize],
                    None => 0.0,
                };
                let cand = base + weight;
                let tarr = t0 + config.velocity.travel_time(cand);
                if !cps.same_topology_interval(arrival, tarr) {
                    return Err(ReplayBail::TvInterval);
                }
                // Same interval ⇒ the member's own TV_Check returns `open`
                // too, and a stateful checker performs the same update.
                if !open {
                    continue;
                }
                let mine = cand < dist[door as usize];
                if mine != improved {
                    return Err(ReplayBail::Decision);
                }
                if improved {
                    dist[door as usize] = cand;
                    prev[door as usize] = Some(PrevEntry { via, from });
                    heap.push(cand, Node::Door(door));
                }
            }
            TraceEvent::RelaxTarget {
                k: ek,
                door,
                weight,
                improved,
            } => {
                if ek != k {
                    continue; // another member's target: not in this queue
                }
                let cand = dist[door as usize] + weight;
                let mine = cand < target_dist;
                if mine != improved {
                    return Err(ReplayBail::Decision);
                }
                if improved {
                    target_dist = cand;
                    target_prev = Some(door);
                    heap.push(cand, Node::Target(0));
                }
            }
            TraceEvent::Pop { node, stale } => {
                if matches!(node, Node::Target(ek) if ek != k) {
                    continue; // another member's target never entered our queue
                }
                let entry = heap.pop().ok_or(ReplayBail::HeapShape)?;
                match (node, entry.node) {
                    (Node::Door(i), Node::Door(j)) if i == j => {
                        // Settles happen at matching pops, so the settled
                        // sets agree and staleness must too; verify anyway.
                        if settled[j as usize] != stale {
                            return Err(ReplayBail::PopOrder);
                        }
                        if !stale {
                            settled[j as usize] = true;
                        }
                    }
                    (Node::Target(_), Node::Target(0)) => {
                        if entry.dist <= target_dist {
                            // Live target pop: the member's search finalises
                            // here (even if the lead's own entry was stale
                            // and the lead kept going — ending earlier is
                            // still exactly what the member's run does).
                            return Ok(reconstruct(
                                &member.source,
                                &member.target,
                                config,
                                &dist,
                                &prev,
                                target_dist,
                                target_prev,
                                t0,
                            ));
                        }
                        if !stale {
                            // The lead finalised this target while the
                            // member's entry is stale: the trace stops
                            // relaxing target k from here on, so the
                            // member's continuation is unrecorded.
                            return Err(ReplayBail::PopOrder);
                        }
                        // Both stale: both searches skip and continue.
                    }
                    _ => return Err(ReplayBail::PopOrder),
                }
            }
        }
    }

    // Trace exhausted without finalising the member's target: the lead's
    // frontier ran dry. Every push and pop was matched one-to-one, so the
    // member's queue must be empty too — its own search would equally
    // exhaust and answer "no such routes".
    if heap.pop().is_some() {
        return Err(ReplayBail::HeapShape);
    }
    Ok(None)
}
