//! Extension: k shortest valid paths (Yen's algorithm over door sequences).
//!
//! Indoor LBS front-ends routinely offer alternative routes; this module
//! ranks the `k` shortest *valid* ITSPQ paths (no-waiting semantics, both
//! rules enforced per relaxation exactly as the main engines do).
//!
//! Yen's algorithm over the door graph: the best path comes from a
//! [`crate::SynEngine`]-equivalent search; each further path is the cheapest
//! candidate obtained by re-searching from every spur position of a previous
//! path with the deviating doors banned. Spur searches inherit the root's
//! cumulative distance so arrival-time checks stay consistent.

use indoor_space::{DoorId, PartitionId};

use crate::heap::{MinHeap, Node};
use crate::ord::cmp_dist;
use crate::{DoorHop, ItGraph, ItspqConfig, Path, Query};

/// Computes up to `k` shortest valid paths, ordered by increasing length.
/// Paths are distinct as door sequences. Uses full Dijkstra relaxation
/// regardless of [`crate::ExpandPolicy`] (alternatives need the complete
/// search space).
#[must_use]
pub fn k_shortest_paths(
    graph: &ItGraph,
    query: &Query,
    config: &ItspqConfig,
    k: usize,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let space = graph.space();
    if query.source.partition == query.target.partition {
        // Only the direct segment exists inside one partition.
        let length = query.source.position.distance(query.target.position);
        let t0 = query.departure();
        return vec![Path {
            source: query.source,
            target: query.target,
            hops: Vec::new(),
            length,
            departure: t0,
            arrival: t0 + config.velocity.travel_time(length),
        }];
    }

    let n = space.num_doors();
    let mut banned = vec![false; n];
    let Some(first) = spur_search(graph, query, config, None, 0.0, &banned) else {
        return Vec::new();
    };

    let mut accepted: Vec<Path> = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    while accepted.len() < k {
        // `accepted` starts with one path and only grows, but spell the
        // invariant as control flow rather than a panic site.
        let Some(prev) = accepted.last().cloned() else {
            break;
        };
        for spur_idx in 0..=prev.hops.len().saturating_sub(1) {
            let root = &prev.hops[..spur_idx];

            // Ban: the next door of every known path sharing this root, plus
            // the root's own doors (keeps candidates door-simple).
            banned.iter_mut().for_each(|b| *b = false);
            for path in accepted.iter().chain(candidates.iter()) {
                if path.hops.len() > spur_idx
                    && path.hops[..spur_idx]
                        .iter()
                        .map(|h| h.door)
                        .eq(root.iter().map(|h| h.door))
                {
                    banned[path.hops[spur_idx].door.index()] = true;
                }
            }
            for h in root {
                banned[h.door.index()] = true;
            }

            let (entry, base_dist) = match root.last() {
                Some(h) => (Some((h.door, h.via_partition)), h.distance),
                None => (None, 0.0),
            };
            if let Some(tail) = spur_search(graph, query, config, entry, base_dist, &banned) {
                let mut hops = root.to_vec();
                hops.extend_from_slice(&tail.hops);
                let candidate = Path { hops, ..tail };
                let dup = |p: &Path| {
                    p.hops.len() == candidate.hops.len()
                        && p.hops
                            .iter()
                            .map(|h| h.door)
                            .eq(candidate.hops.iter().map(|h| h.door))
                };
                if !accepted.iter().any(dup) && !candidates.iter().any(dup) {
                    candidates.push(candidate);
                }
            }
        }
        // Promote the cheapest candidate.
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| cmp_dist(a.length, b.length))
            .map(|(i, _)| i)
        else {
            break;
        };
        accepted.push(candidates.swap_remove(best_idx));
    }
    accepted
}

/// A full-relaxation valid-path search that starts either at `ps`
/// (`entry = None`) or just after crossing the root's last door with
/// `base_dist` metres already walked, avoiding `banned` doors. `entry`
/// carries `(door, partition the root crossed it from)`; the search never
/// steps back into that partition (it would be a zero-cost "touch" producing
/// duplicate paths). Returns a complete path whose `hops` cover only the
/// spur portion.
fn spur_search(
    graph: &ItGraph,
    query: &Query,
    config: &ItspqConfig,
    entry: Option<(DoorId, PartitionId)>,
    base_dist: f64,
    banned: &[bool],
) -> Option<Path> {
    let space = graph.space();
    let t0 = query.departure();
    let src_p = query.source.partition;
    let dst_p = query.target.partition;
    let n = space.num_doors();

    let allowed = |v: PartitionId| -> bool {
        v == src_p || v == dst_p || space.partition(v).kind.traversable()
    };

    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(PartitionId, Option<u32>)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = MinHeap::new();

    // `link`: the door whose DM row supplies leg weights (the fixed entry door
    // during seeding, the settled door afterwards); `from_idx`: the
    // predecessor recorded for reconstruction (None ends the spur's chain).
    let relax = |v: PartitionId,
                 link: Option<DoorId>,
                 from_idx: Option<u32>,
                 base: f64,
                 settled: &[bool],
                 dist: &mut Vec<f64>,
                 prev: &mut Vec<Option<(PartitionId, Option<u32>)>>,
                 heap: &mut MinHeap| {
        for &dj in space.p2d_leaveable(v) {
            if banned[dj.index()] || settled[dj.index()] || Some(dj) == link {
                continue;
            }
            let weight = match link {
                Some(l) => space.door_to_door(v, l, dj),
                None => space.point_to_door(&query.source, dj),
            };
            let Some(weight) = weight else { continue };
            let cand = base + weight;
            let tarr = t0 + config.velocity.travel_time(cand);
            if !space.door(dj).atis.is_open_at(tarr) {
                continue;
            }
            if cand < dist[dj.index()] {
                dist[dj.index()] = cand;
                prev[dj.index()] = Some((v, from_idx));
                heap.push(cand, Node::Door(dj.index() as u32));
            }
        }
    };

    // Seed the search.
    match entry {
        None => relax(
            src_p, None, None, 0.0, &settled, &mut dist, &mut prev, &mut heap,
        ),
        Some((e, root_side)) => {
            for vi in 0..space.d2p_enterable(e).len() {
                let v = space.d2p_enterable(e)[vi];
                if v != root_side && allowed(v) {
                    relax(
                        v,
                        Some(e),
                        None,
                        base_dist,
                        &settled,
                        &mut dist,
                        &mut prev,
                        &mut heap,
                    );
                }
            }
            // Direct finish: the entry door may already bound the target.
            if dst_p != root_side && space.d2p_enterable(e).contains(&dst_p) {
                if let Some(leg) = space.point_to_door(&query.target, e) {
                    let length = base_dist + leg;
                    return Some(Path {
                        source: query.source,
                        target: query.target,
                        hops: Vec::new(),
                        length,
                        departure: t0,
                        arrival: t0 + config.velocity.travel_time(length),
                    });
                }
            }
        }
    }

    let mut target_dist = f64::INFINITY;
    let mut target_prev: Option<u32> = None;
    while let Some(e) = heap.pop() {
        let Node::Door(di) = e.node else { continue };
        if settled[di as usize] {
            continue;
        }
        settled[di as usize] = true;
        let door = DoorId(di);
        let d_di = dist[di as usize];
        if d_di >= target_dist {
            break;
        }
        if space.d2p_enterable(door).contains(&dst_p) {
            if let Some(leg) = space.point_to_door(&query.target, door) {
                let cand = d_di + leg;
                if cand < target_dist {
                    target_dist = cand;
                    target_prev = Some(di);
                }
            }
        }
        let came_from = prev[di as usize].map(|p| p.0);
        for vi in 0..space.d2p_enterable(door).len() {
            let v = space.d2p_enterable(door)[vi];
            if Some(v) == came_from || !allowed(v) {
                continue;
            }
            relax(
                v,
                Some(door),
                Some(di),
                d_di,
                &settled,
                &mut dist,
                &mut prev,
                &mut heap,
            );
        }
    }

    let last = target_prev?;
    // Walk predecessor links back to the spur seed. Every door on the path
    // got a `prev` entry before entering the heap, so a missing link is a
    // broken invariant — degrade to "no path" rather than panic.
    let mut rev = Vec::new();
    let mut cur = last;
    loop {
        let (via, from) = prev[cur as usize]?;
        rev.push((cur, via));
        match from {
            Some(p) => cur = p,
            None => break,
        }
    }
    rev.reverse();
    let hops: Vec<DoorHop> = rev
        .iter()
        .map(|&(di, via)| DoorHop {
            door: DoorId(di),
            via_partition: via,
            distance: dist[di as usize],
            arrival: t0 + config.velocity.travel_time(dist[di as usize]),
        })
        .collect();
    Some(Path {
        source: query.source,
        target: query.target,
        hops,
        length: target_dist,
        departure: t0,
        arrival: t0 + config.velocity.travel_time(target_dist),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_path, ItspqConfig, SynEngine};
    use indoor_space::paper_example;
    use indoor_time::{TimeOfDay, WALKING_SPEED};

    fn setup() -> (paper_example::PaperExample, ItGraph) {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        (ex, g)
    }

    #[test]
    fn first_path_matches_engine() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(12, 0));
        let paths = k_shortest_paths(&g, &q, &cfg, 1);
        assert_eq!(paths.len(), 1);
        let engine = SynEngine::new(g.clone(), cfg).query(&q).path.unwrap();
        assert!((paths[0].length - engine.length).abs() < 1e-9);
        assert_eq!(
            paths[0].doors().collect::<Vec<_>>(),
            engine.doors().collect::<Vec<_>>()
        );
    }

    #[test]
    fn alternatives_are_sorted_distinct_and_valid() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        // p1 (hallway v3) to p2 (room v10): the one-way d3 into the lower
        // hallways fans out into several genuinely different routes
        // (via v12/d19 or via v9/d12), and the long way around through
        // v4-v8-v17-v14-v13 exists too.
        let q = Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0));
        let paths = k_shortest_paths(&g, &q, &cfg, 4);
        assert!(
            paths.len() >= 3,
            "expected several alternatives, got {}",
            paths.len()
        );
        for w in paths.windows(2) {
            assert!(w[0].length <= w[1].length + 1e-9, "paths must be sorted");
        }
        let mut seqs: Vec<Vec<DoorId>> = paths.iter().map(|p| p.doors().collect()).collect();
        seqs.sort();
        seqs.dedup();
        assert_eq!(seqs.len(), paths.len(), "door sequences must be distinct");
        for p in &paths {
            validate_path(&ex.space, p, q.time, WALKING_SPEED)
                .unwrap_or_else(|v| panic!("invalid alternative: {v}"));
        }
    }

    #[test]
    fn p3_to_p4_has_exactly_one_valid_route() {
        // Topological fact of the running example: banning d18 leaves no way
        // into v14 (d16 comes from the private v15; d13 comes from v17, whose
        // cluster is sealed behind the one-way d3). Yen must therefore stop
        // at one path, not invent more.
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(12, 0));
        let paths = k_shortest_paths(&g, &q, &cfg, 4);
        assert_eq!(paths.len(), 1);
        assert!((paths[0].length - 12.0).abs() < 1e-9);
    }

    #[test]
    fn respects_temporal_validity() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        // At 23:30 no valid path exists at all.
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30));
        assert!(k_shortest_paths(&g, &q, &cfg, 3).is_empty());
    }

    #[test]
    fn same_partition_returns_single_direct_path() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::default();
        let other =
            indoor_space::IndoorPoint::new(ex.p3.partition, indoor_geom::Point::new(3.0, 4.0));
        let q = Query::new(ex.p3, other, TimeOfDay::hm(12, 0));
        let paths = k_shortest_paths(&g, &q, &cfg, 5);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].hops.is_empty());
    }

    #[test]
    fn k_zero_returns_nothing() {
        let (ex, g) = setup();
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(12, 0));
        assert!(k_shortest_paths(&g, &q, &ItspqConfig::default(), 0).is_empty());
    }

    #[test]
    fn private_partitions_never_appear_in_alternatives() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(12, 0));
        for p in k_shortest_paths(&g, &q, &cfg, 5) {
            for hop in &p.hops {
                let kind = ex.space.partition(hop.via_partition).kind;
                assert!(
                    kind.traversable()
                        || hop.via_partition == ex.p3.partition
                        || hop.via_partition == ex.p4.partition,
                    "alternative traverses {}",
                    hop.via_partition
                );
            }
        }
    }
}
