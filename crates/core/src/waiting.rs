//! Extension: earliest-arrival routing with waiting at closed doors.
//!
//! The paper's footnote 2 explicitly excludes waiting ("someone reaches a door
//! and waits there until the door opens"). This module implements that future
//! variant: the traveller may pause in front of a closed door until its next
//! opening, bounded by a [`WaitPolicy`]. With waiting allowed, arrival
//! functions become FIFO and a Dijkstra on arrival *time* (rather than
//! distance) is exact.

use indoor_space::{DoorId, IndoorPoint, PartitionId};
use indoor_time::{DurationSecs, Timestamp};

use crate::heap::{MinHeap, Node};
use crate::{ItGraph, ItspqConfig, Query};

/// How long the traveller tolerates waiting at a single door.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaitPolicy {
    /// No waiting at all — the paper's original semantics.
    None,
    /// Wait up to the given duration at each door.
    UpTo(DurationSecs),
    /// Wait as long as it takes (doors that open eventually are usable).
    Unlimited,
}

impl WaitPolicy {
    fn admits(self, wait: DurationSecs) -> bool {
        match self {
            // Durations are non-negative, so "<= zero" is exactly "no wait"
            // without a float equality.
            WaitPolicy::None => wait <= DurationSecs::ZERO,
            WaitPolicy::UpTo(max) => wait <= max,
            WaitPolicy::Unlimited => true,
        }
    }
}

/// One door crossing of a timed path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedHop {
    /// The door crossed.
    pub door: DoorId,
    /// Partition walked through to reach the door.
    pub via_partition: PartitionId,
    /// Walking distance of the leg into this door (metres).
    pub leg_distance: f64,
    /// Instant of arrival in front of the door.
    pub reached: Timestamp,
    /// Waiting time spent before the door opened.
    pub waited: DurationSecs,
    /// Instant the door is actually crossed.
    pub crossed: Timestamp,
}

/// An earliest-arrival path with waiting.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedPath {
    /// The start point.
    pub source: IndoorPoint,
    /// The target point.
    pub target: IndoorPoint,
    /// Door crossings in travel order.
    pub hops: Vec<TimedHop>,
    /// Total walking distance (metres) — not necessarily minimal.
    pub walking_distance: f64,
    /// Total time spent waiting.
    pub total_wait: DurationSecs,
    /// Departure instant.
    pub departure: Timestamp,
    /// Arrival instant at the target.
    pub arrival: Timestamp,
}

/// Computes the earliest-arrival path from `query.source` to `query.target`
/// departing at `query.time`, waiting at closed doors as permitted by
/// `policy`. Returns `None` if the target is unreachable within one day of
/// waiting horizon.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn earliest_arrival(
    graph: &ItGraph,
    query: &Query,
    config: &ItspqConfig,
    policy: WaitPolicy,
) -> Option<TimedPath> {
    let space = graph.space();
    let t0 = query.departure();
    let src = query.source;
    let dst = query.target;

    if src.partition == dst.partition {
        let length = src.position.distance(dst.position);
        return Some(TimedPath {
            source: src,
            target: dst,
            hops: Vec::new(),
            walking_distance: length,
            total_wait: DurationSecs::ZERO,
            departure: t0,
            arrival: t0 + config.velocity.travel_time(length),
        });
    }

    let n = space.num_doors();
    // Earliest instant each door can be *crossed*.
    let mut best: Vec<f64> = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    #[derive(Clone, Copy)]
    struct PrevHop {
        from: Option<u32>,
        via: PartitionId,
        leg: f64,
        reached: Timestamp,
        waited: DurationSecs,
        crossed: Timestamp,
    }
    let mut prev: Vec<Option<PrevHop>> = vec![None; n];
    let mut heap = MinHeap::new();

    let allowed = |v: PartitionId| -> bool {
        v == src.partition || v == dst.partition || space.partition(v).kind.traversable()
    };
    // Horizon: at most one full day beyond departure.
    let horizon = t0.seconds() + indoor_time::SECONDS_PER_DAY;

    let try_relax = |dj: DoorId,
                     from: Option<u32>,
                     via: PartitionId,
                     leg: f64,
                     depart_instant: Timestamp,
                     best: &mut Vec<f64>,
                     prev: &mut Vec<Option<PrevHop>>,
                     heap: &mut MinHeap| {
        let reached = depart_instant + config.velocity.travel_time(leg);
        let Some(crossed) = space.door(dj).atis.next_open_at(reached) else {
            return;
        };
        let waited = crossed - reached;
        if !policy.admits(waited) || crossed.seconds() > horizon {
            return;
        }
        if crossed.seconds() < best[dj.index()] {
            best[dj.index()] = crossed.seconds();
            prev[dj.index()] = Some(PrevHop {
                from,
                via,
                leg,
                reached,
                waited,
                crossed,
            });
            heap.push(crossed.seconds(), Node::Door(dj.index() as u32));
        }
    };

    for &dj in space.p2d_leaveable(src.partition) {
        if let Some(leg) = space.point_to_door(&src, dj) {
            try_relax(
                dj,
                None,
                src.partition,
                leg,
                t0,
                &mut best,
                &mut prev,
                &mut heap,
            );
        }
    }

    let mut target_arrival = f64::INFINITY;
    let mut target_prev: Option<u32> = None;

    while let Some(entry) = heap.pop() {
        let Node::Door(di) = entry.node else { continue };
        if settled[di as usize] {
            continue;
        }
        settled[di as usize] = true;
        let door = DoorId(di);
        // Labels are finite by relaxation; skip (not panic) on a broken one.
        let Ok(crossed) = Timestamp::from_seconds(best[di as usize]) else {
            continue;
        };

        // Terminal: the door bounds the target partition.
        if space.d2p_enterable(door).contains(&dst.partition) {
            if let Some(leg) = space.point_to_door(&dst, door) {
                let arr = crossed + config.velocity.travel_time(leg);
                if arr.seconds() < target_arrival {
                    target_arrival = arr.seconds();
                    target_prev = Some(di);
                }
            }
        }
        if target_arrival <= best[di as usize] {
            break; // every remaining door is crossed after the target arrival
        }

        for &v in space.d2p_enterable(door) {
            if !allowed(v) {
                continue;
            }
            for &dj in space.p2d_leaveable(v) {
                if dj.index() as u32 == di || settled[dj.index()] {
                    continue;
                }
                if let Some(leg) = space.door_to_door(v, door, dj) {
                    try_relax(
                        dj,
                        Some(di),
                        v,
                        leg,
                        crossed,
                        &mut best,
                        &mut prev,
                        &mut heap,
                    );
                }
            }
        }
    }

    let last = target_prev?;
    // Reconstruct. Every settled door recorded a predecessor entry before it
    // entered the heap, so the chain is complete; `?` degrades a broken
    // invariant to "no path" instead of panicking.
    let mut rev: Vec<(u32, PrevHop)> = Vec::new();
    let mut cur = last;
    loop {
        let p = prev[cur as usize]?;
        rev.push((cur, p));
        match p.from {
            Some(q) => cur = q,
            None => break,
        }
    }
    rev.reverse();
    let mut hops = Vec::with_capacity(rev.len());
    let mut walking = 0.0;
    let mut total_wait = DurationSecs::ZERO;
    for &(di, p) in &rev {
        walking += p.leg;
        total_wait = total_wait + p.waited;
        hops.push(TimedHop {
            door: DoorId(di),
            via_partition: p.via,
            leg_distance: p.leg,
            reached: p.reached,
            waited: p.waited,
            crossed: p.crossed,
        });
    }
    // The terminal door bounds the target partition, so this leg exists.
    let final_leg = space.point_to_door(&dst, DoorId(last))?;
    walking += final_leg;
    Some(TimedPath {
        source: src,
        target: dst,
        hops,
        walking_distance: walking,
        total_wait,
        departure: t0,
        arrival: Timestamp::from_seconds(target_arrival).ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;
    use indoor_time::TimeOfDay;

    fn setup() -> (paper_example::PaperExample, ItGraph, ItspqConfig) {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        (ex, g, ItspqConfig::default())
    }

    #[test]
    fn no_wait_matches_engine_when_route_exists() {
        let (ex, g, cfg) = setup();
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0));
        let timed = earliest_arrival(&g, &q, &cfg, WaitPolicy::None).unwrap();
        assert_eq!(timed.hops.len(), 1);
        assert_eq!(timed.hops[0].door, ex.d(18));
        assert_eq!(timed.total_wait, DurationSecs::ZERO);
        assert!((timed.walking_distance - 12.0).abs() < 1e-9);
    }

    #[test]
    fn waiting_unlocks_the_2330_query() {
        let (ex, g, cfg) = setup();
        // At 23:30 every door out of v13 is closed (d18 until 0:00 next day
        // per its daily schedule, d15 until 8:00, d20 until 5:00).
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30));
        assert!(earliest_arrival(&g, &q, &cfg, WaitPolicy::None).is_none());
        let timed = earliest_arrival(&g, &q, &cfg, WaitPolicy::Unlimited).unwrap();
        // d18 reopens at midnight (ATI [0:00, 23:00) wraps daily): the best
        // plan waits ~29 min at d18 and crosses right after midnight.
        assert_eq!(timed.hops[0].door, ex.d(18));
        assert!(timed.total_wait.seconds() > 0.0);
        assert_eq!(timed.arrival.day_offset(), 1);
    }

    #[test]
    fn bounded_wait_rejects_long_waits() {
        let (ex, g, cfg) = setup();
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30));
        // The needed wait is ~29.5 minutes; 5 minutes is not enough.
        let five_min = WaitPolicy::UpTo(DurationSecs::from_minutes(5.0));
        assert!(earliest_arrival(&g, &q, &cfg, five_min).is_none());
        let forty_min = WaitPolicy::UpTo(DurationSecs::from_minutes(40.0));
        assert!(earliest_arrival(&g, &q, &cfg, forty_min).is_some());
    }

    #[test]
    fn waiting_never_worsens_arrival() {
        let (ex, g, cfg) = setup();
        for (h, m) in [(9, 0), (12, 0), (15, 59), (22, 30)] {
            let q = Query::new(ex.p1, ex.p2, TimeOfDay::hm(h, m));
            let none = earliest_arrival(&g, &q, &cfg, WaitPolicy::None);
            let unlimited = earliest_arrival(&g, &q, &cfg, WaitPolicy::Unlimited);
            if let (Some(a), Some(b)) = (none, unlimited) {
                assert!(
                    b.arrival <= a.arrival,
                    "waiting worsened arrival at {h}:{m}"
                );
            }
        }
    }

    #[test]
    fn same_partition_is_direct() {
        let (ex, g, cfg) = setup();
        let b = IndoorPoint::new(ex.p3.partition, indoor_geom::Point::new(3.0, 4.0));
        let q = Query::new(ex.p3, b, TimeOfDay::hm(23, 30));
        let timed = earliest_arrival(&g, &q, &cfg, WaitPolicy::None).unwrap();
        assert!(timed.hops.is_empty());
        assert!((timed.walking_distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hop_bookkeeping_is_consistent() {
        let (ex, g, cfg) = setup();
        let q = Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0));
        let timed = earliest_arrival(&g, &q, &cfg, WaitPolicy::Unlimited).unwrap();
        for hop in &timed.hops {
            assert!(hop.crossed >= hop.reached);
            assert!((hop.crossed - hop.reached).seconds() - hop.waited.seconds() < 1e-6);
            // The door is open at the crossing instant.
            assert!(ex.space.door(hop.door).atis.is_open_at(hop.crossed));
        }
        assert!(timed.arrival > timed.departure);
    }
}
