//! Independent validation of ITSPQ paths against the two rules of the problem
//! definition. Used by tests, property tests and examples to cross-check every
//! engine.

use indoor_space::{DoorId, IndoorSpace, PartitionId};
use indoor_time::{TimeOfDay, Timestamp, Velocity};

use crate::Path;

/// Numeric tolerance for distance bookkeeping (metres).
const TOL: f64 = 1e-6;

/// A way a path can violate the ITSPQ rules or its own bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub enum PathViolation {
    /// A hop's `via_partition` cannot be reached from the previous node.
    Disconnected {
        /// Index of the offending hop.
        hop: usize,
    },
    /// A door is crossed while closed (rule 1).
    DoorClosed {
        /// The closed door.
        door: DoorId,
        /// The arrival instant that misses its ATIs.
        arrival: Timestamp,
    },
    /// A private partition is traversed without containing `ps`/`pt` (rule 2).
    PrivateTraversal {
        /// The traversed private partition.
        partition: PartitionId,
    },
    /// The recorded cumulative distances or total length do not add up.
    LengthMismatch {
        /// Expected value from independent recomputation.
        expected: f64,
        /// Value recorded on the path.
        recorded: f64,
    },
    /// A hop references a door that does not bound its `via_partition`.
    ForeignDoor {
        /// Index of the offending hop.
        hop: usize,
    },
}

impl std::fmt::Display for PathViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathViolation::Disconnected { hop } => write!(f, "hop {hop} is disconnected"),
            PathViolation::DoorClosed { door, arrival } => {
                write!(f, "door {door} is closed at arrival {arrival}")
            }
            PathViolation::PrivateTraversal { partition } => {
                write!(f, "path traverses private partition {partition}")
            }
            PathViolation::LengthMismatch { expected, recorded } => {
                write!(
                    f,
                    "length mismatch: expected {expected}, recorded {recorded}"
                )
            }
            PathViolation::ForeignDoor { hop } => {
                write!(f, "hop {hop} crosses a door foreign to its partition")
            }
        }
    }
}

impl std::error::Error for PathViolation {}

/// Checks a path against the ITSPQ problem definition:
///
/// 1. every door is open at `t + Δt` where `Δt` is the walking time to it;
/// 2. no private partition other than `P(ps)`/`P(pt)` is traversed;
///
/// plus internal consistency: hops are topologically connected, cumulative
/// distances match the venue's distance matrices, and the recorded length
/// equals the recomputed one.
///
/// # Errors
/// Returns the first violation found.
pub fn validate_path(
    space: &IndoorSpace,
    path: &Path,
    t: TimeOfDay,
    velocity: Velocity,
) -> Result<(), PathViolation> {
    let t0 = Timestamp::from_time_of_day(t);
    let src = path.source;
    let dst = path.target;

    if path.hops.is_empty() {
        // Direct intra-partition segment.
        let expected = src.position.distance(dst.position);
        if src.partition != dst.partition {
            return Err(PathViolation::Disconnected { hop: 0 });
        }
        if (expected - path.length).abs() > TOL {
            return Err(PathViolation::LengthMismatch {
                expected,
                recorded: path.length,
            });
        }
        return Ok(());
    }

    let mut cumulative = 0.0_f64;
    let mut prev_door: Option<DoorId> = None;

    for (i, hop) in path.hops.iter().enumerate() {
        let v = hop.via_partition;

        // Rule 2: traversed partitions must be public unless they host ps/pt.
        let kind = space.partition(v).kind;
        if !kind.traversable() && v != src.partition && v != dst.partition {
            return Err(PathViolation::PrivateTraversal { partition: v });
        }

        // Topological connection into v.
        match prev_door {
            None => {
                if v != src.partition {
                    return Err(PathViolation::Disconnected { hop: i });
                }
            }
            Some(d_prev) => {
                if !space.d2p_enterable(d_prev).contains(&v) {
                    return Err(PathViolation::Disconnected { hop: i });
                }
            }
        }

        // The hop's door must be leaveable from v.
        if !space.p2d_leaveable(v).contains(&hop.door) {
            return Err(PathViolation::ForeignDoor { hop: i });
        }

        // Distance bookkeeping.
        let leg = match prev_door {
            None => space.point_to_door(&src, hop.door),
            Some(d_prev) => space.door_to_door(v, d_prev, hop.door),
        };
        let Some(leg) = leg else {
            return Err(PathViolation::ForeignDoor { hop: i });
        };
        cumulative += leg;
        if (cumulative - hop.distance).abs() > TOL {
            return Err(PathViolation::LengthMismatch {
                expected: cumulative,
                recorded: hop.distance,
            });
        }

        // Rule 1: the door must be open at the arrival instant.
        let arrival = t0 + velocity.travel_time(cumulative);
        if !space.door(hop.door).atis.is_open_at(arrival) {
            return Err(PathViolation::DoorClosed {
                door: hop.door,
                arrival,
            });
        }

        prev_door = Some(hop.door);
    }

    // Final leg into the target partition. The empty-hops case returned
    // above, so a last door exists; report (not panic) if it somehow doesn't.
    let Some(last) = prev_door else {
        return Err(PathViolation::Disconnected { hop: 0 });
    };
    if !space.d2p_enterable(last).contains(&dst.partition) {
        return Err(PathViolation::Disconnected {
            hop: path.hops.len(),
        });
    }
    let Some(leg) = space.point_to_door(&dst, last) else {
        return Err(PathViolation::ForeignDoor {
            hop: path.hops.len(),
        });
    };
    cumulative += leg;
    if (cumulative - path.length).abs() > TOL {
        return Err(PathViolation::LengthMismatch {
            expected: cumulative,
            recorded: path.length,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItGraph, ItspqConfig, Query, SynEngine};
    use indoor_space::paper_example;
    use indoor_time::WALKING_SPEED;

    #[test]
    fn engine_paths_validate() {
        let ex = paper_example::build();
        let eng = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
        for (h, m) in [(9, 0), (12, 0), (15, 59), (22, 0), (5, 30)] {
            for (s, t) in [(ex.p3, ex.p4), (ex.p1, ex.p2), (ex.p2, ex.p3)] {
                let q = Query::new(s, t, TimeOfDay::hm(h, m));
                if let Some(path) = eng.query(&q).path {
                    validate_path(&ex.space, &path, q.time, WALKING_SPEED)
                        .unwrap_or_else(|v| panic!("invalid path at {h}:{m}: {v}"));
                }
            }
        }
    }

    #[test]
    fn detects_closed_door() {
        let ex = paper_example::build();
        let eng = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0));
        let path = eng.query(&q).path.unwrap();
        // Re-validating the 9:00 path as if departing at 23:30 must fail:
        // d18 is closed then.
        let err =
            validate_path(&ex.space, &path, TimeOfDay::hm(23, 30), WALKING_SPEED).unwrap_err();
        assert!(matches!(err, PathViolation::DoorClosed { door, .. } if door == ex.d(18)));
    }

    #[test]
    fn detects_private_traversal() {
        let ex = paper_example::build();
        // Hand-build the forbidden (p3, d15, d16, p4) path through private v15.
        let t0 = Timestamp::from_time_of_day(TimeOfDay::hm(9, 0));
        let s = &ex.space;
        let d1 = s.point_to_door(&ex.p3, ex.d(15)).unwrap();
        let d2 = d1 + s.door_to_door(ex.v(15), ex.d(15), ex.d(16)).unwrap();
        let length = d2 + s.point_to_door(&ex.p4, ex.d(16)).unwrap();
        let path = Path {
            source: ex.p3,
            target: ex.p4,
            hops: vec![
                crate::DoorHop {
                    door: ex.d(15),
                    via_partition: ex.v(13),
                    distance: d1,
                    arrival: t0 + WALKING_SPEED.travel_time(d1),
                },
                crate::DoorHop {
                    door: ex.d(16),
                    via_partition: ex.v(15),
                    distance: d2,
                    arrival: t0 + WALKING_SPEED.travel_time(d2),
                },
            ],
            length,
            departure: t0,
            arrival: t0 + WALKING_SPEED.travel_time(length),
        };
        let err = validate_path(&ex.space, &path, TimeOfDay::hm(9, 0), WALKING_SPEED).unwrap_err();
        assert_eq!(
            err,
            PathViolation::PrivateTraversal {
                partition: ex.v(15)
            }
        );
    }

    #[test]
    fn detects_length_mismatch() {
        let ex = paper_example::build();
        let eng = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0));
        let mut path = eng.query(&q).path.unwrap();
        path.length += 1.0;
        let err = validate_path(&ex.space, &path, q.time, WALKING_SPEED).unwrap_err();
        assert!(matches!(err, PathViolation::LengthMismatch { .. }));
    }

    #[test]
    fn detects_disconnection() {
        let ex = paper_example::build();
        let eng = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0));
        let mut path = eng.query(&q).path.unwrap();
        path.hops[0].via_partition = ex.v(5); // p3 is not in v5
        let err = validate_path(&ex.space, &path, q.time, WALKING_SPEED).unwrap_err();
        assert!(matches!(
            err,
            PathViolation::Disconnected { .. } | PathViolation::ForeignDoor { .. }
        ));
    }

    #[test]
    fn direct_path_validates_and_guards_partition() {
        let ex = paper_example::build();
        let a = indoor_space::IndoorPoint::new(ex.v(13), indoor_geom::Point::new(0.0, 0.0));
        let b = indoor_space::IndoorPoint::new(ex.v(13), indoor_geom::Point::new(3.0, 4.0));
        let t0 = Timestamp::from_time_of_day(TimeOfDay::hm(12, 0));
        let direct = Path {
            source: a,
            target: b,
            hops: vec![],
            length: 5.0,
            departure: t0,
            arrival: t0 + WALKING_SPEED.travel_time(5.0),
        };
        validate_path(&ex.space, &direct, TimeOfDay::hm(12, 0), WALKING_SPEED).unwrap();
        let wrong = Path {
            target: ex.p4,
            ..direct
        };
        assert!(validate_path(&ex.space, &wrong, TimeOfDay::hm(12, 0), WALKING_SPEED).is_err());
    }
}
