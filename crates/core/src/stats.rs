//! Search statistics and memory accounting.

use serde::{Deserialize, Serialize};

/// Counters collected during one ITSPQ search.
///
/// The byte figures implement the paper's *memory cost* metric (Figure 7):
/// they account for the search state (distance/predecessor/visited arrays,
/// priority queue at its peak) and, for ITG/A, for the reduced graphs built or
/// consulted during the query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Doors (or the target) pushed into the priority queue.
    pub heap_pushes: usize,
    /// Entries removed from the priority queue (including stale ones).
    pub heap_pops: usize,
    /// Largest number of simultaneous queue entries.
    pub peak_heap: usize,
    /// Doors settled (deheaped with final distance).
    pub doors_settled: usize,
    /// Partitions expanded.
    pub partitions_expanded: usize,
    /// Attempted door relaxations (line 26–34 of Algorithm 1).
    pub relaxations: usize,
    /// Relaxations that improved a door's tentative distance.
    pub improvements: usize,
    /// `TV_Check` invocations.
    pub tv_checks: usize,
    /// `TV_Check` failures (doors rejected for being closed at arrival).
    pub tv_rejections: usize,
    /// ITG/A: graph refreshes triggered by arrivals past the next checkpoint.
    pub graph_updates: usize,
    /// ITG/A: reduced graphs actually (re)built (cache misses).
    pub views_built: usize,
    /// Estimated bytes of transient search state.
    pub search_bytes: usize,
    /// ITG/A: bytes of the reduced graphs consulted by this query.
    pub reduced_graph_bytes: usize,
}

impl SearchStats {
    /// Total estimated working-set bytes of the query (search state plus
    /// reduced graphs), the quantity plotted in the paper's Figure 7.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.search_bytes + self.reduced_graph_bytes
    }

    /// Same figure in kilobytes.
    #[must_use]
    pub fn estimated_kb(&self) -> f64 {
        self.estimated_bytes() as f64 / 1024.0
    }

    /// Folds another search's counters into this one (sums, except
    /// `peak_heap` which takes the maximum) — used when one logical request
    /// spans several physical searches.
    pub fn merge(&mut self, other: &SearchStats) {
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.peak_heap = self.peak_heap.max(other.peak_heap);
        self.doors_settled += other.doors_settled;
        self.partitions_expanded += other.partitions_expanded;
        self.relaxations += other.relaxations;
        self.improvements += other.improvements;
        self.tv_checks += other.tv_checks;
        self.tv_rejections += other.tv_rejections;
        self.graph_updates += other.graph_updates;
        self.views_built += other.views_built;
        self.search_bytes += other.search_bytes;
        self.reduced_graph_bytes += other.reduced_graph_bytes;
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "settled {} doors / {} partitions, {} relax ({} improved), \
             {} tv-checks ({} rejected), {} graph updates, ~{:.1} KB",
            self.doors_settled,
            self.partitions_expanded,
            self.relaxations,
            self.improvements,
            self.tv_checks,
            self.tv_rejections,
            self.graph_updates,
            self.estimated_kb(),
        )
    }
}

/// How a [`crate::VenueServer`] executed one batch: the planner's grouping
/// outcome and the work the shared frontiers saved.
///
/// `groups / queries` is the sharing ratio — 1.0 means no sharing happened
/// (every group was a singleton or fell back); the lower the ratio, the more
/// searches were amortised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Queries in the batch (malformed ones included).
    pub queries: usize,
    /// Physical searches executed: shared groups plus per-query fallbacks.
    /// Equal to `queries` under [`crate::BatchStrategy::Independent`].
    pub groups: usize,
    /// Queries answered by a shared (≥ 2 member) group frontier.
    pub shared_queries: usize,
    /// Frontier reuses: query answers that did *not* pay their own search
    /// (`queries - groups`, counting malformed queries as zero-cost).
    pub frontier_reuses: usize,
    /// Queries rejected by validation before any search ran.
    pub rejected: usize,
    /// ITG/A reduced views actually built over the whole batch.
    pub views_built: usize,
    /// Door-level sharing: members answered by verified replay of the lead's
    /// decision trace (different source point, same source partition).
    pub replayed: usize,
    /// Interval coalescing: members answered by retiming the lead's path
    /// under the margin certificate (same source point, later departure in
    /// the same checkpoint interval).
    pub retimed: usize,
    /// Group members whose replay/retime could not be certified and were
    /// answered by their own per-query search instead (also counted in
    /// `groups`, subtracted from `shared_queries`/`frontier_reuses`).
    pub fallbacks: usize,
    /// Warm-started groups: plan groups merged with same-partition,
    /// same-checkpoint-interval neighbors whose members are answered from
    /// the donor group's recorded frontier (`ServerConfig::warm_start`).
    #[serde(default)]
    pub warm_starts: usize,
    /// Warm-seeded members answered from a donated frontier (by replay,
    /// retime or duplicate/direct derivation) without paying a search.
    #[serde(default)]
    pub seeded_labels: usize,
    /// Warm-seeded members whose derivation certificate failed; they fell
    /// back to their own per-query search (also counted in `fallbacks`).
    #[serde(default)]
    pub seed_rejects: usize,
    /// Monotonic nanoseconds spent planning the batch (grouping + keying).
    #[serde(default)]
    pub plan_nanos: u64,
    /// Monotonic nanoseconds spent in physical searches (summed across
    /// workers, so > wall-clock when workers overlap).
    #[serde(default)]
    pub search_nanos: u64,
    /// Monotonic nanoseconds spent scattering group answers to members
    /// (derivations, replays and certificate-failure fallback searches;
    /// summed across workers).
    #[serde(default)]
    pub scatter_nanos: u64,
}

impl BatchStats {
    /// Physical searches per query (1.0 = no sharing; lower is better).
    #[must_use]
    pub fn sharing_ratio(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.groups as f64 / self.queries as f64
        }
    }

    /// The execution-level accounting identity every batch satisfies: each
    /// non-rejected query either paid a physical search or reused a shared
    /// frontier — `groups + frontier_reuses == queries - rejected`.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.groups + self.frontier_reuses == self.queries - self.rejected
            && self.frontier_reuses + self.rejected <= self.queries
            && self.replayed + self.retimed <= self.frontier_reuses
            && self.shared_queries <= self.queries - self.rejected
            && self.seeded_labels <= self.frontier_reuses
            && self.seed_rejects <= self.fallbacks
            && self.warm_starts <= self.groups
    }

    /// A copy with the phase timings zeroed: the deterministic part of the
    /// report. Everything else is a pure sum over plan items, so two runs of
    /// the same batch — any worker count, any scheduling — compare equal
    /// here while the raw struct differs in measured nanoseconds.
    #[must_use]
    pub fn timings_zeroed(&self) -> BatchStats {
        BatchStats {
            plan_nanos: 0,
            search_nanos: 0,
            scatter_nanos: 0,
            ..*self
        }
    }
}

impl std::fmt::Display for BatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries in {} searches (ratio {:.2}, {} shared, {} reuses \
             [{} replayed, {} retimed], {} fallbacks, {} rejected)",
            self.queries,
            self.groups,
            self.sharing_ratio(),
            self.shared_queries,
            self.frontier_reuses,
            self.replayed,
            self.retimed,
            self.fallbacks,
            self.rejected,
        )?;
        if self.warm_starts > 0 {
            write!(
                f,
                ", {} warm starts ({} seeded, {} seed rejects)",
                self.warm_starts, self.seeded_labels, self.seed_rejects,
            )?;
        }
        if self.plan_nanos + self.search_nanos + self.scatter_nanos > 0 {
            write!(
                f,
                ", phases plan {:.2}ms / search {:.2}ms / scatter {:.2}ms",
                self.plan_nanos as f64 / 1e6,
                self.search_nanos as f64 / 1e6,
                self.scatter_nanos as f64 / 1e6,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_peak() {
        let mut a = SearchStats {
            heap_pushes: 3,
            peak_heap: 5,
            search_bytes: 100,
            ..SearchStats::default()
        };
        let b = SearchStats {
            heap_pushes: 4,
            peak_heap: 2,
            search_bytes: 50,
            ..SearchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.heap_pushes, 7);
        assert_eq!(a.peak_heap, 5);
        assert_eq!(a.search_bytes, 150);
    }

    #[test]
    fn sharing_ratio_counts_searches_per_query() {
        let s = BatchStats {
            queries: 8,
            groups: 2,
            shared_queries: 8,
            frontier_reuses: 6,
            ..BatchStats::default()
        };
        assert!((s.sharing_ratio() - 0.25).abs() < 1e-12);
        assert!(s.to_string().contains("ratio 0.25"));
        // An empty batch shares nothing.
        assert!((BatchStats::default().sharing_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consistency_identity_checks_books() {
        let ok = BatchStats {
            queries: 10,
            groups: 5,
            shared_queries: 7,
            frontier_reuses: 4,
            rejected: 1,
            replayed: 2,
            retimed: 1,
            ..BatchStats::default()
        };
        assert!(ok.is_consistent());
        // A lost fallback adjustment breaks the identity.
        let bad = BatchStats { groups: 6, ..ok };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn warm_books_and_timings_feed_consistency_and_zeroing() {
        let s = BatchStats {
            queries: 10,
            groups: 3,
            shared_queries: 8,
            frontier_reuses: 6,
            rejected: 1,
            replayed: 3,
            retimed: 1,
            fallbacks: 1,
            warm_starts: 1,
            seeded_labels: 2,
            seed_rejects: 1,
            plan_nanos: 1_000,
            search_nanos: 2_000,
            scatter_nanos: 3_000,
            ..BatchStats::default()
        };
        assert!(s.is_consistent());
        // Seeded members are a subset of the reuses; rejects of fallbacks.
        assert!(!BatchStats {
            seeded_labels: 7,
            ..s
        }
        .is_consistent());
        assert!(!BatchStats {
            seed_rejects: 2,
            ..s
        }
        .is_consistent());
        assert!(!BatchStats {
            warm_starts: 4,
            ..s
        }
        .is_consistent());
        // Zeroing strips exactly the timing fields.
        let z = s.timings_zeroed();
        assert_eq!((z.plan_nanos, z.search_nanos, z.scatter_nanos), (0, 0, 0));
        assert_eq!(
            z,
            BatchStats {
                plan_nanos: 0,
                search_nanos: 0,
                scatter_nanos: 0,
                ..s
            }
        );
        // Two runs differing only in measured time agree after zeroing.
        let other = BatchStats {
            plan_nanos: 999,
            ..s
        };
        assert_ne!(s, other);
        assert_eq!(s.timings_zeroed(), other.timings_zeroed());
        let text = s.to_string();
        assert!(text.contains("1 warm starts (2 seeded, 1 seed rejects)"));
        assert!(text.contains("phases plan 0.00ms"));
    }

    #[test]
    fn bytes_aggregate() {
        let s = SearchStats {
            search_bytes: 1024,
            reduced_graph_bytes: 2048,
            ..SearchStats::default()
        };
        assert_eq!(s.estimated_bytes(), 3072);
        assert!((s.estimated_kb() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_counters() {
        let s = SearchStats {
            doors_settled: 7,
            tv_checks: 3,
            ..SearchStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("7 doors"));
        assert!(text.contains("3 tv-checks"));
    }
}
