//! Search statistics and memory accounting.

use serde::{Deserialize, Serialize};

/// Counters collected during one ITSPQ search.
///
/// The byte figures implement the paper's *memory cost* metric (Figure 7):
/// they account for the search state (distance/predecessor/visited arrays,
/// priority queue at its peak) and, for ITG/A, for the reduced graphs built or
/// consulted during the query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Doors (or the target) pushed into the priority queue.
    pub heap_pushes: usize,
    /// Entries removed from the priority queue (including stale ones).
    pub heap_pops: usize,
    /// Largest number of simultaneous queue entries.
    pub peak_heap: usize,
    /// Doors settled (deheaped with final distance).
    pub doors_settled: usize,
    /// Partitions expanded.
    pub partitions_expanded: usize,
    /// Attempted door relaxations (line 26–34 of Algorithm 1).
    pub relaxations: usize,
    /// Relaxations that improved a door's tentative distance.
    pub improvements: usize,
    /// `TV_Check` invocations.
    pub tv_checks: usize,
    /// `TV_Check` failures (doors rejected for being closed at arrival).
    pub tv_rejections: usize,
    /// ITG/A: graph refreshes triggered by arrivals past the next checkpoint.
    pub graph_updates: usize,
    /// ITG/A: reduced graphs actually (re)built (cache misses).
    pub views_built: usize,
    /// Estimated bytes of transient search state.
    pub search_bytes: usize,
    /// ITG/A: bytes of the reduced graphs consulted by this query.
    pub reduced_graph_bytes: usize,
}

impl SearchStats {
    /// Total estimated working-set bytes of the query (search state plus
    /// reduced graphs), the quantity plotted in the paper's Figure 7.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.search_bytes + self.reduced_graph_bytes
    }

    /// Same figure in kilobytes.
    #[must_use]
    pub fn estimated_kb(&self) -> f64 {
        self.estimated_bytes() as f64 / 1024.0
    }

    /// Folds another search's counters into this one (sums, except
    /// `peak_heap` which takes the maximum) — used when one logical request
    /// spans several physical searches.
    pub fn merge(&mut self, other: &SearchStats) {
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.peak_heap = self.peak_heap.max(other.peak_heap);
        self.doors_settled += other.doors_settled;
        self.partitions_expanded += other.partitions_expanded;
        self.relaxations += other.relaxations;
        self.improvements += other.improvements;
        self.tv_checks += other.tv_checks;
        self.tv_rejections += other.tv_rejections;
        self.graph_updates += other.graph_updates;
        self.views_built += other.views_built;
        self.search_bytes += other.search_bytes;
        self.reduced_graph_bytes += other.reduced_graph_bytes;
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "settled {} doors / {} partitions, {} relax ({} improved), \
             {} tv-checks ({} rejected), {} graph updates, ~{:.1} KB",
            self.doors_settled,
            self.partitions_expanded,
            self.relaxations,
            self.improvements,
            self.tv_checks,
            self.tv_rejections,
            self.graph_updates,
            self.estimated_kb(),
        )
    }
}

/// How a [`crate::VenueServer`] executed one batch: the planner's grouping
/// outcome and the work the shared frontiers saved.
///
/// `groups / queries` is the sharing ratio — 1.0 means no sharing happened
/// (every group was a singleton or fell back); the lower the ratio, the more
/// searches were amortised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Queries in the batch (malformed ones included).
    pub queries: usize,
    /// Physical searches executed: shared groups plus per-query fallbacks.
    /// Equal to `queries` under [`crate::BatchStrategy::Independent`].
    pub groups: usize,
    /// Queries answered by a shared (≥ 2 member) group frontier.
    pub shared_queries: usize,
    /// Frontier reuses: query answers that did *not* pay their own search
    /// (`queries - groups`, counting malformed queries as zero-cost).
    pub frontier_reuses: usize,
    /// Queries rejected by validation before any search ran.
    pub rejected: usize,
    /// ITG/A reduced views actually built over the whole batch.
    pub views_built: usize,
    /// Door-level sharing: members answered by verified replay of the lead's
    /// decision trace (different source point, same source partition).
    pub replayed: usize,
    /// Interval coalescing: members answered by retiming the lead's path
    /// under the margin certificate (same source point, later departure in
    /// the same checkpoint interval).
    pub retimed: usize,
    /// Group members whose replay/retime could not be certified and were
    /// answered by their own per-query search instead (also counted in
    /// `groups`, subtracted from `shared_queries`/`frontier_reuses`).
    pub fallbacks: usize,
}

impl BatchStats {
    /// Physical searches per query (1.0 = no sharing; lower is better).
    #[must_use]
    pub fn sharing_ratio(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.groups as f64 / self.queries as f64
        }
    }

    /// The execution-level accounting identity every batch satisfies: each
    /// non-rejected query either paid a physical search or reused a shared
    /// frontier — `groups + frontier_reuses == queries - rejected`.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.groups + self.frontier_reuses == self.queries - self.rejected
            && self.frontier_reuses + self.rejected <= self.queries
            && self.replayed + self.retimed <= self.frontier_reuses
            && self.shared_queries <= self.queries - self.rejected
    }
}

impl std::fmt::Display for BatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries in {} searches (ratio {:.2}, {} shared, {} reuses \
             [{} replayed, {} retimed], {} fallbacks, {} rejected)",
            self.queries,
            self.groups,
            self.sharing_ratio(),
            self.shared_queries,
            self.frontier_reuses,
            self.replayed,
            self.retimed,
            self.fallbacks,
            self.rejected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_peak() {
        let mut a = SearchStats {
            heap_pushes: 3,
            peak_heap: 5,
            search_bytes: 100,
            ..SearchStats::default()
        };
        let b = SearchStats {
            heap_pushes: 4,
            peak_heap: 2,
            search_bytes: 50,
            ..SearchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.heap_pushes, 7);
        assert_eq!(a.peak_heap, 5);
        assert_eq!(a.search_bytes, 150);
    }

    #[test]
    fn sharing_ratio_counts_searches_per_query() {
        let s = BatchStats {
            queries: 8,
            groups: 2,
            shared_queries: 8,
            frontier_reuses: 6,
            ..BatchStats::default()
        };
        assert!((s.sharing_ratio() - 0.25).abs() < 1e-12);
        assert!(s.to_string().contains("ratio 0.25"));
        // An empty batch shares nothing.
        assert!((BatchStats::default().sharing_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consistency_identity_checks_books() {
        let ok = BatchStats {
            queries: 10,
            groups: 5,
            shared_queries: 7,
            frontier_reuses: 4,
            rejected: 1,
            replayed: 2,
            retimed: 1,
            ..BatchStats::default()
        };
        assert!(ok.is_consistent());
        // A lost fallback adjustment breaks the identity.
        let bad = BatchStats { groups: 6, ..ok };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn bytes_aggregate() {
        let s = SearchStats {
            search_bytes: 1024,
            reduced_graph_bytes: 2048,
            ..SearchStats::default()
        };
        assert_eq!(s.estimated_bytes(), 3072);
        assert!((s.estimated_kb() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_counters() {
        let s = SearchStats {
            doors_settled: 7,
            tv_checks: 3,
            ..SearchStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("7 doors"));
        assert!(text.contains("3 tv-checks"));
    }
}
