//! Search statistics and memory accounting.

use serde::{Deserialize, Serialize};

/// Counters collected during one ITSPQ search.
///
/// The byte figures implement the paper's *memory cost* metric (Figure 7):
/// they account for the search state (distance/predecessor/visited arrays,
/// priority queue at its peak) and, for ITG/A, for the reduced graphs built or
/// consulted during the query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Doors (or the target) pushed into the priority queue.
    pub heap_pushes: usize,
    /// Entries removed from the priority queue (including stale ones).
    pub heap_pops: usize,
    /// Largest number of simultaneous queue entries.
    pub peak_heap: usize,
    /// Doors settled (deheaped with final distance).
    pub doors_settled: usize,
    /// Partitions expanded.
    pub partitions_expanded: usize,
    /// Attempted door relaxations (line 26–34 of Algorithm 1).
    pub relaxations: usize,
    /// Relaxations that improved a door's tentative distance.
    pub improvements: usize,
    /// `TV_Check` invocations.
    pub tv_checks: usize,
    /// `TV_Check` failures (doors rejected for being closed at arrival).
    pub tv_rejections: usize,
    /// ITG/A: graph refreshes triggered by arrivals past the next checkpoint.
    pub graph_updates: usize,
    /// ITG/A: reduced graphs actually (re)built (cache misses).
    pub views_built: usize,
    /// Estimated bytes of transient search state.
    pub search_bytes: usize,
    /// ITG/A: bytes of the reduced graphs consulted by this query.
    pub reduced_graph_bytes: usize,
}

impl SearchStats {
    /// Total estimated working-set bytes of the query (search state plus
    /// reduced graphs), the quantity plotted in the paper's Figure 7.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        self.search_bytes + self.reduced_graph_bytes
    }

    /// Same figure in kilobytes.
    #[must_use]
    pub fn estimated_kb(&self) -> f64 {
        self.estimated_bytes() as f64 / 1024.0
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "settled {} doors / {} partitions, {} relax ({} improved), \
             {} tv-checks ({} rejected), {} graph updates, ~{:.1} KB",
            self.doors_settled,
            self.partitions_expanded,
            self.relaxations,
            self.improvements,
            self.tv_checks,
            self.tv_rejections,
            self.graph_updates,
            self.estimated_kb(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_aggregate() {
        let s = SearchStats {
            search_bytes: 1024,
            reduced_graph_bytes: 2048,
            ..SearchStats::default()
        };
        assert_eq!(s.estimated_bytes(), 3072);
        assert!((s.estimated_kb() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_counters() {
        let s = SearchStats {
            doors_settled: 7,
            tv_checks: 3,
            ..SearchStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("7 doors"));
        assert!(text.contains("3 tv-checks"));
    }
}
