//! Min-heap plumbing for Dijkstra over `f64` distances.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ord::cmp_dist;

/// A node of the search: a door (by dense index) or a query target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Node {
    /// A door, by `DoorId::index()`.
    Door(u32),
    /// A virtual target node `pt`, by its index within the search's target
    /// set (always 0 for single-target searches).
    Target(u32),
}

/// A heap entry ordered so that `BinaryHeap` (a max-heap) pops the smallest
/// distance first. Ties break on the node for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Entry {
    pub dist: f64,
    pub node: Node,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller distance = greater priority. Total order: a NaN
        // distance (corrupt DM entry, degenerate geometry) sorts as the
        // *worst* priority instead of panicking the search.
        cmp_dist(other.dist, self.dist)
            .then_with(|| node_rank(other.node).cmp(&node_rank(self.node)))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn node_rank(n: Node) -> u64 {
    match n {
        Node::Door(i) => u64::from(i),
        // Targets rank after every door (doors settle first on distance
        // ties); multiple targets tie-break among themselves by index.
        Node::Target(k) => (1 << 32) + u64::from(k),
    }
}

/// A min-heap that tracks its peak size (for the memory-cost metric).
#[derive(Debug, Default)]
pub(crate) struct MinHeap {
    heap: BinaryHeap<Entry>,
    peak: usize,
}

impl MinHeap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, dist: f64, node: Node) {
        self.heap.push(Entry { dist, node });
        self.peak = self.peak.max(self.heap.len());
    }

    pub fn pop(&mut self) -> Option<Entry> {
        self.heap.pop()
    }

    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_distance_order() {
        let mut h = MinHeap::new();
        h.push(5.0, Node::Door(1));
        h.push(1.0, Node::Door(2));
        h.push(3.0, Node::Target(0));
        h.push(2.0, Node::Door(0));
        let order: Vec<f64> = std::iter::from_fn(|| h.pop().map(|e| e.dist)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn equal_distances_pop_door_before_target_deterministically() {
        let mut h = MinHeap::new();
        h.push(1.0, Node::Target(1));
        h.push(1.0, Node::Target(0));
        h.push(1.0, Node::Door(7));
        h.push(1.0, Node::Door(3));
        assert_eq!(h.pop().unwrap().node, Node::Door(3));
        assert_eq!(h.pop().unwrap().node, Node::Door(7));
        assert_eq!(h.pop().unwrap().node, Node::Target(0));
        assert_eq!(h.pop().unwrap().node, Node::Target(1));
    }

    #[test]
    fn nan_distance_pops_last_instead_of_panicking() {
        let mut h = MinHeap::new();
        h.push(f64::NAN, Node::Door(0));
        h.push(2.0, Node::Door(1));
        h.push(f64::INFINITY, Node::Door(2));
        assert_eq!(h.pop().unwrap().dist, 2.0);
        assert_eq!(h.pop().unwrap().dist, f64::INFINITY);
        assert!(h.pop().unwrap().dist.is_nan());
    }

    #[test]
    fn tracks_peak() {
        let mut h = MinHeap::new();
        h.push(1.0, Node::Door(0));
        h.push(2.0, Node::Door(1));
        h.pop();
        h.push(3.0, Node::Door(2));
        assert_eq!(h.peak(), 2);
    }
}
