//! The concurrent batched query front-end: one venue, many workers.
//!
//! A [`VenueServer`] owns a single `Arc<ItGraph>` and answers
//! [`Query`] batches on a configurable number of worker threads
//! ([`ServerConfig::workers`]) via [`VenueServer::query_batch`]. Workers are
//! plain [`std::thread::scope`] threads pulling query indices off an atomic
//! counter (dynamic load balancing — an expensive query does not stall the
//! rest of its chunk), and answers come back in input order.
//!
//! What makes this safe and fast is the ownership model of the rest of the
//! crate: the IT-Graph is immutable and `Arc`-shared, so workers borrow it
//! freely, and the only mutable shared state is ITG/A's reduced-graph cache
//! behind a `parking_lot::RwLock` — read-locked on the hot path, write-locked
//! only the first time a checkpoint interval is seen. Each interval's view is
//! built exactly once per server, never per worker (see
//! `AsynEngine::view_for`). Call [`VenueServer::warm`] to precompute every
//! interval before opening the floodgates.
//!
//! By default the server answers with ITG/A in [`AsynMode::Exact`], which is
//! answer-for-answer identical to ITG/S while sharing the cached reduced
//! graphs across queries; [`ServeMethod::Syn`] switches to pure ITG/S.
//!
//! # Example
//!
//! The paper's Example 1 served as a batch:
//!
//! ```
//! use indoor_space::paper_example;
//! use indoor_time::TimeOfDay;
//! use itspq_core::server::VenueServer;
//! use itspq_core::{ItGraph, Query};
//!
//! let ex = paper_example::build();
//! let server = VenueServer::new(ItGraph::shared(ex.space.clone())).with_workers(2);
//!
//! let batch = vec![
//!     Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),   // 12 m via d18
//!     Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)), // no such routes
//! ];
//! let answers = server.query_batch(&batch);
//! assert!((answers[0].path.as_ref().unwrap().length - 12.0).abs() < 1e-9);
//! assert!(answers[1].path.is_none());
//! ```

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use indoor_space::{IndoorPoint, PartitionId};
use parking_lot::Mutex;

use crate::framework::{direct_path, SweepObserver, Trace};
use crate::replay::{replay_member, LeadIndex, ReplayScratch};
use crate::{
    AsynEngine, AsynMode, BatchStats, DoorHop, ExpandPolicy, GroupKey, ItGraph, ItspqConfig, Path,
    Query, QueryError, QueryResult, SearchStats, SynEngine,
};

/// Rounding slack subtracted from the interval-coalescing margin: a member's
/// departure shift must clear the lead's smallest checkpoint margin by this
/// much before its arrivals are certified to stay in the same intervals.
/// Timeline values are ≤ ~10⁶ s, where an f64 ulp is ~10⁻¹⁰ s — a microsecond
/// of slack is astronomically conservative and costs no real coalescing.
const RETIME_SLACK_SECS: f64 = 1e-6;

/// Which engine answers the server's queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMethod {
    /// ITG/S: synchronous ATI checks, no shared state at all.
    Syn,
    /// ITG/A: asynchronous checks over the shared reduced-graph cache.
    Asyn,
}

/// How [`VenueServer::query_batch`] executes a batch.
///
/// The three sharing levels are strictly nested: every group the `Shared`
/// planner forms is also formed (possibly merged further) by `SharedDoor`,
/// and every `SharedDoor` group by `SharedInterval`. All levels answer
/// byte-identically to `Independent` — coarser keys admit members whose
/// answers are *derived* from the group search (replayed or retimed) only
/// when a per-member certificate proves the derivation exact; uncertifiable
/// members fall back to their own per-query search (see `ARCHITECTURE.md`
/// §Shared execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStrategy {
    /// One search per query, exactly as submitted.
    Independent,
    /// Group queries by [`GroupKey`] (identical source point and departure
    /// time) and answer each ≥ 2-member group with a single shared search
    /// frontier; singleton groups and shared-ineligible queries fall back to
    /// per-query execution. Sharing only happens where the search is provably
    /// target-independent.
    Shared,
    /// Door-level sharing: additionally group queries that depart from
    /// *different points of the same source partition* at the identical
    /// time. The group search runs from one member's source and records its
    /// decision trace; every other member's answer is recomputed by replaying
    /// that trace against the member's own source legs, bailing to a
    /// per-query search on the first divergent decision.
    SharedDoor,
    /// Interval coalescing: additionally group queries whose departure times
    /// differ but fall in the same [`indoor_time::CheckpointSet`] interval.
    /// The earliest departure leads; same-point members are retimed under a
    /// margin certificate, different-point members are replayed as in
    /// [`BatchStrategy::SharedDoor`].
    SharedInterval,
}

impl BatchStrategy {
    /// Does this level group across source points within a partition?
    #[must_use]
    pub fn shares_door(self) -> bool {
        matches!(
            self,
            BatchStrategy::SharedDoor | BatchStrategy::SharedInterval
        )
    }

    /// Does this level group across departure times within an interval?
    #[must_use]
    pub fn shares_interval(self) -> bool {
        self == BatchStrategy::SharedInterval
    }
}

/// Tunables of a [`VenueServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads used by [`VenueServer::query_batch`] (at least 1).
    /// Clamped to the host's available parallelism at execution time unless
    /// [`ServerConfig::pin_workers`] is set — see
    /// [`ServerConfig::effective_workers`].
    pub workers: usize,
    /// Use exactly [`ServerConfig::workers`] threads even past the host's
    /// available parallelism. Off by default: oversubscribing cores buys
    /// only scheduler churn (answers never depend on the worker count).
    /// Benches that sweep worker counts set this to measure the
    /// oversubscribed configurations they report.
    pub pin_workers: bool,
    /// Which engine answers queries.
    pub method: ServeMethod,
    /// How batches are executed.
    pub strategy: BatchStrategy,
    /// Warm-start donation across plan groups: merge same-partition groups
    /// whose departures share a checkpoint interval, run the largest
    /// constituent group first, and answer the remaining members from its
    /// recorded frontier (replay / retime under the usual per-member
    /// certificates — byte-identical or per-query fallback). Only meaningful
    /// at [`BatchStrategy::SharedDoor`] (at `SharedInterval` the planner key
    /// already merges these groups); off by default so each level's plan
    /// stays a strict coarsening of the previous one.
    pub warm_start: bool,
    /// Engine configuration shared by both methods.
    pub itspq: ItspqConfig,
}

impl ServerConfig {
    /// Worker threads a batch will actually spawn: `workers` (at least 1)
    /// clamped to the host's available parallelism, unless
    /// [`ServerConfig::pin_workers`] demands the literal count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        let w = self.workers.max(1);
        if self.pin_workers {
            w
        } else {
            w.min(host_parallelism())
        }
    }
}

impl Default for ServerConfig {
    /// Workers follow the machine (capped at 8); the method is ITG/A in
    /// [`AsynMode::Exact`] — identical answers to ITG/S, but sharing the
    /// reduced-graph cache across queries and workers. The strategy is
    /// [`BatchStrategy::Shared`]: inert under the default `PaperPruned`
    /// expansion (sharing requires `FullRelax`), free speedup otherwise.
    fn default() -> Self {
        ServerConfig {
            workers: default_workers(),
            pin_workers: false,
            method: ServeMethod::Asyn,
            strategy: BatchStrategy::Shared,
            warm_start: false,
            itspq: ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
        }
    }
}

/// Worker count when none is configured: the machine's available
/// parallelism, capped at 8.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// The host's available parallelism (1 when it cannot be determined).
#[must_use]
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A shared-venue query server: owns one `Arc<ItGraph>`, shares the ITG/A
/// reduced-graph cache across worker threads, and answers query batches in
/// parallel.
///
/// The server is `Sync`; `query` and `query_batch` take `&self`, so one
/// instance can also be driven from externally managed threads.
#[derive(Debug)]
pub struct VenueServer {
    graph: Arc<ItGraph>,
    syn: SynEngine,
    asyn: AsynEngine,
    config: ServerConfig,
    scratch: ScratchPool,
}

impl VenueServer {
    /// Creates a server with [`ServerConfig::default`].
    #[must_use]
    pub fn new(graph: impl Into<Arc<ItGraph>>) -> Self {
        Self::with_config(graph, ServerConfig::default())
    }

    /// Creates a server with an explicit configuration.
    #[must_use]
    pub fn with_config(graph: impl Into<Arc<ItGraph>>, config: ServerConfig) -> Self {
        let graph = graph.into();
        VenueServer {
            syn: SynEngine::new(Arc::clone(&graph), config.itspq),
            asyn: AsynEngine::new(Arc::clone(&graph), config.itspq),
            graph,
            config,
            scratch: ScratchPool::default(),
        }
    }

    /// Returns the server with the worker count replaced (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Returns the server with the worker count replaced *and pinned*:
    /// batches use exactly this many threads even beyond the host's
    /// available parallelism (see [`ServerConfig::pin_workers`]).
    #[must_use]
    pub fn with_pinned_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self.config.pin_workers = true;
        self
    }

    /// Returns the server with warm-start frontier donation toggled (see
    /// [`ServerConfig::warm_start`]).
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.config.warm_start = warm;
        self
    }

    /// Returns the server with the answering method replaced.
    #[must_use]
    pub fn with_method(mut self, method: ServeMethod) -> Self {
        self.config.method = method;
        self
    }

    /// Returns the server with the batch strategy replaced.
    #[must_use]
    pub fn with_strategy(mut self, strategy: BatchStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// The shared graph.
    #[must_use]
    pub fn graph(&self) -> &Arc<ItGraph> {
        &self.graph
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Worker threads used per batch.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Precomputes the reduced graph of every checkpoint interval, so no
    /// query ever pays the write-lock construction path.
    pub fn warm(&self) {
        self.asyn.precompute_all();
    }

    /// Number of reduced-graph views currently cached.
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.asyn.cached_views()
    }

    /// Total heap bytes of the cached reduced-graph views.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.asyn.cache_bytes()
    }

    /// Answers a single query with the configured method.
    #[must_use]
    pub fn query(&self, query: &Query) -> QueryResult {
        match self.config.method {
            ServeMethod::Syn => self.syn.query(query),
            ServeMethod::Asyn => self.asyn.query(query),
        }
    }

    /// Answers a single query after validating it, so malformed input (NaN
    /// coordinates, out-of-range partitions) surfaces as a value instead of
    /// unwinding a worker thread.
    ///
    /// # Errors
    /// [`QueryError`] describing the first malformed endpoint.
    pub fn try_query(&self, query: &Query) -> Result<QueryResult, QueryError> {
        query.validate(self.graph.space())?;
        Ok(self.query(query))
    }

    /// Answers a batch of queries on up to [`ServerConfig::workers`] threads,
    /// returning results in input order.
    ///
    /// Under [`BatchStrategy::Shared`] the batch is first planned into work
    /// items — shared groups and per-query fallbacks (see [`plan`]) — and
    /// workers pull *items* off a shared atomic counter; under
    /// [`BatchStrategy::Independent`] every item is one query. Either way the
    /// answers are the same and independent of the worker count and of
    /// scheduling (the only shared mutable state, the reduced-graph cache,
    /// affects timing, never answers).
    ///
    /// Queries that fail validation are executed raw, exactly as
    /// [`VenueServer::query`] would (degrading to "no such routes" rather
    /// than panicking); use [`VenueServer::try_query_batch`] to surface them
    /// as [`QueryError`] values instead.
    ///
    /// [`plan`]: VenueServer::plan
    #[must_use]
    pub fn query_batch(&self, queries: &[Query]) -> Vec<QueryResult> {
        self.query_batch_with_stats(queries).0
    }

    /// [`VenueServer::query_batch`] plus the batch-level execution report.
    #[must_use]
    pub fn query_batch_with_stats(&self, queries: &[Query]) -> (Vec<QueryResult>, BatchStats) {
        let (results, stats) = self.execute_batch(queries, false);
        let results = results
            .into_iter()
            .map(|r| r.expect("raw batches never reject")) // itspq-lint: allow(no-panic-in-lib, "execute_batch only emits Rejected items when reject_malformed is true; this call passes false")
            .collect();
        (results, stats)
    }

    /// Answers a batch with validation: malformed queries come back as
    /// [`QueryError`] values (no search runs for them), well-formed ones as
    /// their [`QueryResult`], all in input order.
    #[must_use = "the per-query errors must be inspected"]
    pub fn try_query_batch(&self, queries: &[Query]) -> Vec<Result<QueryResult, QueryError>> {
        self.try_query_batch_with_stats(queries).0
    }

    /// [`VenueServer::try_query_batch`] plus the batch-level execution report.
    #[must_use = "the per-query errors must be inspected"]
    pub fn try_query_batch_with_stats(
        &self,
        queries: &[Query],
    ) -> (Vec<Result<QueryResult, QueryError>>, BatchStats) {
        self.execute_batch(queries, true)
    }

    /// Plans a batch into work items. Exposed for tests and capacity
    /// dashboards; [`VenueServer::query_batch`] calls it internally.
    ///
    /// A query joins a shared group only when every sharing precondition
    /// holds (strategy, `FullRelax` expansion, validity, traversable-or-same
    /// target partition — see [`BatchStrategy`]); the grouping key widens
    /// with the strategy level (exact source+time, then source partition +
    /// exact time, then source partition + checkpoint interval). Groups that
    /// end up with a single member are demoted to per-query items, so a
    /// plan's groups always amortise at least two queries. Each group's first
    /// member — its *lead*, whose search the others derive from — is rotated
    /// to the earliest departure so every member's time shift is ≥ 0.
    #[must_use]
    pub fn plan(&self, queries: &[Query], reject_malformed: bool) -> BatchPlan {
        let space = self.graph.space();
        let strategy = self.config.strategy;
        let sharing = strategy != BatchStrategy::Independent
            && self.config.itspq.expand == ExpandPolicy::FullRelax;

        let mut items: Vec<WorkItem> = Vec::with_capacity(queries.len());
        // The grouping map and the per-group rosters are pooled on the
        // server: planning a steady stream of batches reuses one allocation
        // set instead of rebuilding a map and one Vec per group each
        // call. Rosters are compacted into the plan-owned `members` arena
        // (one allocation) on the way out.
        let mut scratch = self.scratch.plan.lock(); // itspq-lint: allow(lock-scope, "plan scratch guard spans the grouping loop by design; the or_insert_with closure only grows a pooled roster Vec — no cache build, no re-entrant locking")
        let PlanScratch { group_of, groups } = &mut *scratch;
        group_of.clear();
        let mut active = 0usize;
        for (i, q) in queries.iter().enumerate() {
            match q.validate(space) {
                Err(e) if reject_malformed => {
                    items.push(WorkItem::Rejected(i, e));
                    continue;
                }
                Err(_) => {
                    // Raw mode: run it unvalidated like `query` would, but
                    // never share it (a NaN key would alias distinct
                    // searches).
                    items.push(WorkItem::Single(i));
                    continue;
                }
                Ok(()) => {}
            }
            let tp = q.target.partition;
            let sharable =
                sharing && (tp == q.source.partition || space.partition(tp).kind.traversable());
            if !sharable {
                items.push(WorkItem::Single(i));
                continue;
            }
            let key = match strategy {
                BatchStrategy::SharedDoor => PlanKey::Door {
                    partition: q.source.partition,
                    time: time_bits(q),
                },
                BatchStrategy::SharedInterval => PlanKey::Interval {
                    partition: q.source.partition,
                    interval: space.checkpoints().interval_index(q.time),
                },
                // `Independent` cannot reach here (sharing is false).
                _ => PlanKey::Exact(GroupKey::of(q, space)),
            };
            let gi = *group_of.entry(key).or_insert_with(|| {
                if active == groups.len() {
                    groups.push(Vec::new());
                }
                groups[active].clear();
                active += 1;
                active - 1
            });
            groups[gi].push(i);
        }

        let mut members: Vec<usize> = Vec::new();
        let warm = sharing && self.config.warm_start && strategy.shares_door();
        if warm {
            // Warm-start donation: key-distinct groups leaving the same
            // partition inside one checkpoint interval merge into a single
            // item. The largest constituent group is the *donor* — it runs
            // (as `members[..donor_len]`, its earliest departure leading)
            // and the appended neighbors are answered from its recorded
            // frontier under the usual certificates. At `SharedInterval`
            // the plan key equals the neighborhood key, so every
            // neighborhood is a single group and this is the identity.
            let mut hood_of: BTreeMap<(PartitionId, usize), usize> = BTreeMap::new();
            let mut hoods: Vec<Vec<usize>> = Vec::new();
            for g in 0..active {
                let q = &queries[groups[g][0]];
                let key = (
                    q.source.partition,
                    space.checkpoints().interval_index(q.time),
                );
                let h = *hood_of.entry(key).or_insert_with(|| {
                    hoods.push(Vec::new());
                    hoods.len() - 1
                });
                hoods[h].push(g);
            }
            for hood in hoods {
                if let [only] = hood[..] {
                    flush_group(queries, &mut groups[only], &mut items, &mut members);
                    continue;
                }
                let mut donor = hood[0];
                for &g in &hood[1..] {
                    if groups[g].len() > groups[donor].len() {
                        donor = g; // first-created wins ties
                    }
                }
                rotate_earliest_lead(queries, &mut groups[donor]);
                let start = members.len();
                members.extend_from_slice(&groups[donor]);
                let donor_len = groups[donor].len();
                for &g in &hood {
                    if g != donor {
                        members.extend_from_slice(&groups[g]);
                    }
                }
                items.push(WorkItem::Group {
                    members: start..members.len(),
                    donor_len,
                });
            }
        } else {
            for roster in groups.iter_mut().take(active) {
                flush_group(queries, roster, &mut items, &mut members);
            }
        }
        BatchPlan {
            queries: queries.len(),
            items,
            members,
        }
    }

    /// Runs one planned work item, appending `(input index, answer)` pairs to
    /// `out` and returning its execution report (views counted once per
    /// physical search, so batch totals do not double-count group members;
    /// fallbacks so the batch books can be corrected after the fact).
    fn run_item(
        &self,
        queries: &[Query],
        plan: &BatchPlan,
        item: &WorkItem,
        ws: &mut WorkerScratch,
        out: &mut Vec<(usize, Result<QueryResult, QueryError>)>,
    ) -> ItemReport {
        match item {
            WorkItem::Rejected(i, e) => {
                out.push((*i, Err(*e)));
                ItemReport::default()
            }
            WorkItem::Single(i) => {
                let (r, search_nanos) = timed(|| self.query(&queries[*i]));
                let report = ItemReport {
                    views: r.stats.views_built,
                    search_nanos,
                    ..ItemReport::default()
                };
                out.push((*i, Ok(r)));
                report
            }
            WorkItem::Group { members, donor_len } => {
                self.run_group(queries, &plan.members[members.clone()], *donor_len, ws, out)
            }
        }
    }

    /// One shared frontier for a whole group, then per-member scatter: exact
    /// duplicates of the lead take the group answer as-is, shifted members
    /// are derived (direct recompute / retime / replay) under per-member
    /// certificates, and anything uncertifiable falls back to its own
    /// per-query search. See `framework.rs` and `replay.rs` for the
    /// byte-identity arguments.
    fn run_group(
        &self,
        queries: &[Query],
        members: &[usize],
        donor_len: usize,
        ws: &mut WorkerScratch,
        out: &mut Vec<(usize, Result<QueryResult, QueryError>)>,
    ) -> ItemReport {
        let lead = &queries[members[0]];
        let lead_pos = pos_bits(lead);
        let lead_time = time_bits(lead);
        // Record the decision trace only if some member starts elsewhere;
        // track checkpoint margins only if some same-point member departs at
        // another time. Exact-key singleton-neighborhood groups need neither
        // and pay no observer work at all. Replay additionally requires
        // order-pure TV verdicts — true for ITG/S and ITG/A(Exact), false
        // for the paper-faithful cursor, whose verdict depends on the
        // sequence of preceding checks — so Faithful groups skip recording
        // and serve non-identical members per-query. (Retiming stays on:
        // same-point members relax the identical sequence in the identical
        // windows, which preserves even the Faithful cursor states.)
        let verdict_pure = self.config.method == ServeMethod::Syn
            || self.config.itspq.asyn_mode == AsynMode::Exact;
        let needs_trace =
            verdict_pure && members.iter().any(|&i| pos_bits(&queries[i]) != lead_pos);
        let needs_margin = members
            .iter()
            .any(|&i| pos_bits(&queries[i]) == lead_pos && time_bits(&queries[i]) != lead_time);
        ws.targets.clear();
        ws.targets
            .extend(members.iter().map(|&i| queries[i].target));
        // The trace buffer is pooled per worker: recording reuses the same
        // door/target streams across every group this worker runs.
        let mut observer = SweepObserver::with_trace(
            needs_trace,
            needs_margin,
            std::mem::take(&mut ws.trace),
            members.len(),
        );
        let ((paths, stats), search_nanos) =
            timed(|| self.query_targets(&lead.source, lead.time, &ws.targets, &mut observer));
        let mut report = ItemReport {
            views: stats.views_built,
            search_nanos,
            ..ItemReport::default()
        };
        let config = &self.config.itspq;
        // Scatter (timed as a phase; certificate-failure fallback searches
        // run inside it and are attributed here, not to the search phase).
        let scatter_start = PhaseTimer::start();
        let mut lead_indexed = false;
        for (k, (&i, path)) in members.iter().zip(paths).enumerate() {
            let q = &queries[i];
            let seeded = k >= donor_len;
            let same_pos = pos_bits(q) == lead_pos;
            if same_pos && time_bits(q) == lead_time {
                // Every member reports the group's (single) search: the
                // work its answer actually cost. Summing member stats
                // therefore overcounts a shared batch — sum per *search*
                // via `BatchStats` instead.
                if seeded {
                    report.seeded_labels += 1;
                }
                out.push((i, Ok(QueryResult { path, stats })));
                continue;
            }
            let mut retimed = false;
            let mut derived: Option<Option<Path>> = if q.target.partition == q.source.partition {
                // The member's own search would short-circuit before any
                // TV check; recompute the straight segment from its own
                // endpoints and departure — exact by construction.
                retimed = same_pos;
                Some(Some(direct_path(
                    &q.source,
                    &q.target,
                    config,
                    q.departure(),
                )))
            } else if same_pos && q.departure() >= lead.departure() {
                // Same start, later departure: retime iff the shift clears
                // the smallest margin every lead arrival had to its next
                // checkpoint — then every TV verdict provably transfers.
                // The explicit ordering guard matters: `Timestamp`
                // subtraction saturates at zero, so an *earlier*-departing
                // member (possible for warm-seeded neighbors — the donor's
                // lead is only the earliest of the donor) would otherwise
                // masquerade as a zero shift and be wrongly certified.
                let delta = (q.departure() - lead.departure()).seconds();
                let ok = (delta + RETIME_SLACK_SECS < observer.min_margin_secs)
                    .then(|| retime(path.as_ref(), q, config));
                retimed = ok.is_some();
                ok
            } else {
                None
            };
            if derived.is_none() && needs_trace {
                // Different start — or a same-point member whose retime
                // certificate failed: replay the lead's decision trace
                // against this member's own source legs and departure.
                if !lead_indexed {
                    // Built once per group, shared by every member's replay.
                    ws.lead
                        .build(&observer.trace, self.graph.space().num_doors());
                    lead_indexed = true;
                }
                derived = replay_member(
                    self.graph.space(),
                    config,
                    &observer.trace,
                    &ws.lead,
                    q,
                    k as u32,
                    &mut ws.replay,
                )
                .ok();
            }
            match derived {
                Some(p) => {
                    if retimed {
                        report.retimed += 1;
                    } else {
                        report.replayed += 1;
                    }
                    if seeded {
                        report.seeded_labels += 1;
                    }
                    out.push((i, Ok(QueryResult { path: p, stats })));
                }
                None => {
                    let r = self.query(q);
                    report.fallbacks += 1;
                    if seeded {
                        report.seed_rejects += 1;
                    }
                    report.views += r.stats.views_built;
                    out.push((i, Ok(r)));
                }
            }
        }
        report.scatter_nanos = scatter_start.elapsed_nanos();
        ws.trace = observer.take_trace();
        report
    }

    /// One shared frontier for a whole group (see `framework.rs` for the
    /// target-independence argument that makes this byte-identical to
    /// per-query execution).
    fn query_targets(
        &self,
        source: &IndoorPoint,
        time: indoor_time::TimeOfDay,
        targets: &[IndoorPoint],
        observer: &mut SweepObserver,
    ) -> (Vec<Option<Path>>, SearchStats) {
        match self.config.method {
            ServeMethod::Syn => self.syn.query_targets(source, time, targets, observer),
            ServeMethod::Asyn => self.asyn.query_targets(source, time, targets, observer),
        }
    }

    /// The planner + scatter behind every batch entry point.
    fn execute_batch(
        &self,
        queries: &[Query],
        reject_malformed: bool,
    ) -> (Vec<Result<QueryResult, QueryError>>, BatchStats) {
        let (plan, plan_nanos) = timed(|| self.plan(queries, reject_malformed));
        let mut stats = plan.stats();
        stats.plan_nanos = plan_nanos;
        let items = &plan.items;
        let workers = self.config.effective_workers().clamp(1, items.len().max(1));

        let mut report = ItemReport::default();
        let mut indexed: Vec<(usize, Result<QueryResult, QueryError>)>;
        if workers == 1 {
            indexed = Vec::with_capacity(queries.len());
            let mut ws = self.scratch.checkout();
            for item in items {
                report.absorb(self.run_item(queries, &plan, item, &mut ws, &mut indexed));
            }
            self.scratch.restore(ws);
        } else {
            let next = AtomicUsize::new(0);
            let per_worker: Vec<(Vec<_>, ItemReport)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            let mut report = ItemReport::default();
                            let mut ws = self.scratch.checkout();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(item) = items.get(i) else { break };
                                report.absorb(
                                    self.run_item(queries, &plan, item, &mut ws, &mut local),
                                );
                            }
                            self.scratch.restore(ws);
                            (local, report)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(local) => local,
                        // Re-raise a worker's panic with its original payload
                        // instead of wrapping it in a second panic here.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            indexed = Vec::with_capacity(queries.len());
            for (local, worker_report) in per_worker {
                indexed.extend(local);
                report.absorb(worker_report);
            }
        }
        // Correct the plan-derived books for execution-time fallbacks: each
        // one paid its own search (a group) and stopped being a reuse. The
        // report is a sum over items, so the totals are independent of how
        // items were spread across workers (the phase timings sum each
        // worker's busy time and are the only scheduling-dependent fields).
        stats.views_built += report.views;
        stats.replayed += report.replayed;
        stats.retimed += report.retimed;
        stats.fallbacks += report.fallbacks;
        stats.seeded_labels += report.seeded_labels;
        stats.seed_rejects += report.seed_rejects;
        stats.search_nanos += report.search_nanos;
        stats.scatter_nanos += report.scatter_nanos;
        stats.groups += report.fallbacks;
        stats.shared_queries -= report.fallbacks;
        stats.frontier_reuses -= report.fallbacks;
        indexed.sort_unstable_by_key(|&(i, _)| i);
        (indexed.into_iter().map(|(_, r)| r).collect(), stats)
    }
}

/// One unit of batch work: a single query or a shared group.
#[derive(Debug, Clone, PartialEq)]
enum WorkItem {
    /// Run `queries[i]` on its own (unvalidated, like [`VenueServer::query`]).
    Single(usize),
    /// `queries[i]` failed validation; answer with the error, run nothing.
    Rejected(usize, QueryError),
    /// Answer all member queries (a range of [`BatchPlan::members`]) with
    /// one shared frontier. Invariants: ≥ 2 members, all shared-eligible,
    /// the first `donor_len` share one [`PlanKey`] with the earliest
    /// departure leading; any members beyond `donor_len` are warm-seeded
    /// neighbors — other plan groups from the same partition and checkpoint
    /// interval, answered from the donor's recorded frontier.
    /// `donor_len == members.len()` means no donation happened.
    Group {
        members: Range<usize>,
        donor_len: usize,
    },
}

/// Demotes a 1-member roster to a [`WorkItem::Single`], otherwise rotates
/// the earliest departure to the lead slot and appends the roster to the
/// plan's member arena as a [`WorkItem::Group`] (no donation).
fn flush_group(
    queries: &[Query],
    roster: &mut [usize],
    items: &mut Vec<WorkItem>,
    members: &mut Vec<usize>,
) {
    if let [only] = roster[..] {
        items.push(WorkItem::Single(only));
        return;
    }
    rotate_earliest_lead(queries, roster);
    let start = members.len();
    members.extend_from_slice(roster);
    items.push(WorkItem::Group {
        members: start..members.len(),
        donor_len: roster.len(),
    });
}

/// Swaps the member with the earliest departure (first occurrence on ties)
/// into slot 0, so retime deltas within the roster are non-negative; under
/// exact keys all times are equal and the rotation is the identity.
fn rotate_earliest_lead(queries: &[Query], roster: &mut [usize]) {
    let lead = roster
        .iter()
        .enumerate()
        .min_by_key(|&(pos, &i)| (queries[i].time, pos))
        .map_or(0, |(pos, _)| pos);
    roster.swap(0, lead);
}

/// Pooled planner state, reused across `plan` calls (see the satellite
/// allocation-churn note in `ARCHITECTURE.md` §Shared execution): the
/// grouping map and the per-group rosters. A `BTreeMap` keyed by the `Ord`
/// plan key, so that if grouping ever iterates the map, the order is a pure
/// function of the keys — never of hasher state. Guarded by a mutex so
/// `plan` keeps taking `&self`; concurrent planners fall back to queueing on
/// the lock (batches are planned one at a time per server in every entry
/// point).
#[derive(Debug, Default)]
struct PlanScratch {
    group_of: BTreeMap<PlanKey, usize>,
    groups: Vec<Vec<usize>>,
}

/// Per-worker reusable buffers: the recorded trace, the replay label state
/// and the gathered target list. Checked out of [`ScratchPool`] once per
/// worker per batch, so steady-state batch execution allocates nothing per
/// group.
#[derive(Debug, Default)]
struct WorkerScratch {
    trace: Trace,
    lead: LeadIndex,
    replay: ReplayScratch,
    targets: Vec<IndoorPoint>,
}

/// The server's scratch arena: planner state plus a stack of worker
/// scratches (one per concurrently executing worker, grown on demand).
#[derive(Debug, Default)]
struct ScratchPool {
    plan: Mutex<PlanScratch>,
    workers: Mutex<Vec<WorkerScratch>>,
}

impl ScratchPool {
    fn checkout(&self) -> WorkerScratch {
        self.workers.lock().pop().unwrap_or_default()
    }

    fn restore(&self, ws: WorkerScratch) {
        self.workers.lock().push(ws);
    }
}

/// Monotonic phase-timer reads for [`BatchStats`] attribution — the only
/// wall-clock touches in core's library code, confined here and feeding
/// telemetry only, never answers.
struct PhaseTimer(std::time::Instant); // itspq-lint: allow(no-wall-clock-in-core, "monotonic phase timing for BatchStats telemetry; never feeds answers")

impl PhaseTimer {
    fn start() -> Self {
        Self(std::time::Instant::now()) // itspq-lint: allow(no-wall-clock-in-core, "monotonic phase timing for BatchStats telemetry; never feeds answers")
    }

    fn elapsed_nanos(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Runs `f`, returning its result and the elapsed monotonic nanoseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = PhaseTimer::start();
    let out = f();
    (out, start.elapsed_nanos())
}

/// The planner's grouping key, one variant per sharing level. Strictly
/// nested: equal `Exact` keys imply equal `Door` keys imply equal `Interval`
/// keys, so each level's plan is a coarsening of the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum PlanKey {
    /// [`BatchStrategy::Shared`]: identical source point and departure time.
    Exact(GroupKey),
    /// [`BatchStrategy::SharedDoor`]: same source partition, identical time.
    Door { partition: PartitionId, time: u64 },
    /// [`BatchStrategy::SharedInterval`]: same source partition, departure
    /// in the same checkpoint interval.
    Interval {
        partition: PartitionId,
        interval: usize,
    },
}

/// What one work item cost and how its members were answered; summed into
/// the batch's [`BatchStats`] after execution. Pure sums over items, so the
/// batch totals cannot depend on worker count or scheduling.
#[derive(Debug, Clone, Copy, Default)]
struct ItemReport {
    views: usize,
    replayed: usize,
    retimed: usize,
    fallbacks: usize,
    seeded_labels: usize,
    seed_rejects: usize,
    search_nanos: u64,
    scatter_nanos: u64,
}

impl ItemReport {
    fn absorb(&mut self, other: ItemReport) {
        self.views += other.views;
        self.replayed += other.replayed;
        self.retimed += other.retimed;
        self.fallbacks += other.fallbacks;
        self.seeded_labels += other.seeded_labels;
        self.seed_rejects += other.seed_rejects;
        self.search_nanos += other.search_nanos;
        self.scatter_nanos += other.scatter_nanos;
    }
}

/// The source-point identity used by group scatter: bitwise, so NaN equals
/// itself and `-0.0 ≠ 0.0` — exactly the aliasing rule of [`GroupKey`].
fn pos_bits(q: &Query) -> (u64, u64) {
    (q.source.position.x.to_bits(), q.source.position.y.to_bits())
}

/// The departure-time identity used by group scatter, bitwise like
/// [`pos_bits`].
fn time_bits(q: &Query) -> u64 {
    q.time.seconds().to_bits()
}

/// Re-times the lead's answer for a member departing `delta ≥ 0` later whose
/// arrivals are all certified to stay in the lead's checkpoint intervals:
/// door labels, hop distances and the total length are departure-independent,
/// so only the timestamps move — recomputed exactly as `reconstruct` would
/// have from the member's own `t0`.
fn retime(path: Option<&Path>, q: &Query, config: &ItspqConfig) -> Option<Path> {
    let p = path?;
    let t0 = q.departure();
    Some(Path {
        source: q.source,
        target: q.target,
        hops: p
            .hops
            .iter()
            .map(|h| DoorHop {
                arrival: t0 + config.velocity.travel_time(h.distance),
                ..*h
            })
            .collect(),
        length: p.length,
        departure: t0,
        arrival: t0 + config.velocity.travel_time(p.length),
    })
}

/// The planner's output: how a batch will be executed.
///
/// Produced by [`VenueServer::plan`]; mostly useful for asserting sharing
/// behaviour in tests and for capacity telemetry.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    queries: usize,
    items: Vec<WorkItem>,
    /// Arena of group member indices; each [`WorkItem::Group`] holds a range
    /// into it (one allocation per plan instead of one per group).
    members: Vec<usize>,
}

impl BatchPlan {
    /// Number of physical searches this plan will run (groups + singles).
    #[must_use]
    pub fn searches(&self) -> usize {
        self.items
            .iter()
            .filter(|i| !matches!(i, WorkItem::Rejected(..)))
            .count()
    }

    /// Number of shared (≥ 2 member) groups.
    #[must_use]
    pub fn shared_groups(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, WorkItem::Group { .. }))
            .count()
    }

    /// Number of queries answered by shared groups.
    #[must_use]
    pub fn shared_queries(&self) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                WorkItem::Group { members, .. } => members.len(),
                _ => 0,
            })
            .sum()
    }

    /// Number of groups that will run warm-started: merged from several plan
    /// groups, with the donor's frontier answering the seeded neighbors.
    #[must_use]
    pub fn warm_starts(&self) -> usize {
        self.items
            .iter()
            .filter(|i| {
                matches!(i, WorkItem::Group { members, donor_len } if *donor_len < members.len())
            })
            .count()
    }

    /// The batch-level report this plan implies (`views_built`, the derived
    /// answer counters and the phase timings are filled in during
    /// execution).
    #[must_use]
    pub fn stats(&self) -> BatchStats {
        let rejected = self
            .items
            .iter()
            .filter(|i| matches!(i, WorkItem::Rejected(..)))
            .count();
        BatchStats {
            queries: self.queries,
            groups: self.searches(),
            shared_queries: self.shared_queries(),
            frontier_reuses: self.shared_queries() - self.shared_groups(),
            rejected,
            warm_starts: self.warm_starts(),
            ..BatchStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;
    use indoor_time::TimeOfDay;

    fn example_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
        let mut batch = Vec::new();
        for (h, m) in [(9, 0), (12, 0), (15, 59), (22, 0), (23, 30), (5, 30)] {
            for (s, t) in [(ex.p3, ex.p4), (ex.p1, ex.p2), (ex.p2, ex.p3)] {
                batch.push(Query::new(s, t, TimeOfDay::hm(h, m)));
            }
        }
        batch
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VenueServer>();
    }

    #[test]
    fn batch_matches_sequential_itg_s() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space.clone());
        let server = VenueServer::new(graph.clone()).with_pinned_workers(4);
        let syn = SynEngine::new(graph, ItspqConfig::default());
        let batch = example_batch(&ex);
        let answers = server.query_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        for (q, a) in batch.iter().zip(&answers) {
            let s = syn.query(q);
            assert_eq!(
                s.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                a.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                "batch answer diverges from ITG/S at {}",
                q.time
            );
        }
    }

    #[test]
    fn engines_share_one_graph() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space);
        let server = VenueServer::new(graph.clone());
        assert!(Arc::ptr_eq(server.graph(), &graph));
        assert!(Arc::ptr_eq(&server.syn.graph_arc(), &graph));
        assert!(Arc::ptr_eq(&server.asyn.graph_arc(), &graph));
    }

    #[test]
    fn empty_batch_and_worker_clamping() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::new(ex.space)).with_workers(0);
        assert_eq!(server.workers(), 1); // clamped
        assert!(server.query_batch(&[]).is_empty());
        // More workers than queries is fine too.
        let server = server.with_workers(16);
        let one = [Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0))];
        assert_eq!(server.query_batch(&one).len(), 1);
    }

    #[test]
    fn effective_workers_clamp_to_host_unless_pinned() {
        let host = host_parallelism();
        // A wildly oversubscribed request follows the machine …
        let config = ServerConfig {
            workers: 4096,
            ..ServerConfig::default()
        };
        assert_eq!(config.effective_workers(), host.clamp(1, 4096));
        assert!(config.effective_workers() <= host);
        // … unless explicitly pinned (bench worker sweeps measure these).
        let pinned = ServerConfig {
            workers: 4096,
            pin_workers: true,
            ..ServerConfig::default()
        };
        assert_eq!(pinned.effective_workers(), 4096);
        // Zero still clamps up to one either way.
        let zero = ServerConfig {
            workers: 0,
            pin_workers: true,
            ..ServerConfig::default()
        };
        assert_eq!(zero.effective_workers(), 1);
        // The builder pins.
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::new(ex.space)).with_pinned_workers(12);
        assert!(server.config().pin_workers);
        assert_eq!(server.config().effective_workers(), 12);
    }

    #[test]
    fn syn_method_answers_identically() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space.clone());
        let asyn_server = VenueServer::new(graph.clone()).with_pinned_workers(3);
        let syn_server = VenueServer::new(graph)
            .with_pinned_workers(3)
            .with_method(ServeMethod::Syn);
        let batch = example_batch(&ex);
        let a = asyn_server.query_batch(&batch);
        let s = syn_server.query_batch(&batch);
        for (x, y) in a.iter().zip(&s) {
            assert_eq!(
                x.path.as_ref().map(|p| p.length),
                y.path.as_ref().map(|p| p.length)
            );
        }
        // Only the asyn method touches the reduced-graph cache.
        assert!(asyn_server.cached_views() > 0);
        assert_eq!(syn_server.cached_views(), 0);
    }

    #[test]
    fn warm_precomputes_every_interval() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone()));
        server.warm();
        assert_eq!(server.cached_views(), ex.space.checkpoints().len());
        assert!(server.cache_bytes() > 0);
        // A warmed server builds nothing during the batch.
        let answers = server.query_batch(&example_batch(&ex));
        assert!(answers.iter().all(|r| r.stats.views_built == 0));
    }

    #[test]
    fn cold_batch_builds_each_view_once() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone())).with_pinned_workers(4);
        let answers = server.query_batch(&example_batch(&ex));
        let built: usize = answers.iter().map(|r| r.stats.views_built).sum();
        assert_eq!(
            built,
            server.cached_views(),
            "each checkpoint interval must be built exactly once server-wide"
        );
    }

    /// A server with sharing actually engaged: `FullRelax` expansion.
    fn sharing_server(ex: &paper_example::PaperExample) -> VenueServer {
        let config = ServerConfig {
            itspq: ItspqConfig::full_relax().with_asyn_mode(AsynMode::Exact),
            ..ServerConfig::default()
        };
        VenueServer::with_config(ItGraph::shared(ex.space.clone()), config)
    }

    /// Four queries sharing p3@9:00, one singleton and one private-partition
    /// fallback.
    fn skewed_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
        let nine = TimeOfDay::hm(9, 0);
        let private = indoor_space::IndoorPoint::new(ex.v(15), indoor_geom::Point::new(5.0, 0.0));
        vec![
            Query::new(ex.p3, ex.p4, nine),
            Query::new(ex.p3, ex.p2, nine),
            Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)), // singleton source
            Query::new(ex.p3, private, nine),               // private target: fallback
            Query::new(ex.p3, ex.p1, nine),
            Query::new(ex.p3, ex.p4, nine), // duplicate (source, target) pair
        ]
    }

    #[test]
    fn plan_groups_by_identical_source_and_time() {
        let ex = paper_example::build();
        let server = sharing_server(&ex);
        let plan = server.plan(&skewed_batch(&ex), false);
        // One 4-member group (p3@9:00 with traversable targets), plus the
        // singleton source and the private-target fallback.
        assert_eq!(plan.shared_groups(), 1);
        assert_eq!(plan.shared_queries(), 4);
        assert_eq!(plan.searches(), 3);
        let stats = plan.stats();
        assert_eq!(stats.frontier_reuses, 3);
        assert!((stats.sharing_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_pruned_config_never_shares() {
        // The default server config keeps the paper's pruned expansion, under
        // which sharing is inert: every query plans as its own search.
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone()));
        let plan = server.plan(&skewed_batch(&ex), false);
        assert_eq!(plan.shared_groups(), 0);
        assert_eq!(plan.searches(), 6);
    }

    #[test]
    fn shared_answers_are_byte_identical_to_independent() {
        let ex = paper_example::build();
        let shared = sharing_server(&ex).with_pinned_workers(3);
        let mut config = *shared.config();
        config.strategy = BatchStrategy::Independent;
        let independent = VenueServer::with_config(ItGraph::shared(ex.space.clone()), config);
        let batch = skewed_batch(&ex);
        let a = shared.query_batch(&batch);
        let b = independent.query_batch(&batch);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.path, y.path, "paths diverge at batch index {i}");
        }
    }

    #[test]
    fn batch_stats_report_sharing_and_views() {
        let ex = paper_example::build();
        let server = sharing_server(&ex);
        let (answers, stats) = server.query_batch_with_stats(&skewed_batch(&ex));
        assert_eq!(answers.len(), 6);
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.groups, 3);
        assert_eq!(stats.shared_queries, 4);
        // Views are counted once per physical search, never per group member.
        assert_eq!(stats.views_built, server.cached_views());
    }

    /// Compares a batch answered with `strategy` against per-query
    /// `try_query` answers, byte-for-byte (Debug rendering keeps NaN total).
    fn assert_parity(server: &VenueServer, batch: &[Query]) {
        let got = server.try_query_batch(batch);
        for (i, (q, g)) in batch.iter().zip(&got).enumerate() {
            let want = server.try_query(q);
            assert_eq!(
                format!("{:?}", g.as_ref().map(|r| &r.path)),
                format!("{:?}", want.as_ref().map(|r| &r.path)),
                "strategy {:?} diverges from per-query at batch index {i}",
                server.config().strategy,
            );
        }
    }

    /// Same-partition sources at spread-out points, plus spread-out times
    /// inside one checkpoint interval.
    fn door_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
        let p3 = ex.p3.partition;
        let at = |x: f64, y: f64| indoor_space::IndoorPoint::new(p3, indoor_geom::Point::new(x, y));
        vec![
            Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(at(1.0, 1.0), ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(at(2.5, 0.5), ex.p2, TimeOfDay::hm(9, 0)),
            Query::new(at(0.5, 2.0), ex.p1, TimeOfDay::hm(9, 0)),
            Query::new(ex.p3, ex.p2, TimeOfDay::hm(9, 0)),
        ]
    }

    fn interval_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
        let p3 = ex.p3.partition;
        let at = |x: f64, y: f64| indoor_space::IndoorPoint::new(p3, indoor_geom::Point::new(x, y));
        vec![
            Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 20)),
            Query::new(ex.p3, ex.p2, TimeOfDay::hm(10, 45)),
            Query::new(at(1.0, 1.0), ex.p1, TimeOfDay::hm(9, 0)),
            Query::new(ex.p3, ex.p1, TimeOfDay::hm(14, 0)),
        ]
    }

    #[test]
    fn door_level_plan_groups_same_partition_sources() {
        let ex = paper_example::build();
        let exact = sharing_server(&ex);
        let door = sharing_server(&ex).with_strategy(BatchStrategy::SharedDoor);
        let batch = door_batch(&ex);
        // Exact keys only merge the two literal p3 queries …
        assert_eq!(exact.plan(&batch, false).shared_queries(), 2);
        // … door keys merge all five (same partition, same instant).
        let plan = door.plan(&batch, false);
        assert_eq!(plan.shared_groups(), 1);
        assert_eq!(plan.shared_queries(), 5);
        assert_eq!(plan.searches(), 1);
    }

    #[test]
    fn interval_plan_groups_same_interval_times() {
        let ex = paper_example::build();
        let door = sharing_server(&ex).with_strategy(BatchStrategy::SharedDoor);
        let interval = sharing_server(&ex).with_strategy(BatchStrategy::SharedInterval);
        let batch = interval_batch(&ex);
        // Door keys need identical instants: only the two 9:00 queries merge.
        assert_eq!(door.plan(&batch, false).shared_queries(), 2);
        // Interval keys merge every query in the same checkpoint interval.
        let plan = interval.plan(&batch, false);
        assert!(plan.shared_queries() >= 4);
        assert!(plan.searches() < batch.len());
    }

    #[test]
    fn interval_group_lead_is_earliest_departure() {
        let ex = paper_example::build();
        let server = sharing_server(&ex).with_strategy(BatchStrategy::SharedInterval);
        // Later departures submitted first: the lead must still be 9:00.
        let batch = vec![
            Query::new(ex.p3, ex.p4, TimeOfDay::hm(10, 30)),
            Query::new(ex.p3, ex.p2, TimeOfDay::hm(9, 0)),
            Query::new(ex.p3, ex.p1, TimeOfDay::hm(9, 45)),
        ];
        let plan = server.plan(&batch, false);
        let leads: Vec<usize> = plan
            .items
            .iter()
            .filter_map(|it| match it {
                WorkItem::Group { members, .. } => Some(plan.members[members.start]),
                _ => None,
            })
            .collect();
        assert_eq!(leads, vec![1], "the 9:00 query must lead its group");
    }

    #[test]
    fn door_level_answers_match_per_query() {
        let ex = paper_example::build();
        for method in [ServeMethod::Asyn, ServeMethod::Syn] {
            let server = sharing_server(&ex)
                .with_strategy(BatchStrategy::SharedDoor)
                .with_method(method)
                .with_workers(1);
            assert_parity(&server, &door_batch(&ex));
        }
    }

    #[test]
    fn interval_answers_match_per_query() {
        let ex = paper_example::build();
        for method in [ServeMethod::Asyn, ServeMethod::Syn] {
            let server = sharing_server(&ex)
                .with_strategy(BatchStrategy::SharedInterval)
                .with_method(method)
                .with_workers(1);
            assert_parity(&server, &interval_batch(&ex));
        }
    }

    #[test]
    fn all_levels_keep_consistent_books() {
        let ex = paper_example::build();
        let mut batch = skewed_batch(&ex);
        batch.extend(door_batch(&ex));
        batch.extend(interval_batch(&ex));
        for strategy in [
            BatchStrategy::Independent,
            BatchStrategy::Shared,
            BatchStrategy::SharedDoor,
            BatchStrategy::SharedInterval,
        ] {
            let server = sharing_server(&ex).with_strategy(strategy);
            let (_, stats) = server.query_batch_with_stats(&batch);
            assert!(
                stats.is_consistent(),
                "strategy {strategy:?} broke the accounting identity: {stats}"
            );
        }
    }

    #[test]
    fn derived_members_report_replays_and_retimes() {
        let ex = paper_example::build();
        let server = sharing_server(&ex).with_strategy(BatchStrategy::SharedInterval);
        let mut batch = door_batch(&ex);
        batch.extend(interval_batch(&ex));
        let (_, stats) = server.query_batch_with_stats(&batch);
        assert!(
            stats.replayed > 0,
            "door-spread sources must be answered by replay: {stats}"
        );
        assert!(
            stats.retimed > 0,
            "same-point later departures must be answered by retime: {stats}"
        );
    }

    #[test]
    fn warm_start_donates_frontiers_across_door_groups() {
        let ex = paper_example::build();
        let warm = sharing_server(&ex)
            .with_strategy(BatchStrategy::SharedDoor)
            .with_warm_start(true);
        let p3 = ex.p3.partition;
        let at = |x: f64, y: f64| indoor_space::IndoorPoint::new(p3, indoor_geom::Point::new(x, y));
        // Three door-level plan groups (9:00, 9:20 and the 9:40 singleton)
        // leave p3 inside one checkpoint interval: warm starting merges them
        // behind the largest group's frontier.
        let batch = vec![
            Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(at(1.0, 1.0), ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(at(2.5, 0.5), ex.p2, TimeOfDay::hm(9, 0)),
            Query::new(ex.p3, ex.p2, TimeOfDay::hm(9, 20)),
            Query::new(at(1.0, 1.0), ex.p1, TimeOfDay::hm(9, 20)),
            Query::new(at(0.5, 2.0), ex.p1, TimeOfDay::hm(9, 40)),
        ];
        let plan = warm.plan(&batch, false);
        assert_eq!(plan.warm_starts(), 1, "the three 9:xx groups must merge");
        assert_eq!(plan.searches(), 1);
        assert_eq!(plan.shared_queries(), 6);
        // Cold door-level planning pays one search per distinct instant.
        let cold = sharing_server(&ex).with_strategy(BatchStrategy::SharedDoor);
        assert_eq!(cold.plan(&batch, false).warm_starts(), 0);
        assert_eq!(cold.plan(&batch, false).searches(), 3);
        // Execution books: warm starts engage, every seeded member is
        // accounted as seeded or rejected, identity holds.
        let (_, stats) = warm.query_batch_with_stats(&batch);
        assert!(stats.is_consistent(), "{stats}");
        assert!(stats.warm_starts > 0, "warm starts must engage: {stats}");
        assert_eq!(
            stats.seeded_labels + stats.seed_rejects,
            3,
            "the 9:20 pair and the 9:40 singleton are seeded: {stats}"
        );
        assert!(
            stats.seeded_labels > 0,
            "donation must answer at least one member: {stats}"
        );
        // And the answers stay byte-identical to per-query execution.
        assert_parity(&warm, &batch);
    }

    #[test]
    fn warm_start_books_stay_consistent_on_mixed_batches() {
        let ex = paper_example::build();
        let mut batch = skewed_batch(&ex);
        batch.extend(door_batch(&ex));
        batch.extend(interval_batch(&ex));
        for strategy in [BatchStrategy::SharedDoor, BatchStrategy::SharedInterval] {
            let server = sharing_server(&ex)
                .with_strategy(strategy)
                .with_warm_start(true);
            let (_, stats) = server.query_batch_with_stats(&batch);
            assert!(
                stats.is_consistent(),
                "warm {strategy:?} broke the accounting identity: {stats}"
            );
            assert_parity(&server, &batch);
        }
        // At SharedInterval the neighborhood key equals the plan key: warm
        // merging must be the identity.
        let interval = sharing_server(&ex).with_strategy(BatchStrategy::SharedInterval);
        let warm_interval = sharing_server(&ex)
            .with_strategy(BatchStrategy::SharedInterval)
            .with_warm_start(true);
        assert_eq!(
            warm_interval.plan(&batch, false).searches(),
            interval.plan(&batch, false).searches()
        );
        assert_eq!(warm_interval.plan(&batch, false).warm_starts(), 0);
    }

    #[test]
    fn try_query_batch_rejects_in_place() {
        let ex = paper_example::build();
        let server = sharing_server(&ex);
        let nan =
            indoor_space::IndoorPoint::new(ex.p3.partition, indoor_geom::Point::new(f64::NAN, 2.0));
        let batch = vec![
            Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(nan, ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(ex.p3, ex.p2, TimeOfDay::hm(9, 0)),
        ];
        let (results, stats) = server.try_query_batch_with_stats(&batch);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert_eq!(stats.rejected, 1);
        // The two well-formed queries still share one frontier.
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.frontier_reuses, 1);
    }
}
