//! The concurrent batched query front-end: one venue, many workers.
//!
//! A [`VenueServer`] owns a single `Arc<ItGraph>` and answers
//! [`Query`] batches on a configurable number of worker threads
//! ([`ServerConfig::workers`]) via [`VenueServer::query_batch`]. Workers are
//! plain [`std::thread::scope`] threads pulling query indices off an atomic
//! counter (dynamic load balancing — an expensive query does not stall the
//! rest of its chunk), and answers come back in input order.
//!
//! What makes this safe and fast is the ownership model of the rest of the
//! crate: the IT-Graph is immutable and `Arc`-shared, so workers borrow it
//! freely, and the only mutable shared state is ITG/A's reduced-graph cache
//! behind a `parking_lot::RwLock` — read-locked on the hot path, write-locked
//! only the first time a checkpoint interval is seen. Each interval's view is
//! built exactly once per server, never per worker (see
//! `AsynEngine::view_for`). Call [`VenueServer::warm`] to precompute every
//! interval before opening the floodgates.
//!
//! By default the server answers with ITG/A in [`AsynMode::Exact`], which is
//! answer-for-answer identical to ITG/S while sharing the cached reduced
//! graphs across queries; [`ServeMethod::Syn`] switches to pure ITG/S.
//!
//! # Example
//!
//! The paper's Example 1 served as a batch:
//!
//! ```
//! use indoor_space::paper_example;
//! use indoor_time::TimeOfDay;
//! use itspq_core::server::VenueServer;
//! use itspq_core::{ItGraph, Query};
//!
//! let ex = paper_example::build();
//! let server = VenueServer::new(ItGraph::shared(ex.space.clone())).with_workers(2);
//!
//! let batch = vec![
//!     Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),   // 12 m via d18
//!     Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)), // no such routes
//! ];
//! let answers = server.query_batch(&batch);
//! assert!((answers[0].path.as_ref().unwrap().length - 12.0).abs() < 1e-9);
//! assert!(answers[1].path.is_none());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use indoor_space::IndoorPoint;

use crate::{
    AsynEngine, AsynMode, BatchStats, ExpandPolicy, GroupKey, ItGraph, ItspqConfig, Path, Query,
    QueryError, QueryResult, SearchStats, SynEngine,
};

/// Which engine answers the server's queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMethod {
    /// ITG/S: synchronous ATI checks, no shared state at all.
    Syn,
    /// ITG/A: asynchronous checks over the shared reduced-graph cache.
    Asyn,
}

/// How [`VenueServer::query_batch`] executes a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStrategy {
    /// One search per query, exactly as submitted.
    Independent,
    /// Group queries by [`GroupKey`] (identical source point and departure
    /// time) and answer each ≥ 2-member group with a single shared search
    /// frontier; singleton groups and shared-ineligible queries fall back to
    /// per-query execution. Answers are byte-identical to `Independent` —
    /// sharing only happens where the search is provably target-independent
    /// (see `ARCHITECTURE.md` §Shared execution).
    Shared,
}

/// Tunables of a [`VenueServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads used by [`VenueServer::query_batch`] (at least 1).
    pub workers: usize,
    /// Which engine answers queries.
    pub method: ServeMethod,
    /// How batches are executed.
    pub strategy: BatchStrategy,
    /// Engine configuration shared by both methods.
    pub itspq: ItspqConfig,
}

impl Default for ServerConfig {
    /// Workers follow the machine (capped at 8); the method is ITG/A in
    /// [`AsynMode::Exact`] — identical answers to ITG/S, but sharing the
    /// reduced-graph cache across queries and workers. The strategy is
    /// [`BatchStrategy::Shared`]: inert under the default `PaperPruned`
    /// expansion (sharing requires `FullRelax`), free speedup otherwise.
    fn default() -> Self {
        ServerConfig {
            workers: default_workers(),
            method: ServeMethod::Asyn,
            strategy: BatchStrategy::Shared,
            itspq: ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
        }
    }
}

/// Worker count when none is configured: the machine's available
/// parallelism, capped at 8.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// A shared-venue query server: owns one `Arc<ItGraph>`, shares the ITG/A
/// reduced-graph cache across worker threads, and answers query batches in
/// parallel.
///
/// The server is `Sync`; `query` and `query_batch` take `&self`, so one
/// instance can also be driven from externally managed threads.
#[derive(Debug)]
pub struct VenueServer {
    graph: Arc<ItGraph>,
    syn: SynEngine,
    asyn: AsynEngine,
    config: ServerConfig,
}

impl VenueServer {
    /// Creates a server with [`ServerConfig::default`].
    #[must_use]
    pub fn new(graph: impl Into<Arc<ItGraph>>) -> Self {
        Self::with_config(graph, ServerConfig::default())
    }

    /// Creates a server with an explicit configuration.
    #[must_use]
    pub fn with_config(graph: impl Into<Arc<ItGraph>>, config: ServerConfig) -> Self {
        let graph = graph.into();
        VenueServer {
            syn: SynEngine::new(Arc::clone(&graph), config.itspq),
            asyn: AsynEngine::new(Arc::clone(&graph), config.itspq),
            graph,
            config,
        }
    }

    /// Returns the server with the worker count replaced (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Returns the server with the answering method replaced.
    #[must_use]
    pub fn with_method(mut self, method: ServeMethod) -> Self {
        self.config.method = method;
        self
    }

    /// The shared graph.
    #[must_use]
    pub fn graph(&self) -> &Arc<ItGraph> {
        &self.graph
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Worker threads used per batch.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Precomputes the reduced graph of every checkpoint interval, so no
    /// query ever pays the write-lock construction path.
    pub fn warm(&self) {
        self.asyn.precompute_all();
    }

    /// Number of reduced-graph views currently cached.
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.asyn.cached_views()
    }

    /// Total heap bytes of the cached reduced-graph views.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.asyn.cache_bytes()
    }

    /// Answers a single query with the configured method.
    #[must_use]
    pub fn query(&self, query: &Query) -> QueryResult {
        match self.config.method {
            ServeMethod::Syn => self.syn.query(query),
            ServeMethod::Asyn => self.asyn.query(query),
        }
    }

    /// Answers a single query after validating it, so malformed input (NaN
    /// coordinates, out-of-range partitions) surfaces as a value instead of
    /// unwinding a worker thread.
    ///
    /// # Errors
    /// [`QueryError`] describing the first malformed endpoint.
    pub fn try_query(&self, query: &Query) -> Result<QueryResult, QueryError> {
        query.validate(self.graph.space())?;
        Ok(self.query(query))
    }

    /// Answers a batch of queries on up to [`ServerConfig::workers`] threads,
    /// returning results in input order.
    ///
    /// Under [`BatchStrategy::Shared`] the batch is first planned into work
    /// items — shared groups and per-query fallbacks (see [`plan`]) — and
    /// workers pull *items* off a shared atomic counter; under
    /// [`BatchStrategy::Independent`] every item is one query. Either way the
    /// answers are the same and independent of the worker count and of
    /// scheduling (the only shared mutable state, the reduced-graph cache,
    /// affects timing, never answers).
    ///
    /// Queries that fail validation are executed raw, exactly as
    /// [`VenueServer::query`] would (degrading to "no such routes" rather
    /// than panicking); use [`VenueServer::try_query_batch`] to surface them
    /// as [`QueryError`] values instead.
    ///
    /// [`plan`]: VenueServer::plan
    #[must_use]
    pub fn query_batch(&self, queries: &[Query]) -> Vec<QueryResult> {
        self.query_batch_with_stats(queries).0
    }

    /// [`VenueServer::query_batch`] plus the batch-level execution report.
    #[must_use]
    pub fn query_batch_with_stats(&self, queries: &[Query]) -> (Vec<QueryResult>, BatchStats) {
        let (results, stats) = self.execute_batch(queries, false);
        let results = results
            .into_iter()
            .map(|r| r.expect("raw batches never reject")) // itspq-lint: allow(no-panic-in-lib, "execute_batch only emits Rejected items when reject_malformed is true; this call passes false")
            .collect();
        (results, stats)
    }

    /// Answers a batch with validation: malformed queries come back as
    /// [`QueryError`] values (no search runs for them), well-formed ones as
    /// their [`QueryResult`], all in input order.
    #[must_use = "the per-query errors must be inspected"]
    pub fn try_query_batch(&self, queries: &[Query]) -> Vec<Result<QueryResult, QueryError>> {
        self.try_query_batch_with_stats(queries).0
    }

    /// [`VenueServer::try_query_batch`] plus the batch-level execution report.
    #[must_use = "the per-query errors must be inspected"]
    pub fn try_query_batch_with_stats(
        &self,
        queries: &[Query],
    ) -> (Vec<Result<QueryResult, QueryError>>, BatchStats) {
        self.execute_batch(queries, true)
    }

    /// Plans a batch into work items. Exposed for tests and capacity
    /// dashboards; [`VenueServer::query_batch`] calls it internally.
    ///
    /// A query joins a shared group only when every sharing precondition
    /// holds (strategy, `FullRelax` expansion, validity, traversable-or-same
    /// target partition — see [`BatchStrategy::Shared`]); groups that end up
    /// with a single member are demoted to per-query items, so a plan's
    /// groups always amortise at least two queries.
    #[must_use]
    pub fn plan(&self, queries: &[Query], reject_malformed: bool) -> BatchPlan {
        let space = self.graph.space();
        let sharing = self.config.strategy == BatchStrategy::Shared
            && self.config.itspq.expand == ExpandPolicy::FullRelax;

        let mut items: Vec<WorkItem> = Vec::with_capacity(queries.len());
        let mut group_of: HashMap<GroupKey, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            match q.validate(space) {
                Err(e) if reject_malformed => {
                    items.push(WorkItem::Rejected(i, e));
                    continue;
                }
                Err(_) => {
                    // Raw mode: run it unvalidated like `query` would, but
                    // never share it (a NaN key would alias distinct
                    // searches).
                    items.push(WorkItem::Single(i));
                    continue;
                }
                Ok(()) => {}
            }
            let tp = q.target.partition;
            let sharable =
                sharing && (tp == q.source.partition || space.partition(tp).kind.traversable());
            if !sharable {
                items.push(WorkItem::Single(i));
                continue;
            }
            let gi = *group_of.entry(GroupKey::of(q, space)).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(i);
        }
        for members in groups {
            if members.len() == 1 {
                items.push(WorkItem::Single(members[0]));
            } else {
                items.push(WorkItem::Group(members));
            }
        }
        BatchPlan {
            queries: queries.len(),
            items,
        }
    }

    /// Runs one planned work item, appending `(input index, answer)` pairs to
    /// `out` and returning the reduced views it built (counted once per
    /// physical search, so batch totals do not double-count group members).
    fn run_item(
        &self,
        queries: &[Query],
        item: &WorkItem,
        out: &mut Vec<(usize, Result<QueryResult, QueryError>)>,
    ) -> usize {
        match item {
            WorkItem::Rejected(i, e) => {
                out.push((*i, Err(*e)));
                0
            }
            WorkItem::Single(i) => {
                let r = self.query(&queries[*i]);
                let views = r.stats.views_built;
                out.push((*i, Ok(r)));
                views
            }
            WorkItem::Group(members) => {
                let lead = &queries[members[0]];
                let targets: Vec<IndoorPoint> =
                    members.iter().map(|&i| queries[i].target).collect();
                let (paths, stats) = self.query_targets(&lead.source, lead.time, &targets);
                let views = stats.views_built;
                for (&i, path) in members.iter().zip(paths) {
                    // Every member reports the group's (single) search: the
                    // work its answer actually cost. Summing member stats
                    // therefore overcounts a shared batch — sum per *search*
                    // via `BatchStats` instead.
                    out.push((i, Ok(QueryResult { path, stats })));
                }
                views
            }
        }
    }

    /// One shared frontier for a whole group (see `framework.rs` for the
    /// target-independence argument that makes this byte-identical to
    /// per-query execution).
    fn query_targets(
        &self,
        source: &IndoorPoint,
        time: indoor_time::TimeOfDay,
        targets: &[IndoorPoint],
    ) -> (Vec<Option<Path>>, SearchStats) {
        match self.config.method {
            ServeMethod::Syn => self.syn.query_targets(source, time, targets),
            ServeMethod::Asyn => self.asyn.query_targets(source, time, targets),
        }
    }

    /// The planner + scatter behind every batch entry point.
    fn execute_batch(
        &self,
        queries: &[Query],
        reject_malformed: bool,
    ) -> (Vec<Result<QueryResult, QueryError>>, BatchStats) {
        let plan = self.plan(queries, reject_malformed);
        let mut stats = plan.stats();
        let items = &plan.items;
        let workers = self.config.workers.clamp(1, items.len().max(1));

        let mut indexed: Vec<(usize, Result<QueryResult, QueryError>)>;
        if workers == 1 {
            indexed = Vec::with_capacity(queries.len());
            for item in items {
                stats.views_built += self.run_item(queries, item, &mut indexed);
            }
        } else {
            let next = AtomicUsize::new(0);
            let per_worker: Vec<(Vec<_>, usize)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            let mut views = 0;
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(item) = items.get(i) else { break };
                                views += self.run_item(queries, item, &mut local);
                            }
                            (local, views)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(local) => local,
                        // Re-raise a worker's panic with its original payload
                        // instead of wrapping it in a second panic here.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            });
            indexed = Vec::with_capacity(queries.len());
            for (local, views) in per_worker {
                indexed.extend(local);
                stats.views_built += views;
            }
        }
        indexed.sort_unstable_by_key(|&(i, _)| i);
        (indexed.into_iter().map(|(_, r)| r).collect(), stats)
    }
}

/// One unit of batch work: a single query or a shared group.
#[derive(Debug, Clone, PartialEq)]
enum WorkItem {
    /// Run `queries[i]` on its own (unvalidated, like [`VenueServer::query`]).
    Single(usize),
    /// `queries[i]` failed validation; answer with the error, run nothing.
    Rejected(usize, QueryError),
    /// Answer all member queries with one shared frontier. Invariants: ≥ 2
    /// members, identical [`GroupKey`]s, all shared-eligible.
    Group(Vec<usize>),
}

/// The planner's output: how a batch will be executed.
///
/// Produced by [`VenueServer::plan`]; mostly useful for asserting sharing
/// behaviour in tests and for capacity telemetry.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    queries: usize,
    items: Vec<WorkItem>,
}

impl BatchPlan {
    /// Number of physical searches this plan will run (groups + singles).
    #[must_use]
    pub fn searches(&self) -> usize {
        self.items
            .iter()
            .filter(|i| !matches!(i, WorkItem::Rejected(..)))
            .count()
    }

    /// Number of shared (≥ 2 member) groups.
    #[must_use]
    pub fn shared_groups(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, WorkItem::Group(_)))
            .count()
    }

    /// Number of queries answered by shared groups.
    #[must_use]
    pub fn shared_queries(&self) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                WorkItem::Group(m) => m.len(),
                _ => 0,
            })
            .sum()
    }

    /// The batch-level report this plan implies (`views_built` is filled in
    /// during execution).
    #[must_use]
    pub fn stats(&self) -> BatchStats {
        let rejected = self
            .items
            .iter()
            .filter(|i| matches!(i, WorkItem::Rejected(..)))
            .count();
        BatchStats {
            queries: self.queries,
            groups: self.searches(),
            shared_queries: self.shared_queries(),
            frontier_reuses: self.shared_queries() - self.shared_groups(),
            rejected,
            views_built: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;
    use indoor_time::TimeOfDay;

    fn example_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
        let mut batch = Vec::new();
        for (h, m) in [(9, 0), (12, 0), (15, 59), (22, 0), (23, 30), (5, 30)] {
            for (s, t) in [(ex.p3, ex.p4), (ex.p1, ex.p2), (ex.p2, ex.p3)] {
                batch.push(Query::new(s, t, TimeOfDay::hm(h, m)));
            }
        }
        batch
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VenueServer>();
    }

    #[test]
    fn batch_matches_sequential_itg_s() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space.clone());
        let server = VenueServer::new(graph.clone()).with_workers(4);
        let syn = SynEngine::new(graph, ItspqConfig::default());
        let batch = example_batch(&ex);
        let answers = server.query_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        for (q, a) in batch.iter().zip(&answers) {
            let s = syn.query(q);
            assert_eq!(
                s.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                a.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                "batch answer diverges from ITG/S at {}",
                q.time
            );
        }
    }

    #[test]
    fn engines_share_one_graph() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space);
        let server = VenueServer::new(graph.clone());
        assert!(Arc::ptr_eq(server.graph(), &graph));
        assert!(Arc::ptr_eq(&server.syn.graph_arc(), &graph));
        assert!(Arc::ptr_eq(&server.asyn.graph_arc(), &graph));
    }

    #[test]
    fn empty_batch_and_worker_clamping() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::new(ex.space)).with_workers(0);
        assert_eq!(server.workers(), 1); // clamped
        assert!(server.query_batch(&[]).is_empty());
        // More workers than queries is fine too.
        let server = server.with_workers(16);
        let one = [Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0))];
        assert_eq!(server.query_batch(&one).len(), 1);
    }

    #[test]
    fn syn_method_answers_identically() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space.clone());
        let asyn_server = VenueServer::new(graph.clone()).with_workers(3);
        let syn_server = VenueServer::new(graph)
            .with_workers(3)
            .with_method(ServeMethod::Syn);
        let batch = example_batch(&ex);
        let a = asyn_server.query_batch(&batch);
        let s = syn_server.query_batch(&batch);
        for (x, y) in a.iter().zip(&s) {
            assert_eq!(
                x.path.as_ref().map(|p| p.length),
                y.path.as_ref().map(|p| p.length)
            );
        }
        // Only the asyn method touches the reduced-graph cache.
        assert!(asyn_server.cached_views() > 0);
        assert_eq!(syn_server.cached_views(), 0);
    }

    #[test]
    fn warm_precomputes_every_interval() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone()));
        server.warm();
        assert_eq!(server.cached_views(), ex.space.checkpoints().len());
        assert!(server.cache_bytes() > 0);
        // A warmed server builds nothing during the batch.
        let answers = server.query_batch(&example_batch(&ex));
        assert!(answers.iter().all(|r| r.stats.views_built == 0));
    }

    #[test]
    fn cold_batch_builds_each_view_once() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone())).with_workers(4);
        let answers = server.query_batch(&example_batch(&ex));
        let built: usize = answers.iter().map(|r| r.stats.views_built).sum();
        assert_eq!(
            built,
            server.cached_views(),
            "each checkpoint interval must be built exactly once server-wide"
        );
    }

    /// A server with sharing actually engaged: `FullRelax` expansion.
    fn sharing_server(ex: &paper_example::PaperExample) -> VenueServer {
        let config = ServerConfig {
            itspq: ItspqConfig::full_relax().with_asyn_mode(AsynMode::Exact),
            ..ServerConfig::default()
        };
        VenueServer::with_config(ItGraph::shared(ex.space.clone()), config)
    }

    /// Four queries sharing p3@9:00, one singleton and one private-partition
    /// fallback.
    fn skewed_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
        let nine = TimeOfDay::hm(9, 0);
        let private = indoor_space::IndoorPoint::new(ex.v(15), indoor_geom::Point::new(5.0, 0.0));
        vec![
            Query::new(ex.p3, ex.p4, nine),
            Query::new(ex.p3, ex.p2, nine),
            Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)), // singleton source
            Query::new(ex.p3, private, nine),               // private target: fallback
            Query::new(ex.p3, ex.p1, nine),
            Query::new(ex.p3, ex.p4, nine), // duplicate (source, target) pair
        ]
    }

    #[test]
    fn plan_groups_by_identical_source_and_time() {
        let ex = paper_example::build();
        let server = sharing_server(&ex);
        let plan = server.plan(&skewed_batch(&ex), false);
        // One 4-member group (p3@9:00 with traversable targets), plus the
        // singleton source and the private-target fallback.
        assert_eq!(plan.shared_groups(), 1);
        assert_eq!(plan.shared_queries(), 4);
        assert_eq!(plan.searches(), 3);
        let stats = plan.stats();
        assert_eq!(stats.frontier_reuses, 3);
        assert!((stats.sharing_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_pruned_config_never_shares() {
        // The default server config keeps the paper's pruned expansion, under
        // which sharing is inert: every query plans as its own search.
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone()));
        let plan = server.plan(&skewed_batch(&ex), false);
        assert_eq!(plan.shared_groups(), 0);
        assert_eq!(plan.searches(), 6);
    }

    #[test]
    fn shared_answers_are_byte_identical_to_independent() {
        let ex = paper_example::build();
        let shared = sharing_server(&ex).with_workers(3);
        let mut config = *shared.config();
        config.strategy = BatchStrategy::Independent;
        let independent = VenueServer::with_config(ItGraph::shared(ex.space.clone()), config);
        let batch = skewed_batch(&ex);
        let a = shared.query_batch(&batch);
        let b = independent.query_batch(&batch);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.path, y.path, "paths diverge at batch index {i}");
        }
    }

    #[test]
    fn batch_stats_report_sharing_and_views() {
        let ex = paper_example::build();
        let server = sharing_server(&ex);
        let (answers, stats) = server.query_batch_with_stats(&skewed_batch(&ex));
        assert_eq!(answers.len(), 6);
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.groups, 3);
        assert_eq!(stats.shared_queries, 4);
        // Views are counted once per physical search, never per group member.
        assert_eq!(stats.views_built, server.cached_views());
    }

    #[test]
    fn try_query_batch_rejects_in_place() {
        let ex = paper_example::build();
        let server = sharing_server(&ex);
        let nan =
            indoor_space::IndoorPoint::new(ex.p3.partition, indoor_geom::Point::new(f64::NAN, 2.0));
        let batch = vec![
            Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(nan, ex.p4, TimeOfDay::hm(9, 0)),
            Query::new(ex.p3, ex.p2, TimeOfDay::hm(9, 0)),
        ];
        let (results, stats) = server.try_query_batch_with_stats(&batch);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert_eq!(stats.rejected, 1);
        // The two well-formed queries still share one frontier.
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.frontier_reuses, 1);
    }
}
