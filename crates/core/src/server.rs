//! The concurrent batched query front-end: one venue, many workers.
//!
//! A [`VenueServer`] owns a single `Arc<ItGraph>` and answers
//! [`Query`] batches on a configurable number of worker threads
//! ([`ServerConfig::workers`]) via [`VenueServer::query_batch`]. Workers are
//! plain [`std::thread::scope`] threads pulling query indices off an atomic
//! counter (dynamic load balancing — an expensive query does not stall the
//! rest of its chunk), and answers come back in input order.
//!
//! What makes this safe and fast is the ownership model of the rest of the
//! crate: the IT-Graph is immutable and `Arc`-shared, so workers borrow it
//! freely, and the only mutable shared state is ITG/A's reduced-graph cache
//! behind a `parking_lot::RwLock` — read-locked on the hot path, write-locked
//! only the first time a checkpoint interval is seen. Each interval's view is
//! built exactly once per server, never per worker (see
//! `AsynEngine::view_for`). Call [`VenueServer::warm`] to precompute every
//! interval before opening the floodgates.
//!
//! By default the server answers with ITG/A in [`AsynMode::Exact`], which is
//! answer-for-answer identical to ITG/S while sharing the cached reduced
//! graphs across queries; [`ServeMethod::Syn`] switches to pure ITG/S.
//!
//! # Example
//!
//! The paper's Example 1 served as a batch:
//!
//! ```
//! use indoor_space::paper_example;
//! use indoor_time::TimeOfDay;
//! use itspq_core::server::VenueServer;
//! use itspq_core::{ItGraph, Query};
//!
//! let ex = paper_example::build();
//! let server = VenueServer::new(ItGraph::shared(ex.space.clone())).with_workers(2);
//!
//! let batch = vec![
//!     Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)),   // 12 m via d18
//!     Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)), // no such routes
//! ];
//! let answers = server.query_batch(&batch);
//! assert!((answers[0].path.as_ref().unwrap().length - 12.0).abs() < 1e-9);
//! assert!(answers[1].path.is_none());
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::{
    AsynEngine, AsynMode, ItGraph, ItspqConfig, Query, QueryError, QueryResult, SynEngine,
};

/// Which engine answers the server's queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMethod {
    /// ITG/S: synchronous ATI checks, no shared state at all.
    Syn,
    /// ITG/A: asynchronous checks over the shared reduced-graph cache.
    Asyn,
}

/// Tunables of a [`VenueServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads used by [`VenueServer::query_batch`] (at least 1).
    pub workers: usize,
    /// Which engine answers queries.
    pub method: ServeMethod,
    /// Engine configuration shared by both methods.
    pub itspq: ItspqConfig,
}

impl Default for ServerConfig {
    /// Workers follow the machine (capped at 8); the method is ITG/A in
    /// [`AsynMode::Exact`] — identical answers to ITG/S, but sharing the
    /// reduced-graph cache across queries and workers.
    fn default() -> Self {
        ServerConfig {
            workers: default_workers(),
            method: ServeMethod::Asyn,
            itspq: ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
        }
    }
}

/// Worker count when none is configured: the machine's available
/// parallelism, capped at 8.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// A shared-venue query server: owns one `Arc<ItGraph>`, shares the ITG/A
/// reduced-graph cache across worker threads, and answers query batches in
/// parallel.
///
/// The server is `Sync`; `query` and `query_batch` take `&self`, so one
/// instance can also be driven from externally managed threads.
#[derive(Debug)]
pub struct VenueServer {
    graph: Arc<ItGraph>,
    syn: SynEngine,
    asyn: AsynEngine,
    config: ServerConfig,
}

impl VenueServer {
    /// Creates a server with [`ServerConfig::default`].
    #[must_use]
    pub fn new(graph: impl Into<Arc<ItGraph>>) -> Self {
        Self::with_config(graph, ServerConfig::default())
    }

    /// Creates a server with an explicit configuration.
    #[must_use]
    pub fn with_config(graph: impl Into<Arc<ItGraph>>, config: ServerConfig) -> Self {
        let graph = graph.into();
        VenueServer {
            syn: SynEngine::new(Arc::clone(&graph), config.itspq),
            asyn: AsynEngine::new(Arc::clone(&graph), config.itspq),
            graph,
            config,
        }
    }

    /// Returns the server with the worker count replaced (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Returns the server with the answering method replaced.
    #[must_use]
    pub fn with_method(mut self, method: ServeMethod) -> Self {
        self.config.method = method;
        self
    }

    /// The shared graph.
    #[must_use]
    pub fn graph(&self) -> &Arc<ItGraph> {
        &self.graph
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Worker threads used per batch.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Precomputes the reduced graph of every checkpoint interval, so no
    /// query ever pays the write-lock construction path.
    pub fn warm(&self) {
        self.asyn.precompute_all();
    }

    /// Number of reduced-graph views currently cached.
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.asyn.cached_views()
    }

    /// Total heap bytes of the cached reduced-graph views.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.asyn.cache_bytes()
    }

    /// Answers a single query with the configured method.
    #[must_use]
    pub fn query(&self, query: &Query) -> QueryResult {
        match self.config.method {
            ServeMethod::Syn => self.syn.query(query),
            ServeMethod::Asyn => self.asyn.query(query),
        }
    }

    /// Answers a single query after validating it, so malformed input (NaN
    /// coordinates, out-of-range partitions) surfaces as a value instead of
    /// unwinding a worker thread.
    ///
    /// # Errors
    /// [`QueryError`] describing the first malformed endpoint.
    pub fn try_query(&self, query: &Query) -> Result<QueryResult, QueryError> {
        query.validate(self.graph.space())?;
        Ok(self.query(query))
    }

    /// Answers a batch of queries on up to [`ServerConfig::workers`] threads,
    /// returning results in input order.
    ///
    /// Workers pull indices off a shared atomic counter, so load balances
    /// dynamically; per-query results are independent of the worker count and
    /// of scheduling (the only shared mutable state, the reduced-graph cache,
    /// affects timing, never answers).
    #[must_use]
    pub fn query_batch(&self, queries: &[Query]) -> Vec<QueryResult> {
        let workers = self.config.workers.clamp(1, queries.len().max(1));
        if workers == 1 {
            return queries.iter().map(|q| self.query(q)).collect();
        }

        let next = AtomicUsize::new(0);
        let mut indexed: Vec<(usize, QueryResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(q) = queries.get(i) else { break };
                            local.push((i, self.query(q)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(local) => local,
                    // Re-raise a worker's panic with its original payload
                    // instead of wrapping it in a second panic here.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;
    use indoor_time::TimeOfDay;

    fn example_batch(ex: &paper_example::PaperExample) -> Vec<Query> {
        let mut batch = Vec::new();
        for (h, m) in [(9, 0), (12, 0), (15, 59), (22, 0), (23, 30), (5, 30)] {
            for (s, t) in [(ex.p3, ex.p4), (ex.p1, ex.p2), (ex.p2, ex.p3)] {
                batch.push(Query::new(s, t, TimeOfDay::hm(h, m)));
            }
        }
        batch
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VenueServer>();
    }

    #[test]
    fn batch_matches_sequential_itg_s() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space.clone());
        let server = VenueServer::new(graph.clone()).with_workers(4);
        let syn = SynEngine::new(graph, ItspqConfig::default());
        let batch = example_batch(&ex);
        let answers = server.query_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        for (q, a) in batch.iter().zip(&answers) {
            let s = syn.query(q);
            assert_eq!(
                s.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                a.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                "batch answer diverges from ITG/S at {}",
                q.time
            );
        }
    }

    #[test]
    fn engines_share_one_graph() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space);
        let server = VenueServer::new(graph.clone());
        assert!(Arc::ptr_eq(server.graph(), &graph));
        assert!(Arc::ptr_eq(&server.syn.graph_arc(), &graph));
        assert!(Arc::ptr_eq(&server.asyn.graph_arc(), &graph));
    }

    #[test]
    fn empty_batch_and_worker_clamping() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::new(ex.space)).with_workers(0);
        assert_eq!(server.workers(), 1); // clamped
        assert!(server.query_batch(&[]).is_empty());
        // More workers than queries is fine too.
        let server = server.with_workers(16);
        let one = [Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0))];
        assert_eq!(server.query_batch(&one).len(), 1);
    }

    #[test]
    fn syn_method_answers_identically() {
        let ex = paper_example::build();
        let graph = ItGraph::shared(ex.space.clone());
        let asyn_server = VenueServer::new(graph.clone()).with_workers(3);
        let syn_server = VenueServer::new(graph)
            .with_workers(3)
            .with_method(ServeMethod::Syn);
        let batch = example_batch(&ex);
        let a = asyn_server.query_batch(&batch);
        let s = syn_server.query_batch(&batch);
        for (x, y) in a.iter().zip(&s) {
            assert_eq!(
                x.path.as_ref().map(|p| p.length),
                y.path.as_ref().map(|p| p.length)
            );
        }
        // Only the asyn method touches the reduced-graph cache.
        assert!(asyn_server.cached_views() > 0);
        assert_eq!(syn_server.cached_views(), 0);
    }

    #[test]
    fn warm_precomputes_every_interval() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone()));
        server.warm();
        assert_eq!(server.cached_views(), ex.space.checkpoints().len());
        assert!(server.cache_bytes() > 0);
        // A warmed server builds nothing during the batch.
        let answers = server.query_batch(&example_batch(&ex));
        assert!(answers.iter().all(|r| r.stats.views_built == 0));
    }

    #[test]
    fn cold_batch_builds_each_view_once() {
        let ex = paper_example::build();
        let server = VenueServer::new(ItGraph::shared(ex.space.clone())).with_workers(4);
        let answers = server.query_batch(&example_batch(&ex));
        let built: usize = answers.iter().map(|r| r.stats.views_built).sum();
        assert_eq!(
            built,
            server.cached_views(),
            "each checkpoint interval must be built exactly once server-wide"
        );
    }
}
