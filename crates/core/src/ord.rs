//! Total-order comparisons for `f64` search distances.
//!
//! Dijkstra bookkeeping compares distances constantly — in the heap, when
//! promoting k-shortest-path candidates, when folding partition distances.
//! `partial_cmp(..).unwrap()` at those sites turns a single NaN (a corrupt
//! distance matrix, a degenerate geometry, a caller-supplied NaN
//! coordinate) into a panic in the middle of a search that may be running
//! on a server worker thread. Every comparison in this crate goes through
//! [`f64::total_cmp`] instead: NaN is simply the *largest* value, so a
//! poisoned distance loses every "is this shorter?" contest and the search
//! degrades to "no route" rather than unwinding.
//!
//! The `float-total-order` rule of `itspq-lint` enforces that no
//! `partial_cmp(..).unwrap()` chain reappears in library code.

use std::cmp::Ordering;

/// Compares two distances under the IEEE 754 `totalOrder` predicate.
///
/// `-inf < … < 0 < … < +inf < NaN`: a NaN distance sorts after every real
/// distance, so it can never win a minimisation.
#[inline]
#[must_use]
pub fn cmp_dist(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// The smaller of two distances under [`cmp_dist`].
///
/// Unlike `f64::min`, which *ignores* NaN (`f64::NAN.min(1.0) == 1.0`),
/// this is a plain total-order minimum — but since NaN sorts last the
/// effect on mixed inputs is the same, and the choice is deterministic.
#[inline]
#[must_use]
pub fn min_dist(a: f64, b: f64) -> f64 {
    if cmp_dist(b, a) == Ordering::Less {
        b
    } else {
        a
    }
}

/// Compares optional path lengths: absent routes sort after every present
/// one, so `min_by(cmp_opt_len)` picks the shortest *existing* route.
#[inline]
#[must_use]
pub fn cmp_opt_len(a: Option<f64>, b: Option<f64>) -> Ordering {
    match (a, b) {
        (Some(x), Some(y)) => cmp_dist(x, y),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

/// An `f64` wrapper that is `Eq + Ord` under [`cmp_dist`].
///
/// For sort keys and ordered collections; `OrdF64(NaN)` is a legal, largest
/// element rather than a logic error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_dist(self.0, other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_sorts_after_infinity() {
        assert_eq!(cmp_dist(f64::INFINITY, f64::NAN), Ordering::Less);
        assert_eq!(cmp_dist(f64::NAN, 0.0), Ordering::Greater);
        assert_eq!(cmp_dist(f64::NAN, f64::NAN), Ordering::Equal);
    }

    #[test]
    fn min_dist_never_picks_nan_over_a_real_value() {
        assert_eq!(min_dist(f64::NAN, 3.0), 3.0);
        assert_eq!(min_dist(3.0, f64::NAN), 3.0);
        assert!(min_dist(f64::NAN, f64::NAN).is_nan());
        assert_eq!(min_dist(1.0, 2.0), 1.0);
        assert_eq!(min_dist(f64::INFINITY, 2.0), 2.0);
    }

    #[test]
    fn opt_len_prefers_present_routes() {
        assert_eq!(cmp_opt_len(Some(5.0), None), Ordering::Less);
        assert_eq!(cmp_opt_len(None, Some(5.0)), Ordering::Greater);
        assert_eq!(cmp_opt_len(None, None), Ordering::Equal);
        assert_eq!(cmp_opt_len(Some(1.0), Some(2.0)), Ordering::Less);
        // Even a NaN length beats "no route at all".
        assert_eq!(cmp_opt_len(Some(f64::NAN), None), Ordering::Less);
    }

    #[test]
    fn ordf64_sorts_with_nan_last() {
        let mut v = [
            OrdF64(f64::NAN),
            OrdF64(2.0),
            OrdF64(f64::NEG_INFINITY),
            OrdF64(1.0),
        ];
        v.sort();
        assert_eq!(v[0].0, f64::NEG_INFINITY);
        assert_eq!(v[1].0, 1.0);
        assert_eq!(v[2].0, 2.0);
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn negative_zero_sorts_before_positive_zero() {
        // total_cmp distinguishes the zeros; document it so nobody relies
        // on -0.0 == 0.0 equality through this module.
        assert_eq!(cmp_dist(-0.0, 0.0), Ordering::Less);
    }
}
