//! Method ITG/S: Algorithm 1 + the synchronous check of Algorithm 2.
//!
//! Every relaxation of the Dijkstra-style expansion projects the arrival time
//! `t + dist / velocity` at the door being relaxed and looks the door's ATIs
//! up **synchronously** — no auxiliary structure is maintained, so ITG/S has
//! zero per-query state beyond the search itself and is the reference answer
//! the other method (and this repo's concurrent front-end) is checked
//! against.
//!
//! The engine holds its graph as an `Arc<ItGraph>`; constructing one from a
//! plain [`ItGraph`] wraps it on the fly, while constructing many engines
//! from one [`ItGraph::shared`] handle shares a single venue allocation.
//!
//! # Example
//!
//! The paper's Example 1: at 9:00 the (p3, d15, d16, p4) shortcut is rejected
//! (v15 is private) and the 12 m path through d18 wins; at 23:30 d18 is
//! closed and no valid route remains.
//!
//! ```
//! use indoor_space::paper_example;
//! use indoor_time::TimeOfDay;
//! use itspq_core::{ItGraph, ItspqConfig, Query, SynEngine};
//!
//! let ex = paper_example::build();
//! let engine = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
//!
//! let morning = engine.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)));
//! assert!((morning.path.expect("feasible at 9:00").length - 12.0).abs() < 1e-9);
//!
//! let night = engine.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)));
//! assert!(night.path.is_none());
//! ```

use std::sync::Arc;

use indoor_space::{DoorId, IndoorPoint, IndoorSpace, PartitionId};
use indoor_time::{TimeOfDay, Timestamp, Velocity};

use crate::framework::{run_search, run_search_targets, SweepObserver, TvChecker};
use crate::{ItGraph, ItspqConfig, Path, Query, QueryError, QueryResult, SearchStats};

/// `Syn_Check` (Algorithm 2): look up the door's ATIs at the arrival time
/// `t + dist / velocity`. Shared with [`crate::one_to_many`], whose sweeps
/// run ITG/S semantics.
pub(crate) struct SynChecker<'a> {
    pub(crate) space: &'a IndoorSpace,
    pub(crate) velocity: Velocity,
    pub(crate) t0: Timestamp,
}

impl TvChecker for SynChecker<'_> {
    fn leaveable(&self, v: PartitionId) -> &[DoorId] {
        self.space.p2d_leaveable(v)
    }

    fn check(&mut self, d: DoorId, dist: f64, _stats: &mut SearchStats) -> bool {
        let tarr = self.t0 + self.velocity.travel_time(dist);
        self.space.door(d).atis.is_open_at(tarr)
    }

    fn account(&self, _stats: &mut SearchStats) {}
}

/// The ITG/S query engine: every encountered door is validated against its
/// ATIs at the projected arrival time.
///
/// Holds the venue as `Arc<ItGraph>`: cloning the engine, or constructing
/// several engines from one [`ItGraph::shared`] handle, shares a single
/// immutable graph.
#[derive(Debug, Clone)]
pub struct SynEngine {
    graph: Arc<ItGraph>,
    config: ItspqConfig,
}

impl SynEngine {
    /// Creates the engine over a graph. Accepts an `Arc<ItGraph>` (shared
    /// with other engines) or a plain [`ItGraph`] (wrapped on the fly).
    #[must_use]
    pub fn new(graph: impl Into<Arc<ItGraph>>, config: ItspqConfig) -> Self {
        SynEngine {
            graph: graph.into(),
            config,
        }
    }

    /// The engine's graph.
    #[must_use]
    pub fn graph(&self) -> &ItGraph {
        &self.graph
    }

    /// A shareable handle to the engine's graph.
    #[must_use]
    pub fn graph_arc(&self) -> Arc<ItGraph> {
        Arc::clone(&self.graph)
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &ItspqConfig {
        &self.config
    }

    /// Answers `ITSPQ(ps, pt, t)`.
    #[must_use]
    pub fn query(&self, query: &Query) -> QueryResult {
        let mut checker = SynChecker {
            space: self.graph.space(),
            velocity: self.config.velocity,
            t0: query.departure(),
        };
        let (path, stats) = run_search(&self.graph, query, &self.config, &mut checker);
        QueryResult { path, stats }
    }

    /// Answers `ITSPQ(ps, pt, t)` after validating the query.
    ///
    /// # Errors
    /// [`QueryError`] if an endpoint has non-finite coordinates or names a
    /// partition the venue does not have; the search itself never runs.
    pub fn try_query(&self, query: &Query) -> Result<QueryResult, QueryError> {
        query.validate(self.graph.space())?;
        Ok(self.query(query))
    }

    /// Answers a whole group of targets from one source with a single shared
    /// search frontier. Callers must uphold the preconditions of
    /// [`run_search_targets`] (FullRelax config, traversable-or-source target
    /// partitions); results are then byte-identical to per-target [`query`]
    /// calls.
    ///
    /// [`query`]: SynEngine::query
    pub(crate) fn query_targets(
        &self,
        source: &IndoorPoint,
        time: TimeOfDay,
        targets: &[IndoorPoint],
        observer: &mut SweepObserver,
    ) -> (Vec<Option<Path>>, SearchStats) {
        let mut checker = SynChecker {
            space: self.graph.space(),
            velocity: self.config.velocity,
            t0: Timestamp::from_time_of_day(time),
        };
        run_search_targets(
            &self.graph,
            source,
            time,
            targets,
            &self.config,
            &mut checker,
            observer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;
    use indoor_time::TimeOfDay;

    fn engine() -> (paper_example::PaperExample, SynEngine) {
        let ex = paper_example::build();
        let graph = ItGraph::new(ex.space.clone());
        (ex, SynEngine::new(graph, ItspqConfig::default()))
    }

    #[test]
    fn example1_at_9_takes_d18() {
        let (ex, eng) = engine();
        let res = eng.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)));
        let path = res.path.expect("path exists at 9:00");
        assert_eq!(path.doors().collect::<Vec<_>>(), vec![ex.d(18)]);
        assert!((path.length - 12.0).abs() < 1e-9);
        assert_eq!(path.format_with(&ex.space), "(ps, d18, pt)");
        assert!(res.stats.doors_settled > 0);
    }

    #[test]
    fn example1_at_2330_has_no_route() {
        let (ex, eng) = engine();
        let res = eng.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)));
        assert!(res.path.is_none());
        assert!(res.stats.tv_rejections > 0);
    }

    #[test]
    fn private_shortcut_would_win_if_public() {
        // Sanity for the test fixture: the rejected v15 route is shorter.
        let (ex, _) = engine();
        let s = &ex.space;
        let via_v15 = s.point_to_door(&ex.p3, ex.d(15)).unwrap()
            + s.door_to_door(ex.v(15), ex.d(15), ex.d(16)).unwrap()
            + s.point_to_door(&ex.p4, ex.d(16)).unwrap();
        assert!(via_v15 < 12.0);
    }

    #[test]
    fn same_partition_query_is_direct() {
        let (ex, eng) = engine();
        let other =
            indoor_space::IndoorPoint::new(ex.p3.partition, indoor_geom::Point::new(3.0, 4.0));
        let res = eng.query(&Query::new(ex.p3, other, TimeOfDay::hm(3, 0)));
        let path = res.path.unwrap();
        assert!(path.hops.is_empty());
        assert!((path.length - 5.0).abs() < 1e-12);
        // Direct paths cross no door, so they work even at night.
    }

    #[test]
    fn source_in_private_partition_can_leave() {
        // p in v15 (private) must still route out: rule 2 excepts P(ps).
        let (ex, eng) = engine();
        let src = indoor_space::IndoorPoint::new(ex.v(15), indoor_geom::Point::new(5.0, 0.0));
        let res = eng.query(&Query::new(src, ex.p4, TimeOfDay::hm(12, 0)));
        let path = res.path.expect("can leave a private source partition");
        assert_eq!(path.doors().next(), Some(ex.d(16)));
    }

    #[test]
    fn target_in_private_partition_can_be_reached() {
        let (ex, eng) = engine();
        let dst = indoor_space::IndoorPoint::new(ex.v(15), indoor_geom::Point::new(5.0, 0.0));
        let res = eng.query(&Query::new(ex.p3, dst, TimeOfDay::hm(12, 0)));
        let path = res.path.expect("can enter a private target partition");
        let doors: Vec<_> = path.doors().collect();
        assert_eq!(doors.last(), Some(&ex.d(15)).or(Some(&ex.d(16))));
    }

    #[test]
    fn no_route_to_isolated_private_room_after_hours() {
        // v1's only door d1 is open [5:00, 23:00); at 4:00 it cannot be
        // reached …
        let (ex, eng) = engine();
        let dst = indoor_space::IndoorPoint::new(ex.v(1), indoor_geom::Point::new(5.0, 35.0));
        let src = indoor_space::IndoorPoint::new(ex.v(3), indoor_geom::Point::new(8.0, 31.0));
        let res = eng.query(&Query::new(src, dst, TimeOfDay::hm(4, 0)));
        assert!(res.path.is_none());
        // … but at noon it can.
        let res = eng.query(&Query::new(src, dst, TimeOfDay::hm(12, 0)));
        assert!(res.path.is_some());
    }

    #[test]
    fn stats_are_populated() {
        let (ex, eng) = engine();
        let res = eng.query(&Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)));
        assert!(res.path.is_some());
        let s = res.stats;
        assert!(s.heap_pushes > 0);
        assert!(s.heap_pops > 0);
        assert!(s.tv_checks >= s.tv_rejections);
        assert!(s.search_bytes > 0);
        assert_eq!(s.graph_updates, 0); // ITG/S never updates graphs
        assert_eq!(s.reduced_graph_bytes, 0);
    }
}
