//! The indoor temporal-variation graph (IT-Graph) and its shared-ownership
//! model.
//!
//! [`ItGraph`] is the paper's `G_IT(V, E, L_V, L_E)`: partitions as vertices
//! (labelled with partition type and distance matrix), door crossings as
//! directed edges (labelled with door type and ATIs). It is **immutable after
//! construction** — every engine, baseline and extension only ever reads it —
//! which is what makes one venue safely servable to any number of concurrent
//! queries.
//!
//! The ownership rules (see `ARCHITECTURE.md`):
//!
//! * build the venue once and wrap it with [`ItGraph::shared`] (or let the
//!   std `From<ItGraph> for Arc<ItGraph>` conversion do it at an engine
//!   constructor);
//! * owners — [`crate::SynEngine`], [`crate::AsynEngine`],
//!   [`crate::server::VenueServer`] — hold `Arc<ItGraph>`, so handing a graph
//!   to an engine bumps a reference count instead of copying distance
//!   matrices;
//! * algorithms borrow `&ItGraph`; an `Arc<ItGraph>` coerces to `&ItGraph`
//!   at every such call site.
//!
//! # Example
//!
//! The paper's Example 1 venue as an IT-Graph, shared by the two engines
//! without cloning the venue:
//!
//! ```
//! use indoor_space::paper_example;
//! use indoor_time::TimeOfDay;
//! use itspq_core::{AsynEngine, ItGraph, ItspqConfig, Query, SynEngine};
//!
//! let ex = paper_example::build();
//! let graph = ItGraph::shared(ex.space.clone()); // Arc<ItGraph>
//! assert_eq!(graph.vertex_count(), 18);
//! assert_eq!(graph.door_count(), 21);
//!
//! // Both engines reference the same graph allocation.
//! let syn = SynEngine::new(graph.clone(), ItspqConfig::default());
//! let asyn = AsynEngine::new(graph.clone(), ItspqConfig::default());
//! assert!(std::sync::Arc::ptr_eq(&syn.graph_arc(), &asyn.graph_arc()));
//!
//! // And both answer Example 1: the 12 m route through d18 at 9:00.
//! let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0));
//! let (s, a) = (syn.query(&q), asyn.query(&q));
//! assert!((s.path.unwrap().length - 12.0).abs() < 1e-9);
//! assert!((a.path.unwrap().length - 12.0).abs() < 1e-9);
//! ```

use std::sync::Arc;

use indoor_space::{DoorId, DoorKind, IndoorSpace, PartitionId, PartitionKind};
use indoor_time::AtiList;

/// The paper's IT-Graph `G_IT(V, E, L_V, L_E)`.
///
/// Vertices are the venue's partitions, labelled `(IDv, p-type, DM)`; directed
/// edges are door crossings `(v_i, v_j, d_k)`, labelled `(IDd, d-type, ATIs)`.
/// The structure wraps a shared [`IndoorSpace`] (which already materialises
/// the labels and the `P2D`/`D2P` accessibility mappings) and exposes them in
/// the paper's vocabulary, plus the derived edge list.
///
/// Cloning an `ItGraph` is cheap (it shares the venue via [`Arc`]), which is
/// how the ITG/S and ITG/A engines hold the same graph.
#[derive(Debug, Clone)]
pub struct ItGraph {
    space: Arc<IndoorSpace>,
}

/// One directed edge `(from, to, door)` of the IT-Graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItEdge {
    /// Vertex the edge leaves.
    pub from: PartitionId,
    /// Vertex the edge enters.
    pub to: PartitionId,
    /// The door crossed.
    pub door: DoorId,
}

impl ItGraph {
    /// Builds the IT-Graph over a venue.
    #[must_use]
    pub fn new(space: IndoorSpace) -> Self {
        ItGraph {
            space: Arc::new(space),
        }
    }

    /// Builds the IT-Graph over a venue and wraps it for sharing: the handle
    /// every engine and [`crate::server::VenueServer`] of the venue should be
    /// constructed from.
    #[must_use]
    pub fn shared(space: IndoorSpace) -> Arc<Self> {
        Arc::new(Self::new(space))
    }

    /// Builds the IT-Graph over an already shared venue.
    #[must_use]
    pub fn from_arc(space: Arc<IndoorSpace>) -> Self {
        ItGraph { space }
    }

    /// The underlying venue.
    #[must_use]
    pub fn space(&self) -> &IndoorSpace {
        &self.space
    }

    /// A shareable handle to the venue.
    #[must_use]
    pub fn space_arc(&self) -> Arc<IndoorSpace> {
        Arc::clone(&self.space)
    }

    /// `|V|`: number of vertices (partitions).
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.space.num_partitions()
    }

    /// Number of doors (distinct edge labels); `πD(E)` in the paper.
    #[must_use]
    pub fn door_count(&self) -> usize {
        self.space.num_doors()
    }

    /// `|E|`: number of directed door-crossing edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// All directed edges `(v_i, v_j, d_k)`: one per (leaveable partition,
    /// enterable partition) pair of each door.
    pub fn edges(&self) -> impl Iterator<Item = ItEdge> + '_ {
        (0..self.space.num_doors()).flat_map(move |i| {
            let door = DoorId::from_index(i);
            self.space
                .d2p_leaveable(door)
                .iter()
                .flat_map(move |&from| {
                    self.space
                        .d2p_enterable(door)
                        .iter()
                        .filter(move |&&to| to != from)
                        .map(move |&to| ItEdge { from, to, door })
                })
        })
    }

    /// The vertex label `(IDv, p-type, DM)` of a partition, paper-style.
    #[must_use]
    pub fn vertex_label(&self, v: PartitionId) -> (PartitionId, PartitionKind, usize) {
        let rec = self.space.partition(v);
        (rec.id, rec.kind, self.space.distance_matrix(v).len())
    }

    /// The edge label `(IDd, d-type, ATIs)` of a door, paper-style.
    #[must_use]
    pub fn edge_label(&self, d: DoorId) -> (DoorId, DoorKind, &AtiList) {
        let rec = self.space.door(d);
        (rec.id, rec.kind, &rec.atis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;

    #[test]
    fn counts_on_paper_example() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        assert_eq!(g.vertex_count(), 18);
        assert_eq!(g.door_count(), 21);
        // 20 two-way doors contribute 2 directed edges each; the one-way d3
        // contributes 1.
        assert_eq!(g.edge_count(), 41);
    }

    #[test]
    fn edges_respect_directionality() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let d3_edges: Vec<ItEdge> = g.edges().filter(|e| e.door == ex.d(3)).collect();
        assert_eq!(
            d3_edges,
            vec![ItEdge {
                from: ex.v(3),
                to: ex.v(16),
                door: ex.d(3)
            }]
        );
        let d1_edges: Vec<ItEdge> = g.edges().filter(|e| e.door == ex.d(1)).collect();
        assert_eq!(d1_edges.len(), 2);
    }

    #[test]
    fn labels_paper_style() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let (id, ptype, dm_len) = g.vertex_label(ex.v(16));
        assert_eq!(id, ex.v(16));
        assert_eq!(ptype, PartitionKind::Public);
        assert_eq!(dm_len, 3);
        let (did, dtype, atis) = g.edge_label(ex.d(7));
        assert_eq!(did, ex.d(7));
        assert_eq!(dtype, DoorKind::Private);
        assert!(atis.has_variation());
    }

    #[test]
    fn clones_share_the_space() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space);
        let h = g.clone();
        assert!(Arc::ptr_eq(&g.space_arc(), &h.space_arc()));
    }
}
