//! Baseline algorithms for comparison and ground truth.
//!
//! * [`static_shortest_path`] — temporal-oblivious Dijkstra: the pre-ITSPQ
//!   state of the art that ignores ATIs entirely (distances stay valid only
//!   while every door is open). Also used by the synthetic query generator to
//!   realise the paper's `δs2t` distance control.
//! * [`snapshot_shortest_path`] — Dijkstra on the topology frozen at the query
//!   time `t`: what a system refreshing its graph but unaware of *en-route*
//!   changes would answer. Its paths can be invalid under ITSPQ semantics.
//! * [`door_distances`] — full single-source distances from a point to every
//!   door, ignoring time (workload generation, diagnostics).
//! * [`exhaustive_shortest`] — an exponential oracle enumerating elementary
//!   door sequences; exact ITSPQ answers on small venues for testing.

use indoor_space::{DoorId, IndoorPoint, IndoorSpace, PartitionId};
use indoor_time::Timestamp;

use crate::framework::{run_search, TvChecker};
use crate::heap::{MinHeap, Node};
use crate::{DoorHop, ItGraph, ItspqConfig, Path, Query, QueryResult, SearchStats};

/// A checker that accepts every door (temporal-oblivious baseline).
struct StaticChecker<'a> {
    space: &'a IndoorSpace,
}

impl TvChecker for StaticChecker<'_> {
    fn leaveable(&self, v: PartitionId) -> &[DoorId] {
        self.space.p2d_leaveable(v)
    }

    fn check(&mut self, _d: DoorId, _dist: f64, _stats: &mut SearchStats) -> bool {
        true
    }

    fn account(&self, _stats: &mut SearchStats) {}
}

/// A checker that freezes door states at the query time `t`.
struct SnapshotChecker<'a> {
    space: &'a IndoorSpace,
    t: indoor_time::TimeOfDay,
}

impl TvChecker for SnapshotChecker<'_> {
    fn leaveable(&self, v: PartitionId) -> &[DoorId] {
        self.space.p2d_leaveable(v)
    }

    fn check(&mut self, d: DoorId, _dist: f64, _stats: &mut SearchStats) -> bool {
        self.space.door(d).atis.is_open(self.t)
    }

    fn account(&self, _stats: &mut SearchStats) {}
}

/// Shortest path ignoring temporal variations entirely.
#[must_use]
pub fn static_shortest_path(graph: &ItGraph, query: &Query, config: &ItspqConfig) -> QueryResult {
    let mut checker = StaticChecker {
        space: graph.space(),
    };
    let (path, stats) = run_search(graph, query, config, &mut checker);
    QueryResult { path, stats }
}

/// Shortest path on the topology frozen at the query time (doors keep their
/// state at `t` for the whole walk).
#[must_use]
pub fn snapshot_shortest_path(graph: &ItGraph, query: &Query, config: &ItspqConfig) -> QueryResult {
    let mut checker = SnapshotChecker {
        space: graph.space(),
        t: query.time,
    };
    let (path, stats) = run_search(graph, query, config, &mut checker);
    QueryResult { path, stats }
}

/// Temporal-oblivious distances from `source` to every door (`f64::INFINITY`
/// where unreachable). Traversal rules (privacy) still apply, with `source`'s
/// partition always permitted.
#[must_use]
pub fn door_distances(graph: &ItGraph, source: &IndoorPoint) -> Vec<f64> {
    let space = graph.space();
    let n = space.num_doors();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = MinHeap::new();

    let allowed =
        |v: PartitionId| -> bool { v == source.partition || space.partition(v).kind.traversable() };

    for &d in space.p2d_leaveable(source.partition) {
        if let Some(w) = space.point_to_door(source, d) {
            if w < dist[d.index()] {
                dist[d.index()] = w;
                heap.push(w, Node::Door(d.index() as u32));
            }
        }
    }

    while let Some(entry) = heap.pop() {
        let Node::Door(di) = entry.node else { continue };
        if settled[di as usize] {
            continue;
        }
        settled[di as usize] = true;
        let door = DoorId(di);
        let base = dist[di as usize];
        for &v in space.d2p_enterable(door) {
            if !allowed(v) {
                continue;
            }
            for &dj in space.p2d_leaveable(v) {
                if dj.index() as u32 == di || settled[dj.index()] {
                    continue;
                }
                if let Some(w) = space.door_to_door(v, door, dj) {
                    let cand = base + w;
                    if cand < dist[dj.index()] {
                        dist[dj.index()] = cand;
                        heap.push(cand, Node::Door(dj.index() as u32));
                    }
                }
            }
        }
    }
    dist
}

/// Exhaustive ITSPQ oracle: enumerates every elementary door sequence (each
/// door crossed at most once) respecting both ITSPQ rules, and returns the
/// shortest valid path. Exponential — only for small venues in tests.
///
/// `max_doors` bounds the search depth.
#[must_use]
pub fn exhaustive_shortest(
    graph: &ItGraph,
    query: &Query,
    config: &ItspqConfig,
    max_doors: usize,
) -> Option<Path> {
    let space = graph.space();
    let t0 = query.departure();
    let src = query.source;
    let dst = query.target;

    if src.partition == dst.partition {
        let length = src.position.distance(dst.position);
        return Some(Path {
            source: src,
            target: dst,
            hops: Vec::new(),
            length,
            departure: t0,
            arrival: t0 + config.velocity.travel_time(length),
        });
    }

    struct Dfs<'a> {
        space: &'a IndoorSpace,
        config: &'a ItspqConfig,
        t0: Timestamp,
        src: IndoorPoint,
        dst: IndoorPoint,
        max_doors: usize,
        used: Vec<bool>,
        stack: Vec<(DoorId, PartitionId)>,
        best_len: f64,
        best: Option<Vec<(DoorId, PartitionId)>>,
    }

    impl Dfs<'_> {
        fn allowed(&self, v: PartitionId) -> bool {
            v == self.src.partition
                || v == self.dst.partition
                || self.space.partition(v).kind.traversable()
        }

        /// Explore from partition `v`, entered through `entry` with
        /// cumulative distance `dist`.
        fn go(&mut self, v: PartitionId, entry: Option<DoorId>, dist: f64) {
            // Terminal: the entry door bounds the target partition.
            if v == self.dst.partition {
                if let Some(e) = entry {
                    if let Some(leg) = self.space.point_to_door(&self.dst, e) {
                        let total = dist + leg;
                        if total < self.best_len {
                            self.best_len = total;
                            self.best = Some(self.stack.clone());
                        }
                    }
                }
                // Continuing through P(pt) is legal but cannot yield a
                // shorter arrival back into it (triangle inequality).
                return;
            }
            if self.stack.len() >= self.max_doors {
                return;
            }
            for &dj in self.space.p2d_leaveable(v) {
                if self.used[dj.index()] {
                    continue;
                }
                let leg = match entry {
                    Some(e) => self.space.door_to_door(v, e, dj),
                    None => self.space.point_to_door(&self.src, dj),
                };
                let Some(leg) = leg else { continue };
                let nd = dist + leg;
                if nd >= self.best_len {
                    continue; // cannot improve
                }
                let tarr = self.t0 + self.config.velocity.travel_time(nd);
                if !self.space.door(dj).atis.is_open_at(tarr) {
                    continue;
                }
                for ui in 0..self.space.d2p_enterable(dj).len() {
                    let u = self.space.d2p_enterable(dj)[ui];
                    if u == v || !self.allowed(u) {
                        continue;
                    }
                    self.used[dj.index()] = true;
                    self.stack.push((dj, v));
                    self.go(u, Some(dj), nd);
                    self.stack.pop();
                    self.used[dj.index()] = false;
                }
            }
        }
    }

    let mut dfs = Dfs {
        space,
        config,
        t0,
        src,
        dst,
        max_doors,
        used: vec![false; space.num_doors()],
        stack: Vec::new(),
        best_len: f64::INFINITY,
        best: None,
    };
    dfs.go(src.partition, None, 0.0);

    let doors = dfs.best?;
    // Rebuild cumulative distances for the winning sequence.
    let mut hops = Vec::with_capacity(doors.len());
    let mut cumulative = 0.0;
    let mut prev: Option<DoorId> = None;
    for &(door, via) in &doors {
        // The winning sequence was walked by the DFS, so every leg exists;
        // `?` degrades a broken invariant to "no route" instead of a panic.
        let leg = match prev {
            None => space.point_to_door(&src, door),
            Some(p) => space.door_to_door(via, p, door),
        }?;
        cumulative += leg;
        hops.push(DoorHop {
            door,
            via_partition: via,
            distance: cumulative,
            arrival: t0 + config.velocity.travel_time(cumulative),
        });
        prev = Some(door);
    }
    let length = dfs.best_len;
    Some(Path {
        source: src,
        target: dst,
        hops,
        length,
        departure: t0,
        arrival: t0 + config.velocity.travel_time(length),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_path, SynEngine};
    use indoor_space::paper_example;
    use indoor_time::TimeOfDay;

    #[test]
    fn static_path_ignores_time() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let cfg = ItspqConfig::default();
        // At 23:30 ITSPQ has no route, but the static baseline happily routes
        // through d18 (and would hit a closed door in reality).
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30));
        let static_res = static_shortest_path(&g, &q, &cfg);
        assert!(static_res.path.is_some());
        let syn = SynEngine::new(g.clone(), cfg);
        assert!(syn.query(&q).path.is_none());
        // The static path is invalid under ITSPQ validation at 23:30.
        let path = static_res.path.unwrap();
        assert!(validate_path(&ex.space, &path, q.time, cfg.velocity).is_err());
    }

    #[test]
    fn static_path_takes_private_shortcut_never() {
        // Privacy rules still apply to the static baseline.
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(12, 0));
        let res = static_shortest_path(&g, &q, &ItspqConfig::default());
        let doors: Vec<_> = res.path.unwrap().doors().collect();
        assert_eq!(doors, vec![ex.d(18)]);
    }

    #[test]
    fn snapshot_can_differ_from_itspq() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let cfg = ItspqConfig::default();
        // At 12:00 everything is open: snapshot == ITSPQ.
        let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(12, 0));
        let snap = snapshot_shortest_path(&g, &q, &cfg).path.unwrap();
        let syn = SynEngine::new(g.clone(), cfg).query(&q).path.unwrap();
        assert_eq!(
            snap.doors().collect::<Vec<_>>(),
            syn.doors().collect::<Vec<_>>()
        );
    }

    #[test]
    fn door_distances_from_p3() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let dist = door_distances(&g, &ex.p3);
        // Directly reachable doors of v13.
        assert!((dist[ex.d(15).index()] - 3.0).abs() < 1e-9);
        assert!((dist[ex.d(18).index()] - 1.0).abs() < 1e-9);
        // d16 is NOT reachable via private v15; it must go around through v14.
        let via_v14 =
            dist[ex.d(18).index()] + ex.space.door_to_door(ex.v(14), ex.d(18), ex.d(16)).unwrap();
        assert!((dist[ex.d(16).index()] - via_v14).abs() < 1e-9);
        // All doors reachable in the example.
        assert!(dist.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn exhaustive_matches_engine_on_example() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let cfg = ItspqConfig::default();
        let syn = SynEngine::new(g.clone(), cfg);
        for (h, m) in [(9, 0), (12, 0), (23, 30), (5, 30)] {
            let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(h, m));
            let oracle = exhaustive_shortest(&g, &q, &cfg, 12);
            let engine = syn.query(&q).path;
            match (oracle, engine) {
                (None, None) => {}
                (Some(o), Some(e)) => {
                    assert!(
                        (o.length - e.length).abs() < 1e-6,
                        "oracle {} vs engine {} at {h}:{m}",
                        o.length,
                        e.length
                    );
                }
                (o, e) => panic!(
                    "oracle/engine disagree at {h}:{m}: {:?} vs {:?}",
                    o.map(|p| p.length),
                    e.map(|p| p.length)
                ),
            }
        }
    }

    #[test]
    fn exhaustive_respects_depth_bound() {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        let cfg = ItspqConfig::default();
        let q = Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0));
        // p1 (v3) to p2 (v10) needs at least 3 doors; a depth bound of 1
        // must find nothing.
        assert!(exhaustive_shortest(&g, &q, &cfg, 1).is_none());
        assert!(exhaustive_shortest(&g, &q, &cfg, 12).is_some());
    }
}
