//! Algorithm 1 — `ITSPQ_ITGraph`: the shared search framework.
//!
//! The framework is a Dijkstra-style expansion over doors using each
//! partition's distance matrix for intra-partition hops, parameterised by a
//! [`TvChecker`]: the synchronous check of Algorithm 2 (ITG/S) or the
//! asynchronous reduced-graph check of Algorithm 4 (ITG/A).
//!
//! Two deliberate deviations from the paper's pseudo-code, neither affecting
//! results (see `DESIGN.md` §6):
//!
//! * doors are inserted into the priority queue lazily instead of enheaping
//!   every door with distance ∞ upfront (lines 2–5) — the "pop ∞ ⇒ no route"
//!   exit becomes "queue exhausted ⇒ no route";
//! * line 30's `if TV_Check(…) then continue` is read as *skip the door when
//!   the check fails*, the only reading under which Example 1 returns the
//!   paper's answer.

use indoor_space::{DoorId, IndoorPoint, IndoorSpace, PartitionId};
use indoor_time::{TimeOfDay, Timestamp};

use crate::heap::{MinHeap, Node};
use crate::{DoorHop, ExpandPolicy, ItGraph, ItspqConfig, Path, Query, SearchStats};

/// The pluggable temporal-variation strategy: a topology view plus `TV_Check`.
pub(crate) trait TvChecker {
    /// The doors through which partition `v` can currently be left.
    fn leaveable(&self, v: PartitionId) -> &[DoorId];

    /// `TV_Check(d, dist, t)`: whether door `d`, reached after walking `dist`
    /// metres from `ps`, is usable. ITG/A may refresh its reduced view here.
    fn check(&mut self, d: DoorId, dist: f64, stats: &mut SearchStats) -> bool;

    /// Final accounting hook (reduced-graph bytes for ITG/A).
    fn account(&self, stats: &mut SearchStats);
}

/// Predecessor of a relaxed door.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PrevEntry {
    /// Partition crossed to reach the door.
    pub(crate) via: PartitionId,
    /// Previous door index, or `None` when coming directly from `ps`.
    pub(crate) from: Option<u32>,
}

/// One recorded *door-level* decision of a multi-target sweep, in execution
/// order.
///
/// The trace is the *lead* query's complete relaxation log. `crate::replay`
/// computes a group member's own label fixpoint from it — substituting only
/// the member-specific inputs (source legs, departure time) — and then
/// certifies that the member's own search would have attempted exactly the
/// recorded relaxation set; any uncertifiable divergence aborts the replay
/// and the member falls back to per-query execution. Door events are shared
/// by every member of the group; the per-target events live in positioned
/// side streams (see [`TargetEvent`]) so a member's replay never scans
/// another member's relaxations.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DoorEvent {
    /// A door settled: its non-stale entry left the priority queue (stale
    /// pops decide nothing and are not recorded). The event order is the
    /// lead's settle order, which drives the replay's omission certificate.
    Pop { door: u32 },
    /// A door relaxation attempt (Algorithm 1 lines 29–34) that had a
    /// weight. `from == None` is a source-leg relaxation (`|ps, dj|`), the
    /// only member-specific weight; `[lo, hi)` is the constant-topology
    /// timeline window of the lead's projected arrival
    /// ([`indoor_time::CheckpointSet::timeline_interval`]), `open` the
    /// `TV_Check` verdict, `improved` line 31's comparison. A member whose
    /// own arrival lands inside `[lo, hi)` provably receives the same
    /// verdict without re-running the check.
    Relax {
        door: u32,
        from: Option<u32>,
        via: PartitionId,
        weight: f64,
        lo: f64,
        hi: f64,
        open: bool,
        improved: bool,
    },
    /// The lead had no source→door geodesic, so no relaxation was attempted.
    /// A member that *does* have one would diverge structurally — replay must
    /// verify the absence.
    SourceLegMissing { door: u32 },
}

/// One recorded target-leg relaxation (lines 20–24), in target `k`'s own
/// stream: the sweep computed `point_to_door(targets[k], door)` when `door`
/// settled. The geodesic weight is a pure function of the venue geometry and
/// the target point, so member `k`'s replay reuses it bit-for-bit instead of
/// recomputing the leg; a member's replay never touches another target's
/// stream. Doors settled *after* the sweep finalised target `k` carry no
/// event (the sweep skips finalised targets) — replay recomputes those few
/// legs on demand.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TargetEvent {
    pub(crate) door: u32,
    pub(crate) weight: f64,
}

/// The lead's recorded decision log: one shared door stream plus one
/// positioned side stream per group member. All buffers are reused across
/// groups via [`Trace::reset`] — recording steady-states to zero
/// allocations per group.
#[derive(Debug, Default)]
pub(crate) struct Trace {
    pub(crate) doors: Vec<DoorEvent>,
    pub(crate) targets: Vec<Vec<TargetEvent>>,
}

impl Trace {
    /// Clears every stream (keeping capacity) and guarantees at least
    /// `members` target streams exist.
    pub(crate) fn reset(&mut self, members: usize) {
        self.doors.clear();
        for t in &mut self.targets {
            t.clear();
        }
        if self.targets.len() < members {
            self.targets.resize_with(members, Vec::new);
        }
    }
}

/// Decision recorder for [`run_search_targets`]: an optional full decision
/// trace (door-level replay) and/or a running minimum of the margin between
/// each checked arrival and its next checkpoint (interval-coalescing
/// certificate). Both default to off, making the observer free on the
/// per-query path.
#[derive(Debug)]
pub(crate) struct SweepObserver {
    /// Record the full decision trace.
    record: bool,
    /// Track `min_margin_secs` across every `TV_Check` arrival.
    track_margin: bool,
    /// The recorded decision log (empty unless `record`).
    pub(crate) trace: Trace,
    /// Smallest margin (seconds) from any checked arrival to its next
    /// checkpoint; `f64::INFINITY` when no check happened. A member whose
    /// departure lags the lead's by strictly less than this margin (minus a
    /// rounding slack) certifiably makes the identical `TV_Check` decisions.
    /// Poisoned to `0.0` (never certify) if any arrival degenerates to a
    /// non-finite margin.
    pub(crate) min_margin_secs: f64,
}

impl SweepObserver {
    /// An inert observer: records nothing, tracks nothing.
    pub(crate) fn off() -> Self {
        Self::new(false, false)
    }

    pub(crate) fn new(record: bool, track_margin: bool) -> Self {
        Self::with_trace(record, track_margin, Trace::default(), 0)
    }

    /// An observer writing into a caller-owned (typically pooled) trace
    /// buffer, reset for `members` target streams. Reclaim the buffer with
    /// [`SweepObserver::take_trace`] after the sweep.
    pub(crate) fn with_trace(
        record: bool,
        track_margin: bool,
        mut trace: Trace,
        members: usize,
    ) -> Self {
        trace.reset(if record { members } else { 0 });
        SweepObserver {
            record,
            track_margin,
            trace,
            min_margin_secs: f64::INFINITY,
        }
    }

    /// Moves the recorded trace out (leaving an empty one) so a pooled
    /// buffer can return to its scratch slot after the group is scattered.
    pub(crate) fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    #[inline]
    fn active(&self) -> bool {
        self.record || self.track_margin
    }

    #[inline]
    fn push_door(&mut self, ev: DoorEvent) {
        if self.record {
            self.trace.doors.push(ev);
        }
    }

    #[inline]
    fn push_target(&mut self, k: u32, door: u32, weight: f64) {
        if self.record {
            self.trace.targets[k as usize].push(TargetEvent { door, weight });
        }
    }
}

struct SearchState {
    dist: Vec<f64>,
    prev: Vec<Option<PrevEntry>>,
    settled: Vec<bool>,
    visited_parts: Vec<bool>,
    enters_target: Vec<bool>,
    heap: MinHeap,
    scratch: Vec<DoorId>,
    target_dist: f64,
    target_prev: Option<u32>,
    /// Distinct doors whose tentative distance left ∞ — the populated part of
    /// the search state, which is what a map-based implementation (like the
    /// paper's Java one) would actually hold.
    touched_doors: usize,
}

impl SearchState {
    fn new(space: &IndoorSpace, target_partition: PartitionId) -> Self {
        let n = space.num_doors();
        let mut enters_target = vec![false; n];
        for &d in space.p2d_enterable(target_partition) {
            enters_target[d.index()] = true;
        }
        SearchState {
            dist: vec![f64::INFINITY; n],
            prev: vec![None; n],
            settled: vec![false; n],
            visited_parts: vec![false; space.num_partitions()],
            enters_target,
            heap: MinHeap::new(),
            scratch: Vec::new(),
            target_dist: f64::INFINITY,
            target_prev: None,
            touched_doors: 0,
        }
    }

    /// The paper's memory-cost metric counts the *populated* search state —
    /// per touched door a map entry of distance, predecessor and flags — plus
    /// the priority queue at its peak. A dense-array implementation would add
    /// a constant O(|doors|) that hides the day-curve of Figure 7.
    fn search_bytes(&self) -> usize {
        const PER_DOOR_ENTRY: usize = std::mem::size_of::<f64>()
            + std::mem::size_of::<Option<PrevEntry>>()
            + 2 * std::mem::size_of::<u64>(); // map-entry overhead (key + bucket)
        self.touched_doors * PER_DOOR_ENTRY
            + self.heap.peak() * std::mem::size_of::<crate::heap::Entry>()
            + self.scratch.capacity() * std::mem::size_of::<DoorId>()
    }
}

/// Runs Algorithm 1 and reconstructs the path (lines 11–17).
pub(crate) fn run_search<C: TvChecker>(
    graph: &ItGraph,
    query: &Query,
    config: &ItspqConfig,
    checker: &mut C,
) -> (Option<Path>, SearchStats) {
    let space = graph.space();
    let mut stats = SearchStats::default();
    let t0 = query.departure();
    let src_p = query.source.partition;
    let dst_p = query.target.partition;

    // Both endpoints in one partition: the straight segment is valid (no door
    // is crossed) and, partitions being decomposed into near-convex cells,
    // shortest.
    if src_p == dst_p {
        let length = query.source.position.distance(query.target.position);
        checker.account(&mut stats);
        let path = Path {
            source: query.source,
            target: query.target,
            hops: Vec::new(),
            length,
            departure: t0,
            arrival: t0 + config.velocity.travel_time(length),
        };
        return (Some(path), stats);
    }

    let mut st = SearchState::new(space, dst_p);
    let mut observer = SweepObserver::off();

    // Rule 2: private partitions may be traversed only if they contain ps/pt.
    let allowed = |v: PartitionId| -> bool {
        v == src_p || v == dst_p || space.partition(v).kind.traversable()
    };

    // Source expansion: Algorithm 1 with di = ps, v = P(ps).
    st.visited_parts[src_p.index()] = true;
    stats.partitions_expanded += 1;
    expand_partition(
        space,
        config,
        &query.source,
        checker,
        &mut st,
        &mut stats,
        src_p,
        None,
        0.0,
        &allowed,
        t0,
        &mut observer,
    );

    while let Some(entry) = st.heap.pop() {
        stats.heap_pops += 1;
        let di = match entry.node {
            Node::Target(_) => {
                if entry.dist > st.target_dist {
                    continue; // stale: the target improved after this push
                }
                // `reconstruct` is `None` only on a broken predecessor
                // invariant; degrade to "no such routes" rather than panic.
                let path = reconstruct(
                    &query.source,
                    &query.target,
                    config,
                    &st.dist,
                    &st.prev,
                    st.target_dist,
                    st.target_prev,
                    t0,
                );
                stats.search_bytes = st.search_bytes();
                checker.account(&mut stats);
                return (path, stats);
            }
            Node::Door(i) => i,
        };
        if st.settled[di as usize] {
            continue; // stale heap entry
        }
        st.settled[di as usize] = true;
        stats.doors_settled += 1;
        let door = DoorId(di);
        let d_di = st.dist[di as usize];

        // Lines 20–24: a door that can enter P(pt) relaxes pt directly …
        if st.enters_target[di as usize] {
            if let Some(pd) = space.point_to_door(&query.target, door) {
                let cand = d_di + pd;
                if cand < st.target_dist {
                    st.target_dist = cand;
                    st.target_prev = Some(di);
                    st.heap.push(cand, Node::Target(0));
                    stats.heap_pushes += 1;
                }
            }
            // … and, in the paper's reading, is not expanded any further.
            if config.expand == ExpandPolicy::PaperPruned {
                continue;
            }
        }

        // Lines 18–19 / full relaxation: choose partitions to expand.
        let came_from = st.prev[di as usize].map(|p| p.via);
        for vi in 0..space.d2p_enterable(door).len() {
            let v = space.d2p_enterable(door)[vi];
            if !allowed(v) {
                continue;
            }
            match config.expand {
                ExpandPolicy::PaperPruned => {
                    if st.visited_parts[v.index()] {
                        continue;
                    }
                    st.visited_parts[v.index()] = true;
                }
                ExpandPolicy::FullRelax => {
                    // Never expand back into the partition the door was
                    // reached through: distance-wise it cannot help (DM
                    // triangle inequality), and time-wise it would let paths
                    // *touch* a door to burn walking time until another door
                    // opens — waiting in disguise, which the paper's
                    // semantics exclude (footnote 2).
                    if Some(v) == came_from {
                        continue;
                    }
                }
            }
            stats.partitions_expanded += 1;
            expand_partition(
                space,
                config,
                &query.source,
                checker,
                &mut st,
                &mut stats,
                v,
                Some(di),
                d_di,
                &allowed,
                t0,
                &mut observer,
            );
        }
    }

    stats.search_bytes = st.search_bytes();
    checker.account(&mut stats);
    (None, stats) // line 10: "no such routes"
}

/// Lines 25–34: relax every (currently usable) leaveable door of `v`.
#[allow(clippy::too_many_arguments)]
fn expand_partition<C: TvChecker>(
    space: &IndoorSpace,
    config: &ItspqConfig,
    source: &IndoorPoint,
    checker: &mut C,
    st: &mut SearchState,
    stats: &mut SearchStats,
    v: PartitionId,
    from: Option<u32>,
    base_dist: f64,
    allowed: &dyn Fn(PartitionId) -> bool,
    t0: Timestamp,
    observer: &mut SweepObserver,
) {
    // Copy the view's door list: ITG/A's check() may swap the view mid-loop.
    st.scratch.clear();
    st.scratch.extend_from_slice(checker.leaveable(v));
    let mut k = 0;
    while k < st.scratch.len() {
        let dj = st.scratch[k];
        k += 1;
        if Some(dj.index() as u32) == from {
            continue;
        }
        if st.settled[dj.index()] {
            continue; // line 26: only unvisited doors
        }

        // Line 27–28: discard doors whose continuation is a forbidden private
        // partition (doors into P(ps)/P(pt) stay usable).
        if config.expand == ExpandPolicy::PaperPruned {
            let continues = space
                .d2p_enterable(dj)
                .iter()
                .any(|&u| u != v && allowed(u));
            if !continues {
                continue;
            }
        }

        // Line 29: dist_j = dist[di] + DM(v, di, dj)  (or |ps, dj| from ps).
        let weight = match from {
            Some(di) => space.door_to_door(v, DoorId(di), dj),
            None => space.point_to_door(source, dj),
        };
        let Some(weight) = weight else {
            // A missing *source leg* is member-specific state a replay must
            // check (a member with a leg here would relax a door the lead
            // never saw); missing door-to-door weights are venue geometry,
            // identical for every member.
            if from.is_none() {
                observer.push_door(DoorEvent::SourceLegMissing {
                    door: dj.index() as u32,
                });
            }
            continue;
        };
        let cand = base_dist + weight;
        stats.relaxations += 1;

        // Line 30: TV_Check(dj, dist_j, t).
        stats.tv_checks += 1;
        let open = checker.check(dj, cand, stats);
        let improved = open && cand < st.dist[dj.index()];
        if observer.active() {
            let arrival = t0 + config.velocity.travel_time(cand);
            // One interval lookup serves both consumers: `hi - arrival` IS
            // the retiming margin (bit-equal to `margin_to_next`, pinned in
            // indoor-time's tests), and `[lo, hi)` is the window replay
            // admits member arrivals against.
            let (lo, hi) = space.checkpoints().timeline_interval(arrival);
            if observer.track_margin {
                let margin = hi - arrival.seconds();
                if margin.is_finite() {
                    if margin < observer.min_margin_secs {
                        observer.min_margin_secs = margin;
                    }
                } else {
                    // Degenerate arrival (∞/NaN weight): no retime is safe.
                    observer.min_margin_secs = 0.0;
                }
            }
            observer.push_door(DoorEvent::Relax {
                door: dj.index() as u32,
                from,
                via: v,
                weight,
                lo,
                hi,
                open,
                improved,
            });
        }
        if !open {
            stats.tv_rejections += 1;
            continue;
        }

        // Lines 31–34.
        if improved {
            if st.dist[dj.index()].is_infinite() {
                st.touched_doors += 1;
            }
            st.dist[dj.index()] = cand;
            st.prev[dj.index()] = Some(PrevEntry { via: v, from });
            st.heap.push(cand, Node::Door(dj.index() as u32));
            stats.heap_pushes += 1;
            stats.improvements += 1;
        }
    }
}

/// Lines 11–17: walk the `prev` chain back from `pt` and emit hops in order.
///
/// Every relaxed door records a predecessor before entering the heap, so the
/// chain is complete whenever the target has been popped; `None` signals a
/// broken invariant and the caller answers "no such routes" instead of
/// unwinding. Shared verbatim by the single-target search and the
/// multi-target sweep of [`run_search_targets`], so grouped queries assemble
/// their paths through exactly the code their per-query twins use.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reconstruct(
    source: &IndoorPoint,
    target: &IndoorPoint,
    config: &ItspqConfig,
    dist: &[f64],
    prev: &[Option<PrevEntry>],
    target_dist: f64,
    target_prev: Option<u32>,
    t0: Timestamp,
) -> Option<Path> {
    let mut doors_rev: Vec<u32> = Vec::new();
    let mut cur = target_prev?;
    loop {
        doors_rev.push(cur);
        match prev[cur as usize]?.from {
            Some(p) => cur = p,
            None => break,
        }
    }
    doors_rev.reverse();

    let mut hops = Vec::with_capacity(doors_rev.len());
    for &di in &doors_rev {
        let p = prev[di as usize]?;
        let d = dist[di as usize];
        hops.push(DoorHop {
            door: DoorId(di),
            via_partition: p.via,
            distance: d,
            arrival: t0 + config.velocity.travel_time(d),
        });
    }

    Some(Path {
        source: *source,
        target: *target,
        hops,
        length: target_dist,
        departure: t0,
        arrival: t0 + config.velocity.travel_time(target_dist),
    })
}

/// The straight-segment answer for a target sharing the source's partition —
/// the exact short-circuit `run_search` takes before any expansion.
pub(crate) fn direct_path(
    source: &IndoorPoint,
    target: &IndoorPoint,
    config: &ItspqConfig,
    t0: Timestamp,
) -> Path {
    let length = source.position.distance(target.position);
    Path {
        source: *source,
        target: *target,
        hops: Vec::new(),
        length,
        departure: t0,
        arrival: t0 + config.velocity.travel_time(length),
    }
}

/// One shared Dijkstra frontier answering a whole group of targets: the
/// multi-target generalisation of Algorithm 1 that `VenueServer`'s shared
/// batch execution and [`crate::one_to_many`] run one group at a time.
///
/// Under [`ExpandPolicy::FullRelax`] the door relaxations of Algorithm 1 do
/// not depend on the target at all (the virtual target node is only ever
/// *relaxed from* settled doors, never expanded), so a single sweep can carry
/// any number of targets and each finalises — at its heap pop, exactly as in
/// its own search — with byte-identical distance, predecessor chain and
/// checker-state history to the per-query run. The sweep ends when every
/// target has popped or the frontier is exhausted (`None` = "no such
/// routes").
///
/// Preconditions, enforced by callers (the server's batch planner and
/// `one_to_many`) and debug-asserted here, because each would reintroduce a
/// target-dependence that breaks the sharing argument:
///
/// * `config.expand` is `FullRelax` — `PaperPruned` prunes doors that enter
///   the target's partition, differently per target;
/// * every target's partition is traversable or is the source's own —
///   Rule 2 exempts `P(pt)`, so a *private* target partition enlarges the
///   traversable set for that query alone.
///
/// Targets sharing the source's partition are answered with the straight
/// segment, as in the single-target short-circuit.
pub(crate) fn run_search_targets<C: TvChecker>(
    graph: &ItGraph,
    source: &IndoorPoint,
    time: TimeOfDay,
    targets: &[IndoorPoint],
    config: &ItspqConfig,
    checker: &mut C,
    observer: &mut SweepObserver,
) -> (Vec<Option<Path>>, SearchStats) {
    debug_assert!(
        config.expand == ExpandPolicy::FullRelax,
        "shared execution requires FullRelax (target-independent relaxations)"
    );
    let space = graph.space();
    let mut stats = SearchStats::default();
    let t0 = Timestamp::from_time_of_day(time);
    let src_p = source.partition;

    let mut paths: Vec<Option<Path>> = vec![None; targets.len()];
    let mut target_dist = vec![f64::INFINITY; targets.len()];
    let mut target_prev: Vec<Option<u32>> = vec![None; targets.len()];
    let mut done = vec![false; targets.len()];
    let mut remaining = 0usize;

    // Doors that can enter each pending target's partition, door-indexed.
    let mut enters: Vec<Vec<u32>> = vec![Vec::new(); space.num_doors()];
    for (k, target) in targets.iter().enumerate() {
        if target.partition == src_p {
            paths[k] = Some(direct_path(source, target, config, t0));
            done[k] = true;
            continue;
        }
        debug_assert!(
            space.partition(target.partition).kind.traversable(),
            "shared execution requires traversable target partitions"
        );
        remaining += 1;
        for &d in space.p2d_enterable(target.partition) {
            enters[d.index()].push(k as u32);
        }
    }
    if remaining == 0 {
        checker.account(&mut stats);
        return (paths, stats);
    }

    // The single-target state, reused so `expand_partition` is shared
    // verbatim; its per-target fields (`enters_target`, `target_dist`,
    // `target_prev`) stay untouched — this sweep keeps its own per-target
    // arrays instead.
    let mut st = SearchState::new(space, src_p);

    // Rule 2 under the preconditions: every partition a route may traverse is
    // traversable or the source's own (target partitions are traversable).
    let allowed = |v: PartitionId| -> bool { v == src_p || space.partition(v).kind.traversable() };

    st.visited_parts[src_p.index()] = true;
    stats.partitions_expanded += 1;
    expand_partition(
        space, config, source, checker, &mut st, &mut stats, src_p, None, 0.0, &allowed, t0,
        observer,
    );

    while let Some(entry) = st.heap.pop() {
        stats.heap_pops += 1;
        if let Node::Door(i) = entry.node {
            if !st.settled[i as usize] {
                observer.push_door(DoorEvent::Pop { door: i });
            }
        }
        let di = match entry.node {
            Node::Target(k) => {
                let k = k as usize;
                if done[k] || entry.dist > target_dist[k] {
                    continue; // finalised already, or stale after an improvement
                }
                paths[k] = reconstruct(
                    source,
                    &targets[k],
                    config,
                    &st.dist,
                    &st.prev,
                    target_dist[k],
                    target_prev[k],
                    t0,
                );
                done[k] = true;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
                continue;
            }
            Node::Door(i) => i,
        };
        if st.settled[di as usize] {
            continue; // stale heap entry
        }
        st.settled[di as usize] = true;
        stats.doors_settled += 1;
        let door = DoorId(di);
        let d_di = st.dist[di as usize];

        // Lines 20–24 per pending target: a settled door entering P(pt)
        // relaxes that target directly.
        for &k in &enters[di as usize] {
            let k = k as usize;
            if done[k] {
                continue;
            }
            if let Some(pd) = space.point_to_door(&targets[k], door) {
                let cand = d_di + pd;
                let improved = cand < target_dist[k];
                observer.push_target(k as u32, di, pd);
                if improved {
                    target_dist[k] = cand;
                    target_prev[k] = Some(di);
                    st.heap.push(cand, Node::Target(k as u32));
                    stats.heap_pushes += 1;
                }
            }
        }

        // Full relaxation: expand every enterable partition except the one
        // the door was reached through (see `run_search` for why).
        let came_from = st.prev[di as usize].map(|p| p.via);
        for vi in 0..space.d2p_enterable(door).len() {
            let v = space.d2p_enterable(door)[vi];
            if !allowed(v) || Some(v) == came_from {
                continue;
            }
            stats.partitions_expanded += 1;
            expand_partition(
                space,
                config,
                source,
                checker,
                &mut st,
                &mut stats,
                v,
                Some(di),
                d_di,
                &allowed,
                t0,
                observer,
            );
        }
    }

    stats.search_bytes = st.search_bytes() + targets.len() * (std::mem::size_of::<f64>() + 2 + 8);
    checker.account(&mut stats);
    (paths, stats)
}
