//! Extension: single-source valid-distance maps.
//!
//! Evacuation planning, coverage analysis and facility dashboards need "how
//! far is everything from here, *right now*" rather than a single target:
//! this module runs the ITSPQ expansion (ITG/S semantics, full relaxation)
//! from one point and reports the valid shortest distance to **every door**
//! and to **every partition** (through its nearest open, enterable door).
//!
//! The same two rules apply per relaxation: doors must be open at the
//! arrival time; private partitions are traversed only if they contain the
//! source (every partition may still be *entered* as a final destination —
//! mirroring `pt`'s exemption, any partition can be someone's target).

use indoor_space::{DoorId, IndoorPoint, PartitionId};
use indoor_time::{TimeOfDay, Timestamp};

use crate::heap::{MinHeap, Node};
use crate::ord::min_dist;
use crate::{ItGraph, ItspqConfig};

/// The result of a one-to-many sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityMap {
    /// The source point.
    pub source: IndoorPoint,
    /// Departure time.
    pub time: TimeOfDay,
    /// Valid shortest distance to each door (`f64::INFINITY` if unreachable
    /// under the temporal rules).
    pub door_distance: Vec<f64>,
    /// Valid shortest distance to each partition: the best
    /// `door_distance[d]` over its open enterable doors (the source's own
    /// partition has distance 0).
    pub partition_distance: Vec<f64>,
}

impl ReachabilityMap {
    /// Distance to a door.
    #[must_use]
    pub fn to_door(&self, d: DoorId) -> f64 {
        self.door_distance[d.index()]
    }

    /// Distance to a partition (to its nearest valid entry door).
    #[must_use]
    pub fn to_partition(&self, p: PartitionId) -> f64 {
        self.partition_distance[p.index()]
    }

    /// Number of partitions currently reachable.
    #[must_use]
    pub fn reachable_partitions(&self) -> usize {
        self.partition_distance
            .iter()
            .filter(|d| d.is_finite())
            .count()
    }
}

/// Computes valid shortest distances from `source` at `time` to every door
/// and partition.
#[must_use]
pub fn reachability(
    graph: &ItGraph,
    source: IndoorPoint,
    time: TimeOfDay,
    config: &ItspqConfig,
) -> ReachabilityMap {
    let space = graph.space();
    let n = space.num_doors();
    let t0 = Timestamp::from_time_of_day(time);

    let mut dist = vec![f64::INFINITY; n];
    let mut came_from: Vec<Option<PartitionId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = MinHeap::new();

    let traversable =
        |v: PartitionId| -> bool { v == source.partition || space.partition(v).kind.traversable() };

    {
        let v = source.partition;
        for &dj in space.p2d_leaveable(v) {
            if let Some(w) = space.point_to_door(&source, dj) {
                let tarr = t0 + config.velocity.travel_time(w);
                if space.door(dj).atis.is_open_at(tarr) && w < dist[dj.index()] {
                    dist[dj.index()] = w;
                    came_from[dj.index()] = Some(v);
                    heap.push(w, Node::Door(dj.index() as u32));
                }
            }
        }
    }

    while let Some(entry) = heap.pop() {
        let Node::Door(di) = entry.node else { continue };
        if settled[di as usize] {
            continue;
        }
        settled[di as usize] = true;
        let door = DoorId(di);
        let base = dist[di as usize];
        for vi in 0..space.d2p_enterable(door).len() {
            let v = space.d2p_enterable(door)[vi];
            // Expansion continues only through traversable partitions, and
            // never straight back through the entry side.
            if Some(v) == came_from[di as usize] || !traversable(v) {
                continue;
            }
            for &dj in space.p2d_leaveable(v) {
                if dj.index() as u32 == di || settled[dj.index()] {
                    continue;
                }
                let Some(w) = space.door_to_door(v, door, dj) else {
                    continue;
                };
                let cand = base + w;
                let tarr = t0 + config.velocity.travel_time(cand);
                if !space.door(dj).atis.is_open_at(tarr) {
                    continue;
                }
                if cand < dist[dj.index()] {
                    dist[dj.index()] = cand;
                    came_from[dj.index()] = Some(v);
                    heap.push(cand, Node::Door(dj.index() as u32));
                }
            }
        }
    }

    // Partition distances: best open enterable door.
    let mut partition_distance = vec![f64::INFINITY; space.num_partitions()];
    partition_distance[source.partition.index()] = 0.0;
    for (pi, pd) in partition_distance.iter_mut().enumerate() {
        if pi == source.partition.index() {
            continue;
        }
        let p = PartitionId::from_index(pi);
        for &d in space.p2d_enterable(p) {
            *pd = min_dist(*pd, dist[d.index()]);
        }
    }

    ReachabilityMap {
        source,
        time,
        door_distance: dist,
        partition_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItspqConfig, Query, SynEngine};
    use indoor_space::paper_example;

    fn setup() -> (paper_example::PaperExample, ItGraph) {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        (ex, g)
    }

    #[test]
    fn noon_reaches_everything_reachable() {
        let (ex, g) = setup();
        let map = reachability(&g, ex.p1, TimeOfDay::hm(12, 0), &ItspqConfig::default());
        // All 18 partitions enterable at noon (v0 outdoors via d14 too).
        assert_eq!(map.reachable_partitions(), 18);
        // Source partition is at distance zero.
        assert_eq!(map.to_partition(ex.p1.partition), 0.0);
    }

    #[test]
    fn night_reaches_almost_nothing() {
        let (ex, g) = setup();
        // At 4:00 most Table I doors are closed.
        let map = reachability(&g, ex.p3, TimeOfDay::hm(4, 0), &ItspqConfig::default());
        assert!(map.reachable_partitions() < 8);
        // d18 is open [0:00,23:00): v14 is reachable.
        assert!(map.to_partition(ex.v(14)).is_finite());
        // d15 ([8:00,16:00)) is closed: v15 is not.
        assert!(map.to_partition(ex.v(15)).is_infinite());
    }

    #[test]
    fn agrees_with_single_target_queries() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let map = reachability(&g, ex.p1, TimeOfDay::hm(12, 0), &cfg);
        let engine = SynEngine::new(g.clone(), cfg);
        // For each named point, the point-to-point query must cost the
        // distance to some enterable door of its partition plus the final
        // leg; in particular it is lower-bounded by the partition distance.
        for target in [ex.p2, ex.p3, ex.p4] {
            let q = Query::new(ex.p1, target, TimeOfDay::hm(12, 0));
            let path = engine.query(&q).path.expect("reachable at noon");
            assert!(
                path.length >= map.to_partition(target.partition) - 1e-9,
                "path {} shorter than partition bound {}",
                path.length,
                map.to_partition(target.partition)
            );
            // And the last door's map distance matches the hop bookkeeping.
            if let Some(last) = path.hops.last() {
                assert!(map.to_door(last.door) <= last.distance + 1e-9);
            }
        }
    }

    #[test]
    fn private_partitions_are_enterable_but_not_traversable() {
        let (ex, g) = setup();
        let map = reachability(&g, ex.p3, TimeOfDay::hm(12, 0), &ItspqConfig::default());
        // v15 (private) is enterable through d15 at noon …
        assert!(map.to_partition(ex.v(15)).is_finite());
        // … but the sweep never goes through it: d16's only access from p3's
        // side is via v14 (through d18), which is longer than via v15 would
        // have been.
        let via_v14 =
            map.to_door(ex.d(18)) + ex.space.door_to_door(ex.v(14), ex.d(18), ex.d(16)).unwrap();
        assert!((map.to_door(ex.d(16)) - via_v14).abs() < 1e-9);
    }
}
