//! Extension: single-source valid-distance maps.
//!
//! Evacuation planning, coverage analysis and facility dashboards need "how
//! far is everything from here, *right now*" rather than a single target:
//! this module runs the ITSPQ expansion (ITG/S semantics, full relaxation)
//! from one point and reports the valid shortest distance to **every door**
//! and to **every partition** (through its nearest open, enterable door).
//!
//! The same two rules apply per relaxation: doors must be open at the
//! arrival time; private partitions are traversed only if they contain the
//! source (every partition may still be *entered* as a final destination —
//! mirroring `pt`'s exemption, any partition can be someone's target).

use indoor_space::{DoorId, IndoorPoint, PartitionId};
use indoor_time::{TimeOfDay, Timestamp};

use crate::engine_syn::SynChecker;
use crate::framework::{run_search, run_search_targets, SweepObserver};
use crate::heap::{MinHeap, Node};
use crate::ord::min_dist;
use crate::{ExpandPolicy, ItGraph, ItspqConfig, Path, SearchStats};

/// The result of a one-to-many sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachabilityMap {
    /// The source point.
    pub source: IndoorPoint,
    /// Departure time.
    pub time: TimeOfDay,
    /// Valid shortest distance to each door (`f64::INFINITY` if unreachable
    /// under the temporal rules).
    pub door_distance: Vec<f64>,
    /// Valid shortest distance to each partition: the best
    /// `door_distance[d]` over its open enterable doors (the source's own
    /// partition has distance 0).
    pub partition_distance: Vec<f64>,
}

impl ReachabilityMap {
    /// Distance to a door.
    #[must_use]
    pub fn to_door(&self, d: DoorId) -> f64 {
        self.door_distance[d.index()]
    }

    /// Distance to a partition (to its nearest valid entry door).
    #[must_use]
    pub fn to_partition(&self, p: PartitionId) -> f64 {
        self.partition_distance[p.index()]
    }

    /// Number of partitions currently reachable.
    #[must_use]
    pub fn reachable_partitions(&self) -> usize {
        self.partition_distance
            .iter()
            .filter(|d| d.is_finite())
            .count()
    }
}

/// The result of a one-to-many *path* sweep: full routes to a set of targets.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetPaths {
    /// The source point.
    pub source: IndoorPoint,
    /// Departure time.
    pub time: TimeOfDay,
    /// One slot per requested target, in input order: the valid shortest
    /// path, or `None` for "no such routes".
    pub paths: Vec<Option<Path>>,
    /// Statistics of the single shared search that answered every target.
    pub stats: SearchStats,
}

impl TargetPaths {
    /// Number of targets that received a path.
    #[must_use]
    pub fn reached(&self) -> usize {
        self.paths.iter().filter(|p| p.is_some()).count()
    }
}

/// Computes full valid shortest *paths* from `source` at `time` to each of
/// `targets` with one shared search frontier (ITG/S semantics, full
/// relaxation — `config.expand` is ignored, exactly as in [`reachability`]).
///
/// This is the group primitive behind the server's shared batch execution:
/// each returned path is byte-identical to the one a per-target
/// [`crate::SynEngine::query`] under [`ItspqConfig::full_relax`] would
/// produce, because door relaxations under full relaxation do not depend on
/// the target set.
///
/// Targets in non-traversable partitions other than the source's own are
/// answered per-target (Rule 2 exempts each query's own `pt`, which a shared
/// frontier cannot honour for one target without corrupting the others).
#[must_use]
pub fn paths_to_many(
    graph: &ItGraph,
    source: IndoorPoint,
    time: TimeOfDay,
    targets: &[IndoorPoint],
    config: &ItspqConfig,
) -> TargetPaths {
    let space = graph.space();
    let config = config.with_expand(ExpandPolicy::FullRelax);
    let t0 = Timestamp::from_time_of_day(time);

    // Split off targets the shared frontier cannot carry (private/outdoor
    // partitions away from the source): they run as singleton searches.
    let sharable: Vec<IndoorPoint> = targets
        .iter()
        .copied()
        .filter(|t| {
            t.partition == source.partition || space.partition(t.partition).kind.traversable()
        })
        .collect();

    let mut checker = SynChecker {
        space,
        velocity: config.velocity,
        t0,
    };
    let (mut shared_paths, mut stats) = run_search_targets(
        graph,
        &source,
        time,
        &sharable,
        &config,
        &mut checker,
        &mut SweepObserver::off(),
    );

    let mut paths = Vec::with_capacity(targets.len());
    let mut shared_iter = 0usize;
    for target in targets {
        if target.partition == source.partition
            || space.partition(target.partition).kind.traversable()
        {
            paths.push(shared_paths[shared_iter].take());
            shared_iter += 1;
        } else {
            let mut single = SynChecker {
                space,
                velocity: config.velocity,
                t0,
            };
            let q = crate::Query::new(source, *target, time);
            let (path, s) = run_search(graph, &q, &config, &mut single);
            stats.merge(&s);
            paths.push(path);
        }
    }

    TargetPaths {
        source,
        time,
        paths,
        stats,
    }
}

/// Computes valid shortest distances from `source` at `time` to every door
/// and partition.
#[must_use]
pub fn reachability(
    graph: &ItGraph,
    source: IndoorPoint,
    time: TimeOfDay,
    config: &ItspqConfig,
) -> ReachabilityMap {
    let space = graph.space();
    let n = space.num_doors();
    let t0 = Timestamp::from_time_of_day(time);

    let mut dist = vec![f64::INFINITY; n];
    let mut came_from: Vec<Option<PartitionId>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut heap = MinHeap::new();

    let traversable =
        |v: PartitionId| -> bool { v == source.partition || space.partition(v).kind.traversable() };

    {
        let v = source.partition;
        for &dj in space.p2d_leaveable(v) {
            if let Some(w) = space.point_to_door(&source, dj) {
                let tarr = t0 + config.velocity.travel_time(w);
                if space.door(dj).atis.is_open_at(tarr) && w < dist[dj.index()] {
                    dist[dj.index()] = w;
                    came_from[dj.index()] = Some(v);
                    heap.push(w, Node::Door(dj.index() as u32));
                }
            }
        }
    }

    while let Some(entry) = heap.pop() {
        let Node::Door(di) = entry.node else { continue };
        if settled[di as usize] {
            continue;
        }
        settled[di as usize] = true;
        let door = DoorId(di);
        let base = dist[di as usize];
        for vi in 0..space.d2p_enterable(door).len() {
            let v = space.d2p_enterable(door)[vi];
            // Expansion continues only through traversable partitions, and
            // never straight back through the entry side.
            if Some(v) == came_from[di as usize] || !traversable(v) {
                continue;
            }
            for &dj in space.p2d_leaveable(v) {
                if dj.index() as u32 == di || settled[dj.index()] {
                    continue;
                }
                let Some(w) = space.door_to_door(v, door, dj) else {
                    continue;
                };
                let cand = base + w;
                let tarr = t0 + config.velocity.travel_time(cand);
                if !space.door(dj).atis.is_open_at(tarr) {
                    continue;
                }
                if cand < dist[dj.index()] {
                    dist[dj.index()] = cand;
                    came_from[dj.index()] = Some(v);
                    heap.push(cand, Node::Door(dj.index() as u32));
                }
            }
        }
    }

    // Partition distances: best open enterable door.
    let mut partition_distance = vec![f64::INFINITY; space.num_partitions()];
    partition_distance[source.partition.index()] = 0.0;
    for (pi, pd) in partition_distance.iter_mut().enumerate() {
        if pi == source.partition.index() {
            continue;
        }
        let p = PartitionId::from_index(pi);
        for &d in space.p2d_enterable(p) {
            *pd = min_dist(*pd, dist[d.index()]);
        }
    }

    ReachabilityMap {
        source,
        time,
        door_distance: dist,
        partition_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ItspqConfig, Query, SynEngine};
    use indoor_space::paper_example;

    fn setup() -> (paper_example::PaperExample, ItGraph) {
        let ex = paper_example::build();
        let g = ItGraph::new(ex.space.clone());
        (ex, g)
    }

    #[test]
    fn noon_reaches_everything_reachable() {
        let (ex, g) = setup();
        let map = reachability(&g, ex.p1, TimeOfDay::hm(12, 0), &ItspqConfig::default());
        // All 18 partitions enterable at noon (v0 outdoors via d14 too).
        assert_eq!(map.reachable_partitions(), 18);
        // Source partition is at distance zero.
        assert_eq!(map.to_partition(ex.p1.partition), 0.0);
    }

    #[test]
    fn night_reaches_almost_nothing() {
        let (ex, g) = setup();
        // At 4:00 most Table I doors are closed.
        let map = reachability(&g, ex.p3, TimeOfDay::hm(4, 0), &ItspqConfig::default());
        assert!(map.reachable_partitions() < 8);
        // d18 is open [0:00,23:00): v14 is reachable.
        assert!(map.to_partition(ex.v(14)).is_finite());
        // d15 ([8:00,16:00)) is closed: v15 is not.
        assert!(map.to_partition(ex.v(15)).is_infinite());
    }

    #[test]
    fn agrees_with_single_target_queries() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let map = reachability(&g, ex.p1, TimeOfDay::hm(12, 0), &cfg);
        let engine = SynEngine::new(g.clone(), cfg);
        // For each named point, the point-to-point query must cost the
        // distance to some enterable door of its partition plus the final
        // leg; in particular it is lower-bounded by the partition distance.
        for target in [ex.p2, ex.p3, ex.p4] {
            let q = Query::new(ex.p1, target, TimeOfDay::hm(12, 0));
            let path = engine.query(&q).path.expect("reachable at noon");
            assert!(
                path.length >= map.to_partition(target.partition) - 1e-9,
                "path {} shorter than partition bound {}",
                path.length,
                map.to_partition(target.partition)
            );
            // And the last door's map distance matches the hop bookkeeping.
            if let Some(last) = path.hops.last() {
                assert!(map.to_door(last.door) <= last.distance + 1e-9);
            }
        }
    }

    #[test]
    fn paths_to_many_singleton_group_matches_engine_exactly() {
        // The planner demotes 1-member groups to per-query execution; the
        // shared primitive must nonetheless agree on them byte for byte.
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let noon = TimeOfDay::hm(12, 0);
        let tp = paths_to_many(&g, ex.p1, noon, &[ex.p4], &cfg);
        let single = SynEngine::new(g.clone(), cfg).query(&Query::new(ex.p1, ex.p4, noon));
        assert_eq!(tp.paths[0], single.path);
        assert_eq!(tp.reached(), 1);
    }

    #[test]
    fn paths_to_many_sealed_source_reaches_only_its_own_partition() {
        // v1's single door d1 is closed at 4:00: no frontier ever leaves the
        // source partition, but a same-partition target crosses no door.
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let src = indoor_space::IndoorPoint::new(ex.v(1), indoor_geom::Point::new(5.0, 35.0));
        let roommate = indoor_space::IndoorPoint::new(ex.v(1), indoor_geom::Point::new(6.0, 35.0));
        let tp = paths_to_many(
            &g,
            src,
            TimeOfDay::hm(4, 0),
            &[ex.p3, ex.p4, roommate],
            &cfg,
        );
        assert!(tp.paths[0].is_none());
        assert!(tp.paths[1].is_none());
        let direct = tp.paths[2].as_ref().expect("no door crossed");
        assert!(direct.hops.is_empty());
        assert_eq!(tp.reached(), 1);
    }

    #[test]
    fn paths_to_many_all_targets_unreachable_is_all_none() {
        // At 23:30 d18 is closed and p4 cannot be reached from p3 (the
        // paper's Example 1 night case), whichever way it is asked for.
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let tp = paths_to_many(&g, ex.p3, TimeOfDay::hm(23, 30), &[ex.p4, ex.p4], &cfg);
        assert_eq!(tp.reached(), 0);
        assert!(tp.paths.iter().all(Option::is_none));
    }

    #[test]
    fn paths_to_many_duplicate_pairs_answer_identically() {
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let tp = paths_to_many(&g, ex.p3, TimeOfDay::hm(9, 0), &[ex.p4, ex.p2, ex.p4], &cfg);
        assert!(tp.paths[0].is_some());
        assert_eq!(tp.paths[0], tp.paths[2]);
    }

    #[test]
    fn paths_to_many_private_target_falls_back_per_target() {
        // A private target partition enlarges Rule 2's traversable set for
        // that query alone, so it cannot ride the shared frontier — the
        // fallback must still answer it exactly like a point query.
        let (ex, g) = setup();
        let cfg = ItspqConfig::full_relax();
        let noon = TimeOfDay::hm(12, 0);
        let private = indoor_space::IndoorPoint::new(ex.v(15), indoor_geom::Point::new(5.0, 0.0));
        let tp = paths_to_many(&g, ex.p3, noon, &[private, ex.p4], &cfg);
        let engine = SynEngine::new(g.clone(), cfg);
        assert!(tp.paths[0].is_some());
        assert_eq!(
            tp.paths[0],
            engine.query(&Query::new(ex.p3, private, noon)).path
        );
        assert_eq!(
            tp.paths[1],
            engine.query(&Query::new(ex.p3, ex.p4, noon)).path
        );
        // The fallback search is folded into the sweep's statistics.
        assert!(tp.stats.doors_settled > 0);
    }

    #[test]
    fn private_partitions_are_enterable_but_not_traversable() {
        let (ex, g) = setup();
        let map = reachability(&g, ex.p3, TimeOfDay::hm(12, 0), &ItspqConfig::default());
        // v15 (private) is enterable through d15 at noon …
        assert!(map.to_partition(ex.v(15)).is_finite());
        // … but the sweep never goes through it: d16's only access from p3's
        // side is via v14 (through d18), which is longer than via v15 would
        // have been.
        let via_v14 =
            map.to_door(ex.d(18)) + ex.space.door_to_door(ex.v(14), ex.d(18), ex.d(16)).unwrap();
        assert!((map.to_door(ex.d(16)) - via_v14).abs() < 1e-9);
    }
}
