//! Queries, paths, results and the typed query error.

use std::fmt;

use indoor_space::{DoorId, IndoorPoint, IndoorSpace, PartitionId};
use indoor_time::{DurationSecs, TimeOfDay, Timestamp};
use serde::{Deserialize, Serialize};

use crate::SearchStats;

/// Why a query could not be *evaluated* (as opposed to evaluating to "no
/// such routes", which is a successful [`QueryOutcome::NoRoute`]).
///
/// Engines validate inputs up front so that malformed queries surface as
/// values instead of panicking a search — essential for the server, where a
/// panic would poison a worker thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// A source or target coordinate is NaN or infinite.
    NonFinitePosition {
        /// Which endpoint: `"source"` or `"target"`.
        endpoint: &'static str,
        /// The offending x coordinate.
        x: f64,
        /// The offending y coordinate.
        y: f64,
    },
    /// A source or target names a partition the venue does not have.
    UnknownPartition {
        /// Which endpoint: `"source"` or `"target"`.
        endpoint: &'static str,
        /// The out-of-range partition index.
        index: usize,
        /// Number of partitions in the venue.
        num_partitions: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NonFinitePosition { endpoint, x, y } => {
                write!(f, "{endpoint} position ({x}, {y}) is not finite")
            }
            QueryError::UnknownPartition {
                endpoint,
                index,
                num_partitions,
            } => write!(
                f,
                "{endpoint} partition index {index} out of range (venue has {num_partitions})"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// An `ITSPQ(ps, pt, t)` query: source point, target point, departure time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The start point `ps`.
    pub source: IndoorPoint,
    /// The target point `pt`.
    pub target: IndoorPoint,
    /// The departure clock time `t`.
    pub time: TimeOfDay,
}

impl Query {
    /// Creates a query.
    #[must_use]
    pub fn new(source: IndoorPoint, target: IndoorPoint, time: TimeOfDay) -> Self {
        Query {
            source,
            target,
            time,
        }
    }

    /// The departure instant on the timeline.
    #[must_use]
    pub fn departure(&self) -> Timestamp {
        Timestamp::from_time_of_day(self.time)
    }

    /// Checks that the query is evaluable against `space`: both endpoints
    /// have finite coordinates and name existing partitions.
    ///
    /// # Errors
    /// [`QueryError::NonFinitePosition`] or [`QueryError::UnknownPartition`]
    /// on the first malformed endpoint (source checked before target).
    pub fn validate(&self, space: &IndoorSpace) -> Result<(), QueryError> {
        let n = space.num_partitions();
        for (endpoint, p) in [("source", &self.source), ("target", &self.target)] {
            let (x, y) = (p.position.x, p.position.y);
            if !x.is_finite() || !y.is_finite() {
                return Err(QueryError::NonFinitePosition { endpoint, x, y });
            }
            if p.partition.index() >= n {
                return Err(QueryError::UnknownPartition {
                    endpoint,
                    index: p.partition.index(),
                    num_partitions: n,
                });
            }
        }
        Ok(())
    }
}

/// The exact-sharing key of a query: two queries may be answered by one
/// shared search frontier iff their keys are equal.
///
/// Sharing requires *identity* of the search inputs, not proximity: every
/// door's tentative distance — and through it every arrival time fed to the
/// ATI checks — is a function of the exact source position and departure
/// time, so the key hashes their bit patterns. The checkpoint interval is
/// derived (equal times imply equal intervals) and carried for telemetry:
/// it is what batch dashboards group sharing ratios by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupKey {
    /// The source partition `P(ps)`.
    pub partition: PartitionId,
    /// Bit patterns of the source coordinates (identity, not ε-proximity).
    position_bits: (u64, u64),
    /// Bit pattern of the departure time.
    time_bits: u64,
    /// Checkpoint interval containing the departure time.
    pub interval: usize,
}

impl GroupKey {
    /// The key of `query` on the venue `space`.
    ///
    /// Callers must have validated the query first ([`Query::validate`]):
    /// a NaN coordinate would make two malformed queries share a key while
    /// `NaN != NaN` keeps their searches subtly different.
    #[must_use]
    pub fn of(query: &Query, space: &IndoorSpace) -> Self {
        GroupKey {
            partition: query.source.partition,
            position_bits: (
                query.source.position.x.to_bits(),
                query.source.position.y.to_bits(),
            ),
            time_bits: query.time.seconds().to_bits(),
            interval: space.checkpoints().interval_index(query.time),
        }
    }
}

/// One door crossing of a path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoorHop {
    /// The door crossed.
    pub door: DoorId,
    /// The partition walked through to reach this door.
    pub via_partition: PartitionId,
    /// Cumulative walking distance from `ps` when reaching the door (metres).
    pub distance: f64,
    /// Arrival instant at the door (`t + distance / velocity`).
    pub arrival: Timestamp,
}

/// A valid indoor path `(ps, d_1, …, d_k, pt)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// The start point.
    pub source: IndoorPoint,
    /// The target point.
    pub target: IndoorPoint,
    /// Door crossings in travel order (empty when `ps` and `pt` share a
    /// partition).
    pub hops: Vec<DoorHop>,
    /// Total walking distance in metres.
    pub length: f64,
    /// Departure instant.
    pub departure: Timestamp,
    /// Arrival instant at `pt`.
    pub arrival: Timestamp,
}

impl Path {
    /// The doors crossed, in order.
    pub fn doors(&self) -> impl Iterator<Item = DoorId> + '_ {
        self.hops.iter().map(|h| h.door)
    }

    /// Travel duration.
    #[must_use]
    pub fn duration(&self) -> DurationSecs {
        self.arrival - self.departure
    }

    /// Renders the path in the paper's notation, e.g. `(p_s, d18, p_t)`.
    #[must_use]
    pub fn format_with(&self, space: &IndoorSpace) -> String {
        let mut s = String::from("(ps");
        for hop in &self.hops {
            s.push_str(", ");
            s.push_str(&space.door(hop.door).name);
        }
        s.push_str(", pt)");
        s
    }
}

/// Why a query produced no path (the paper's "no such routes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// A valid shortest path was found.
    Found,
    /// Every candidate was exhausted without reaching `pt`.
    NoRoute,
}

/// The result of one ITSPQ query: the path (if any) plus search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The valid shortest path, or `None` for "no such routes".
    pub path: Option<Path>,
    /// Counters and memory accounting for this search.
    pub stats: SearchStats,
}

impl QueryResult {
    /// The outcome tag.
    #[must_use]
    pub fn outcome(&self) -> QueryOutcome {
        if self.path.is_some() {
            QueryOutcome::Found
        } else {
            QueryOutcome::NoRoute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::Point;

    fn path_fixture() -> Path {
        let src = IndoorPoint::new(PartitionId(13), Point::new(0.0, 0.0));
        let dst = IndoorPoint::new(PartitionId(14), Point::new(10.0, 0.0));
        let dep = Timestamp::from_time_of_day(TimeOfDay::hm(9, 0));
        Path {
            source: src,
            target: dst,
            hops: vec![DoorHop {
                door: DoorId(17),
                via_partition: PartitionId(13),
                distance: 1.0,
                arrival: dep + DurationSecs::new(0.72).unwrap(),
            }],
            length: 12.0,
            departure: dep,
            arrival: dep + DurationSecs::new(8.64).unwrap(),
        }
    }

    #[test]
    fn query_departure_is_clock_time() {
        let q = Query::new(
            IndoorPoint::new(PartitionId(0), Point::ORIGIN),
            IndoorPoint::new(PartitionId(1), Point::ORIGIN),
            TimeOfDay::hm(12, 0),
        );
        assert_eq!(q.departure().seconds(), 12.0 * 3600.0);
    }

    #[test]
    fn path_accessors() {
        let p = path_fixture();
        assert_eq!(p.doors().collect::<Vec<_>>(), vec![DoorId(17)]);
        assert!((p.duration().seconds() - 8.64).abs() < 1e-9);
    }

    #[test]
    fn outcome_tags() {
        let found = QueryResult {
            path: Some(path_fixture()),
            stats: SearchStats::default(),
        };
        assert_eq!(found.outcome(), QueryOutcome::Found);
        let missing = QueryResult {
            path: None,
            stats: SearchStats::default(),
        };
        assert_eq!(missing.outcome(), QueryOutcome::NoRoute);
    }

    #[test]
    fn serde_round_trip() {
        let p = path_fixture();
        let json = serde_json::to_string(&p).unwrap();
        let back: Path = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
