//! Queries, paths and results.

use indoor_space::{DoorId, IndoorPoint, IndoorSpace, PartitionId};
use indoor_time::{DurationSecs, TimeOfDay, Timestamp};
use serde::{Deserialize, Serialize};

use crate::SearchStats;

/// An `ITSPQ(ps, pt, t)` query: source point, target point, departure time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The start point `ps`.
    pub source: IndoorPoint,
    /// The target point `pt`.
    pub target: IndoorPoint,
    /// The departure clock time `t`.
    pub time: TimeOfDay,
}

impl Query {
    /// Creates a query.
    #[must_use]
    pub fn new(source: IndoorPoint, target: IndoorPoint, time: TimeOfDay) -> Self {
        Query {
            source,
            target,
            time,
        }
    }

    /// The departure instant on the timeline.
    #[must_use]
    pub fn departure(&self) -> Timestamp {
        Timestamp::from_time_of_day(self.time)
    }
}

/// One door crossing of a path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoorHop {
    /// The door crossed.
    pub door: DoorId,
    /// The partition walked through to reach this door.
    pub via_partition: PartitionId,
    /// Cumulative walking distance from `ps` when reaching the door (metres).
    pub distance: f64,
    /// Arrival instant at the door (`t + distance / velocity`).
    pub arrival: Timestamp,
}

/// A valid indoor path `(ps, d_1, …, d_k, pt)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// The start point.
    pub source: IndoorPoint,
    /// The target point.
    pub target: IndoorPoint,
    /// Door crossings in travel order (empty when `ps` and `pt` share a
    /// partition).
    pub hops: Vec<DoorHop>,
    /// Total walking distance in metres.
    pub length: f64,
    /// Departure instant.
    pub departure: Timestamp,
    /// Arrival instant at `pt`.
    pub arrival: Timestamp,
}

impl Path {
    /// The doors crossed, in order.
    pub fn doors(&self) -> impl Iterator<Item = DoorId> + '_ {
        self.hops.iter().map(|h| h.door)
    }

    /// Travel duration.
    #[must_use]
    pub fn duration(&self) -> DurationSecs {
        self.arrival - self.departure
    }

    /// Renders the path in the paper's notation, e.g. `(p_s, d18, p_t)`.
    #[must_use]
    pub fn format_with(&self, space: &IndoorSpace) -> String {
        let mut s = String::from("(ps");
        for hop in &self.hops {
            s.push_str(", ");
            s.push_str(&space.door(hop.door).name);
        }
        s.push_str(", pt)");
        s
    }
}

/// Why a query produced no path (the paper's "no such routes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// A valid shortest path was found.
    Found,
    /// Every candidate was exhausted without reaching `pt`.
    NoRoute,
}

/// The result of one ITSPQ query: the path (if any) plus search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The valid shortest path, or `None` for "no such routes".
    pub path: Option<Path>,
    /// Counters and memory accounting for this search.
    pub stats: SearchStats,
}

impl QueryResult {
    /// The outcome tag.
    #[must_use]
    pub fn outcome(&self) -> QueryOutcome {
        if self.path.is_some() {
            QueryOutcome::Found
        } else {
            QueryOutcome::NoRoute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_geom::Point;

    fn path_fixture() -> Path {
        let src = IndoorPoint::new(PartitionId(13), Point::new(0.0, 0.0));
        let dst = IndoorPoint::new(PartitionId(14), Point::new(10.0, 0.0));
        let dep = Timestamp::from_time_of_day(TimeOfDay::hm(9, 0));
        Path {
            source: src,
            target: dst,
            hops: vec![DoorHop {
                door: DoorId(17),
                via_partition: PartitionId(13),
                distance: 1.0,
                arrival: dep + DurationSecs::new(0.72).unwrap(),
            }],
            length: 12.0,
            departure: dep,
            arrival: dep + DurationSecs::new(8.64).unwrap(),
        }
    }

    #[test]
    fn query_departure_is_clock_time() {
        let q = Query::new(
            IndoorPoint::new(PartitionId(0), Point::ORIGIN),
            IndoorPoint::new(PartitionId(1), Point::ORIGIN),
            TimeOfDay::hm(12, 0),
        );
        assert_eq!(q.departure().seconds(), 12.0 * 3600.0);
    }

    #[test]
    fn path_accessors() {
        let p = path_fixture();
        assert_eq!(p.doors().collect::<Vec<_>>(), vec![DoorId(17)]);
        assert!((p.duration().seconds() - 8.64).abs() < 1e-9);
    }

    #[test]
    fn outcome_tags() {
        let found = QueryResult {
            path: Some(path_fixture()),
            stats: SearchStats::default(),
        };
        assert_eq!(found.outcome(), QueryOutcome::Found);
        let missing = QueryResult {
            path: None,
            stats: SearchStats::default(),
        };
        assert_eq!(missing.outcome(), QueryOutcome::NoRoute);
    }

    #[test]
    fn serde_round_trip() {
        let p = path_fixture();
        let json = serde_json::to_string(&p).unwrap();
        let back: Path = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
