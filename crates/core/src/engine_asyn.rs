//! Method ITG/A: Algorithm 1 + the asynchronous check of Algorithm 4 over the
//! reduced time-dependent graphs of Algorithm 3.
//!
//! ITG/A trades the per-relaxation ATI lookups of ITG/S for **reduced
//! IT-Graphs**: per checkpoint interval, a view of the topology with every
//! closed door deleted, so within an interval a door's usability is a
//! constant-time bitset probe. The views are cached behind a
//! [`parking_lot::RwLock`] keyed by interval index — the shared structure a
//! [`crate::server::VenueServer`] amortises across worker threads: reads
//! (cache hits) take the shared lock, and a miss builds the interval's view
//! exactly once per engine no matter how many threads miss simultaneously
//! (a per-interval `OnceLock` slot; the build runs outside the map lock, so
//! it never stalls traffic on other intervals).
//!
//! The engine holds its graph as an `Arc<ItGraph>` and is `Sync`: one
//! instance can answer queries from many threads concurrently.
//!
//! # Example
//!
//! The paper's Example 1 through ITG/A: same answers as ITG/S, plus a warm
//! reduced-graph cache after the first query.
//!
//! ```
//! use indoor_space::paper_example;
//! use indoor_time::TimeOfDay;
//! use itspq_core::{AsynEngine, ItGraph, ItspqConfig, Query};
//!
//! let ex = paper_example::build();
//! let engine = AsynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
//!
//! let morning = engine.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)));
//! assert!((morning.path.expect("feasible at 9:00").length - 12.0).abs() < 1e-9);
//! assert!(engine.cached_views() >= 1); // Graph_Update ran and was cached
//!
//! let night = engine.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)));
//! assert!(night.path.is_none());
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use indoor_space::{DoorId, IndoorPoint, PartitionId};
use indoor_time::{TimeOfDay, Timestamp, Velocity};
use parking_lot::RwLock;

use crate::framework::{run_search, run_search_targets, SweepObserver, TvChecker};
use crate::{
    AsynMode, ItGraph, ItspqConfig, Path, Query, QueryError, QueryResult, ReducedGraph, SearchStats,
};

/// One cache slot: a view built at most once, by whichever thread first
/// touches its interval. The slot is created under the map's write lock, but
/// the (comparatively expensive) `ReducedGraph::build` runs outside it, so a
/// miss on one interval never blocks hits — or builds — on others.
type ViewSlot = Arc<OnceLock<Arc<ReducedGraph>>>;

/// The ITG/A query engine.
///
/// The search runs on the reduced IT-Graph of the checkpoint interval
/// containing the query time; closed doors are pruned before expansion.
/// Whenever a relaxation's arrival time crosses the next checkpoint,
/// `Asyn_Check` refreshes the reduced graph via `Graph_Update` (Algorithm 3)
/// and — in the paper's [`AsynMode::Faithful`] — rejects that relaxation.
///
/// Reduced graphs are cached per checkpoint interval (the asynchronous
/// maintenance an online deployment would perform once per checkpoint);
/// set [`ItspqConfig::cache_views`] to `false` to rebuild on every request.
pub struct AsynEngine {
    graph: Arc<ItGraph>,
    config: ItspqConfig,
    // A BTreeMap so every enumeration of the cache (stats, byte counts) is
    // in interval order — hasher-state iteration in a parity-critical
    // module would trip `nondet-iteration`, and deservedly.
    cache: RwLock<BTreeMap<usize, ViewSlot>>,
}

impl AsynEngine {
    /// Creates the engine over a graph. Accepts an `Arc<ItGraph>` (shared
    /// with other engines) or a plain [`ItGraph`] (wrapped on the fly).
    #[must_use]
    pub fn new(graph: impl Into<Arc<ItGraph>>, config: ItspqConfig) -> Self {
        AsynEngine {
            graph: graph.into(),
            config,
            cache: RwLock::new(BTreeMap::new()),
        }
    }

    /// The engine's graph.
    #[must_use]
    pub fn graph(&self) -> &ItGraph {
        &self.graph
    }

    /// A shareable handle to the engine's graph.
    #[must_use]
    pub fn graph_arc(&self) -> Arc<ItGraph> {
        Arc::clone(&self.graph)
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &ItspqConfig {
        &self.config
    }

    /// Number of reduced graphs currently cached (slots whose view has
    /// finished building).
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.cache
            .read()
            .values()
            .filter(|s| s.get().is_some())
            .count()
    }

    /// Total heap bytes of the cached reduced graphs.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.cache
            .read()
            .values()
            .filter_map(|s| s.get())
            .map(|v| v.heap_bytes())
            .sum()
    }

    /// Precomputes the reduced graph of every checkpoint interval (warm
    /// start for an online deployment).
    pub fn precompute_all(&self) {
        let times: Vec<_> = self.graph.space().checkpoints().times().to_vec();
        let mut stats = SearchStats::default();
        for t in times {
            let _ = self.view_for(t, &mut stats);
        }
    }

    /// Drops all cached reduced graphs.
    pub fn clear_cache(&self) {
        self.cache.write().clear();
    }

    /// `Graph_Update(t, T)` with caching: the reduced view for the checkpoint
    /// interval containing clock time `t`.
    ///
    /// With caching on, each interval's view is built **exactly once** per
    /// engine, even under concurrent misses: threads race for the interval's
    /// [`ViewSlot`] (a cheap map insertion under the write lock) and
    /// [`OnceLock::get_or_init`] lets exactly one of them run
    /// `ReducedGraph::build`, outside the map lock — losers of the race block
    /// on that slot only, while hits and builds for other intervals proceed.
    /// `stats.views_built` counts only actual constructions.
    fn view_for(&self, t: indoor_time::TimeOfDay, stats: &mut SearchStats) -> Arc<ReducedGraph> {
        let space = self.graph.space();
        if !self.config.cache_views {
            stats.views_built += 1;
            return Arc::new(ReducedGraph::build(space, t));
        }
        let idx = space.checkpoints().interval_index(t);
        // NB: probe and upgrade are separate statements so the read guard is
        // dropped before the write lock is taken (edition-2021 `if let`
        // temporaries live through the `else` branch — self-deadlock bait).
        let probed = self.cache.read().get(&idx).map(Arc::clone);
        let slot: ViewSlot = match probed {
            Some(s) => s,
            None => {
                let mut cache = self.cache.write();
                Arc::clone(cache.entry(idx).or_default())
            }
        };
        let mut built_here = false;
        let view = slot.get_or_init(|| {
            built_here = true;
            Arc::new(ReducedGraph::build(space, t))
        });
        if built_here {
            stats.views_built += 1;
        }
        Arc::clone(view)
    }

    /// Answers `ITSPQ(ps, pt, t)`.
    #[must_use]
    pub fn query(&self, query: &Query) -> QueryResult {
        let mut stats0 = SearchStats::default();
        let t0 = query.departure();
        let current = self.view_for(query.time, &mut stats0);
        let mut checker = AsynChecker {
            engine: self,
            velocity: self.config.velocity,
            t0,
            next_instant: self.graph.space().checkpoints().next_instant(t0),
            view_bytes: current.heap_bytes(),
            seen_intervals: vec![current.interval_index()],
            current,
            mode: self.config.asyn_mode,
            pre_stats: stats0,
        };
        let (path, mut stats) = run_search(&self.graph, query, &self.config, &mut checker);
        stats.views_built += checker.pre_stats.views_built;
        QueryResult { path, stats }
    }

    /// Answers `ITSPQ(ps, pt, t)` after validating the query.
    ///
    /// # Errors
    /// [`QueryError`] if an endpoint has non-finite coordinates or names a
    /// partition the venue does not have; the search itself never runs.
    pub fn try_query(&self, query: &Query) -> Result<QueryResult, QueryError> {
        query.validate(self.graph.space())?;
        Ok(self.query(query))
    }

    /// Answers a whole group of targets from one source with a single shared
    /// search frontier — the checker (including a `Faithful` cursor) evolves
    /// through the same door-relaxation sequence as each per-target
    /// [`query`], so answers are byte-identical under the preconditions of
    /// [`run_search_targets`] (FullRelax config, traversable-or-source target
    /// partitions).
    ///
    /// [`query`]: AsynEngine::query
    pub(crate) fn query_targets(
        &self,
        source: &IndoorPoint,
        time: TimeOfDay,
        targets: &[IndoorPoint],
        observer: &mut SweepObserver,
    ) -> (Vec<Option<Path>>, SearchStats) {
        let mut stats0 = SearchStats::default();
        let t0 = Timestamp::from_time_of_day(time);
        let current = self.view_for(time, &mut stats0);
        let mut checker = AsynChecker {
            engine: self,
            velocity: self.config.velocity,
            t0,
            next_instant: self.graph.space().checkpoints().next_instant(t0),
            view_bytes: current.heap_bytes(),
            seen_intervals: vec![current.interval_index()],
            current,
            mode: self.config.asyn_mode,
            pre_stats: stats0,
        };
        let (paths, mut stats) = run_search_targets(
            &self.graph,
            source,
            time,
            targets,
            &self.config,
            &mut checker,
            observer,
        );
        stats.views_built += checker.pre_stats.views_built;
        (paths, stats)
    }
}

impl std::fmt::Debug for AsynEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsynEngine")
            .field("cached_views", &self.cached_views())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// `Asyn_Check` (Algorithm 4) plus the reduced topology view.
///
/// `Faithful` follows the paper to the letter: one global current graph,
/// advanced by `Graph_Update` whenever a relaxation's arrival crosses the
/// next checkpoint (that relaxation is dropped). Because Dijkstra relaxes in
/// settle order, not arrival order, a far relaxation can advance the cursor
/// and later, *nearer* relaxations are then judged against the wrong interval
/// — the paper's algorithm can accept a door that is closed at the actual
/// arrival time (see the `arrive_too_early` integration tests). `Exact`
/// instead resolves every relaxation against the reduced graph of its own
/// arrival interval (served from the engine cache), which is equivalent to
/// `Syn_Check` door-by-door and therefore always matches ITG/S.
struct AsynChecker<'a> {
    engine: &'a AsynEngine,
    velocity: Velocity,
    t0: Timestamp,
    current: Arc<ReducedGraph>,
    /// Timeline instant at which the current view expires.
    next_instant: Timestamp,
    /// Accumulated bytes of every distinct view consulted by this query.
    view_bytes: usize,
    /// Interval indices already accounted in `view_bytes`.
    seen_intervals: Vec<usize>,
    mode: AsynMode,
    /// Stats accrued before the framework ran (initial view construction).
    pre_stats: SearchStats,
}

impl AsynChecker<'_> {
    fn account_view(&mut self, view: &ReducedGraph) {
        if !self.seen_intervals.contains(&view.interval_index()) {
            self.seen_intervals.push(view.interval_index());
            self.view_bytes += view.heap_bytes();
        }
    }
}

impl TvChecker for AsynChecker<'_> {
    fn leaveable(&self, v: PartitionId) -> &[DoorId] {
        match self.mode {
            // The paper iterates the reduced P2D of the current graph.
            AsynMode::Faithful => self.current.leaveable(v),
            // Exact mode must not under-prune doors whose arrival interval
            // differs from the cursor's; it iterates the full topology and
            // lets `check` consult the right interval.
            AsynMode::Exact => self.engine.graph.space().p2d_leaveable(v),
        }
    }

    fn check(&mut self, d: DoorId, dist: f64, stats: &mut SearchStats) -> bool {
        let tarr = self.t0 + self.velocity.travel_time(dist);
        match self.mode {
            AsynMode::Faithful => {
                if tarr < self.next_instant {
                    // Within the current interval the door is open by
                    // construction (closed doors are absent from the reduced
                    // P2D lists). Arrivals *before* the interval — possible
                    // after a premature update — are accepted too, exactly as
                    // the paper's Algorithm 4 does.
                    return true;
                }
                // Crossing: Graph_Update(tarr, T), then return false.
                let view = self.engine.view_for(tarr.time_of_day(), stats);
                self.next_instant = self.engine.graph.space().checkpoints().next_instant(tarr);
                self.account_view(&view);
                self.current = view;
                stats.graph_updates += 1;
                false
            }
            AsynMode::Exact => {
                // Constant-time bitset lookup in the arrival interval's view.
                let view = self.engine.view_for(tarr.time_of_day(), stats);
                self.account_view(&view);
                if !Arc::ptr_eq(&view, &self.current) {
                    stats.graph_updates += 1;
                    self.current = view;
                }
                self.current.is_open(d)
            }
        }
    }

    fn account(&self, stats: &mut SearchStats) {
        stats.reduced_graph_bytes = self.view_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;
    use indoor_time::TimeOfDay;

    fn engine(config: ItspqConfig) -> (paper_example::PaperExample, AsynEngine) {
        let ex = paper_example::build();
        let graph = ItGraph::new(ex.space.clone());
        (ex, AsynEngine::new(graph, config))
    }

    #[test]
    fn example1_matches_itg_s() {
        let (ex, eng) = engine(ItspqConfig::default());
        let res = eng.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)));
        let path = res.path.expect("path exists at 9:00");
        assert_eq!(path.doors().collect::<Vec<_>>(), vec![ex.d(18)]);
        assert!((path.length - 12.0).abs() < 1e-9);

        let res = eng.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)));
        assert!(res.path.is_none());
    }

    #[test]
    fn caches_views_across_queries() {
        let (ex, eng) = engine(ItspqConfig::default());
        assert_eq!(eng.cached_views(), 0);
        let _ = eng.query(&Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)));
        let first = eng.cached_views();
        assert!(first >= 1);
        // Re-running the same query builds nothing new.
        let res = eng.query(&Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)));
        assert_eq!(eng.cached_views(), first);
        assert_eq!(res.stats.views_built, 0);
        assert!(eng.cache_bytes() > 0);
    }

    #[test]
    fn cache_disabled_rebuilds() {
        let (ex, eng) = engine(ItspqConfig::default().with_cache_views(false));
        let r1 = eng.query(&Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)));
        let r2 = eng.query(&Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)));
        assert_eq!(eng.cached_views(), 0);
        assert!(r1.stats.views_built >= 1);
        assert!(r2.stats.views_built >= 1);
    }

    #[test]
    fn precompute_builds_every_interval() {
        let (ex, eng) = engine(ItspqConfig::default());
        eng.precompute_all();
        assert_eq!(eng.cached_views(), ex.space.checkpoints().len());
        eng.clear_cache();
        assert_eq!(eng.cached_views(), 0);
    }

    #[test]
    fn reduced_graph_bytes_accounted() {
        let (ex, eng) = engine(ItspqConfig::default());
        let res = eng.query(&Query::new(ex.p1, ex.p2, TimeOfDay::hm(12, 0)));
        assert!(res.stats.reduced_graph_bytes > 0);
        assert!(res.stats.estimated_bytes() > res.stats.search_bytes);
    }

    #[test]
    fn exact_mode_agrees_with_syn_on_checkpoint_crossing() {
        // A query whose walk crosses the 16:00 checkpoint: start at 15:59
        // from p1; several [8:00,16:00) doors will close mid-walk.
        let ex = paper_example::build();
        let graph = ItGraph::new(ex.space.clone());
        let syn = crate::SynEngine::new(graph.clone(), ItspqConfig::default());
        let asyn_exact = AsynEngine::new(
            graph,
            ItspqConfig::default().with_asyn_mode(AsynMode::Exact),
        );
        for (h, m) in [(15, 55), (15, 59), (22, 58), (5, 58)] {
            let q = Query::new(ex.p1, ex.p2, TimeOfDay::hm(h, m));
            let a = syn.query(&q);
            let b = asyn_exact.query(&q);
            assert_eq!(
                a.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                b.path.as_ref().map(|p| p.doors().collect::<Vec<_>>()),
                "ITG/S and ITG/A(Exact) disagree at {h}:{m}"
            );
        }
    }

    #[test]
    fn faithful_mode_reports_graph_updates() {
        let (ex, eng) = engine(ItspqConfig::default());
        // Starting 10 s before the 16:00 checkpoint: at 5 km/h only ~14 m fit
        // into the current interval, so relaxations beyond that refresh the
        // reduced graph.
        let res = eng.query(&Query::new(ex.p1, ex.p2, TimeOfDay::hms(15, 59, 50)));
        assert!(res.stats.graph_updates > 0);
    }
}
