//! Reduced IT-Graphs per checkpoint interval (Algorithm 3, `Graph_Update`).

use indoor_space::{DoorId, IndoorSpace, PartitionId};
use indoor_time::TimeOfDay;

/// The time-dependent view `G'_IT` of the IT-Graph for one checkpoint
/// interval: only doors open throughout the interval remain in the `P2D`
/// mappings.
///
/// Built by [`ReducedGraph::build`], the Rust form of Algorithm 3: start from
/// the original topology `G⁰_IT`, find the previous checkpoint `cp` for the
/// requested time, and delete every door closed at `cp` from the partitions'
/// door sets.
#[derive(Debug, Clone, PartialEq)]
pub struct ReducedGraph {
    /// The checkpoint this view is valid from.
    cp: TimeOfDay,
    /// The next checkpoint (end of validity), or `None` until midnight.
    next_cp: Option<TimeOfDay>,
    /// Index of the checkpoint interval within the venue's checkpoint set.
    interval_index: usize,
    /// Whether each door (by dense index) is open during the interval.
    open: Vec<bool>,
    /// `P2D⊳` restricted to open doors.
    part_leaveable: Vec<Vec<DoorId>>,
    /// Number of open doors.
    open_count: usize,
}

impl ReducedGraph {
    /// `Graph_Update(t, T)`: builds the reduced view for the checkpoint
    /// interval containing clock time `t`.
    #[must_use]
    pub fn build(space: &IndoorSpace, t: TimeOfDay) -> Self {
        let cps = space.checkpoints();
        let cp = cps.previous(t);
        let next_cp = cps.next(t);
        let interval_index = cps.interval_index(t);

        // Door states are constant on [cp, next_cp), so evaluating at cp is
        // exact for the whole interval.
        let mut open = Vec::with_capacity(space.num_doors());
        let mut open_count = 0;
        for door in space.doors() {
            let is_open = door.atis.is_open(cp);
            open.push(is_open);
            open_count += usize::from(is_open);
        }

        let part_leaveable = (0..space.num_partitions())
            .map(|pi| {
                space
                    .p2d_leaveable(PartitionId::from_index(pi))
                    .iter()
                    .copied()
                    .filter(|d| open[d.index()])
                    .collect()
            })
            .collect();

        ReducedGraph {
            cp,
            next_cp,
            interval_index,
            open,
            part_leaveable,
            open_count,
        }
    }

    /// The checkpoint this view is valid from.
    #[must_use]
    pub fn checkpoint(&self) -> TimeOfDay {
        self.cp
    }

    /// The end of this view's validity (the next checkpoint), if any before
    /// midnight.
    #[must_use]
    pub fn next_checkpoint(&self) -> Option<TimeOfDay> {
        self.next_cp
    }

    /// Index of the checkpoint interval this view covers.
    #[must_use]
    pub fn interval_index(&self) -> usize {
        self.interval_index
    }

    /// Whether a door is open during this interval.
    #[must_use]
    pub fn is_open(&self, d: DoorId) -> bool {
        self.open[d.index()]
    }

    /// Number of doors open during this interval.
    #[must_use]
    pub fn open_door_count(&self) -> usize {
        self.open_count
    }

    /// `P2Dcp⊳(v)`: the leaveable doors of `v` that are open in this interval.
    #[must_use]
    pub fn leaveable(&self, v: PartitionId) -> &[DoorId] {
        &self.part_leaveable[v.index()]
    }

    /// Approximate heap bytes of this view (for the memory-cost metric).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.open.capacity()
            + self
                .part_leaveable
                .iter()
                .map(|v| v.capacity() * std::mem::size_of::<DoorId>() + 24)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;

    #[test]
    fn noon_view_keeps_all_but_none_closed() {
        let ex = paper_example::build();
        let view = ReducedGraph::build(&ex.space, TimeOfDay::hm(12, 0));
        // At noon every Table I door is open.
        assert_eq!(view.open_door_count(), 21);
        assert_eq!(view.checkpoint(), TimeOfDay::hm(9, 0));
        assert_eq!(view.next_checkpoint(), Some(TimeOfDay::hm(16, 0)));
    }

    #[test]
    fn early_morning_view_prunes_closed_doors() {
        let ex = paper_example::build();
        // At 5:30, open doors are those covering 5:30: d1, d11, d12, d13, d20
        // ([5:00,...)), d9 ([0:00,6:00)), d14/d17 (always), d18 ([0:00,23:00)).
        let view = ReducedGraph::build(&ex.space, TimeOfDay::hm(5, 30));
        assert_eq!(view.checkpoint(), TimeOfDay::hm(5, 0));
        assert_eq!(view.next_checkpoint(), Some(TimeOfDay::hm(6, 0)));
        let open: Vec<u32> = (1..=21).filter(|&n| view.is_open(ex.d(n))).collect();
        assert_eq!(open, vec![1, 9, 11, 12, 13, 14, 17, 18, 20]);
        assert_eq!(view.open_door_count(), 9);
    }

    #[test]
    fn leaveable_lists_are_filtered() {
        let ex = paper_example::build();
        let view = ReducedGraph::build(&ex.space, TimeOfDay::hm(5, 30));
        // v3's doors are d1,d2,d3,d5,d6; only d1 is open at 5:30.
        assert_eq!(view.leaveable(ex.v(3)), &[ex.d(1)]);
        // v16: d3 (closed), d17 (open), d21 (closed).
        assert_eq!(view.leaveable(ex.v(16)), &[ex.d(17)]);
    }

    #[test]
    fn state_is_constant_at_interval_start_edge() {
        let ex = paper_example::build();
        // Exactly at the 16:00 checkpoint the [8:00,16:00) doors are closed.
        let view = ReducedGraph::build(&ex.space, TimeOfDay::hm(16, 0));
        assert!(!view.is_open(ex.d(2)));
        assert!(!view.is_open(ex.d(15)));
        assert!(view.is_open(ex.d(16))); // [8:00,17:00) still open
        assert_eq!(view.checkpoint(), TimeOfDay::hm(16, 0));
    }

    #[test]
    fn interval_indices_partition_the_day() {
        let ex = paper_example::build();
        let early = ReducedGraph::build(&ex.space, TimeOfDay::hm(0, 30));
        let noon = ReducedGraph::build(&ex.space, TimeOfDay::hm(12, 0));
        assert_eq!(early.interval_index(), 0);
        assert!(noon.interval_index() > early.interval_index());
    }

    #[test]
    fn heap_bytes_positive() {
        let ex = paper_example::build();
        let view = ReducedGraph::build(&ex.space, TimeOfDay::hm(12, 0));
        assert!(view.heap_bytes() > 0);
    }
}
