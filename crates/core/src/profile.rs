//! Extension: departure-time profiles.
//!
//! "When should I leave?" is the natural follow-up to a single `ITSPQ`
//! query. A profile evaluates `ITSPQ(ps, pt, t)` across a departure window
//! and reports the valid shortest-path length as a (sampled) function of
//! `t`, annotated with the checkpoint structure that drives its shape: the
//! result can only change when some door's state flips during the walk, so
//! sampling is checkpoint-aligned and then refined down to a user-chosen
//! resolution wherever neighbouring samples disagree.

use indoor_time::{DurationSecs, TimeOfDay};

use crate::ord::cmp_opt_len;
use crate::{ItGraph, ItspqConfig, Query, SynEngine};

/// One sampled point of a departure-time profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilePoint {
    /// Departure time probed.
    pub departure: TimeOfDay,
    /// Valid shortest-path length in metres, or `None` for "no such routes".
    pub length: Option<f64>,
}

/// A departure-time profile over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Sampled points in ascending departure order.
    pub points: Vec<ProfilePoint>,
}

impl Profile {
    /// Departure of the best (shortest) answer in the window, if any route
    /// exists at all.
    #[must_use]
    pub fn best(&self) -> Option<&ProfilePoint> {
        self.points
            .iter()
            .filter(|p| p.length.is_some())
            .min_by(|a, b| cmp_opt_len(a.length, b.length))
    }

    /// The sub-windows (as index ranges into `points`) where a route exists.
    #[must_use]
    pub fn feasible_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut start: Option<usize> = None;
        for (i, p) in self.points.iter().enumerate() {
            match (p.length.is_some(), start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    runs.push((s, i - 1));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push((s, self.points.len() - 1));
        }
        runs
    }
}

/// Computes the profile of `ps → pt` for departures in `[from, to]`.
///
/// Samples every checkpoint inside the window plus the window edges, then
/// bisects any neighbouring pair that disagrees (different feasibility or a
/// length jump above 1 mm) until the gap is below `resolution`.
#[must_use]
pub fn departure_profile(
    graph: &ItGraph,
    source: indoor_space::IndoorPoint,
    target: indoor_space::IndoorPoint,
    from: TimeOfDay,
    to: TimeOfDay,
    resolution: DurationSecs,
    config: &ItspqConfig,
) -> Profile {
    assert!(from <= to, "window must be ordered");
    let engine = SynEngine::new(graph.clone(), *config);
    let probe = |t: TimeOfDay| -> ProfilePoint {
        let res = engine.query(&Query::new(source, target, t));
        ProfilePoint {
            departure: t,
            length: res.path.map(|p| p.length),
        }
    };

    // Seed with window edges + interior checkpoints.
    let mut times: Vec<TimeOfDay> = vec![from, to];
    for &cp in graph.space().checkpoints().times() {
        if from < cp && cp < to {
            times.push(cp);
        }
    }
    times.sort();
    times.dedup();
    let mut points: Vec<ProfilePoint> = times.into_iter().map(probe).collect();

    // Refine disagreements down to the resolution.
    let differs = |a: &ProfilePoint, b: &ProfilePoint| -> bool {
        match (a.length, b.length) {
            (None, None) => false,
            (Some(x), Some(y)) => (x - y).abs() > 1e-3,
            _ => true,
        }
    };
    let min_gap = resolution.seconds().max(1.0);
    let mut i = 0;
    while i + 1 < points.len() {
        let gap = points[i + 1].departure.seconds() - points[i].departure.seconds();
        if gap > min_gap && differs(&points[i], &points[i + 1]) {
            // The midpoint of two in-day times is in-day; if float noise ever
            // says otherwise, stop refining this gap rather than panic.
            match TimeOfDay::from_seconds(points[i].departure.seconds() + gap / 2.0) {
                Ok(mid) => points.insert(i + 1, probe(mid)),
                Err(_) => i += 1,
            }
            // On success, re-examine the left half next iteration.
        } else {
            i += 1;
        }
    }
    Profile { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_space::paper_example;

    #[test]
    fn example1_profile_shows_the_2300_cutoff() {
        let ex = paper_example::build();
        let graph = ItGraph::new(ex.space.clone());
        let profile = departure_profile(
            &graph,
            ex.p3,
            ex.p4,
            TimeOfDay::hm(20, 0),
            TimeOfDay::hms(23, 59, 0),
            DurationSecs::new(30.0).unwrap(),
            &ItspqConfig::default(),
        );
        // Early in the window the 12 m d18 path exists; late it does not.
        assert_eq!(profile.points.first().unwrap().length, Some(12.0));
        assert_eq!(profile.points.last().unwrap().length, None);
        // The feasibility boundary is located near d18's 23:00 closing,
        // shifted earlier by the sub-minute walking time to the door.
        let runs = profile.feasible_runs();
        assert_eq!(runs.len(), 1);
        let (_, last_ok) = runs[0];
        let boundary = profile.points[last_ok].departure;
        assert!(
            boundary >= TimeOfDay::hm(22, 58),
            "boundary {boundary} too early"
        );
        assert!(
            boundary <= TimeOfDay::hm(23, 0),
            "boundary {boundary} too late"
        );
    }

    #[test]
    fn profile_is_sorted_and_within_window() {
        let ex = paper_example::build();
        let graph = ItGraph::new(ex.space.clone());
        let profile = departure_profile(
            &graph,
            ex.p1,
            ex.p2,
            TimeOfDay::hm(6, 0),
            TimeOfDay::hm(10, 0),
            DurationSecs::new(60.0).unwrap(),
            &ItspqConfig::default(),
        );
        assert!(profile.points.len() >= 3);
        for w in profile.points.windows(2) {
            assert!(w[0].departure < w[1].departure);
        }
        assert_eq!(
            profile.points.first().unwrap().departure,
            TimeOfDay::hm(6, 0)
        );
        assert_eq!(
            profile.points.last().unwrap().departure,
            TimeOfDay::hm(10, 0)
        );
    }

    #[test]
    fn best_picks_the_shortest_feasible_departure() {
        let ex = paper_example::build();
        let graph = ItGraph::new(ex.space.clone());
        // Across the whole day the p3→p4 optimum is the 10 m shortcut? No —
        // v15 is private at every hour, so the best stays the 12 m d18 path.
        let profile = departure_profile(
            &graph,
            ex.p3,
            ex.p4,
            TimeOfDay::hm(0, 0),
            TimeOfDay::hm(23, 0),
            DurationSecs::new(300.0).unwrap(),
            &ItspqConfig::default(),
        );
        let best = profile.best().expect("routes exist during the day");
        assert_eq!(best.length, Some(12.0));
    }

    #[test]
    fn infeasible_window_has_no_best() {
        let ex = paper_example::build();
        let graph = ItGraph::new(ex.space.clone());
        let profile = departure_profile(
            &graph,
            ex.p3,
            ex.p4,
            TimeOfDay::hm(23, 30),
            TimeOfDay::hm(23, 45),
            DurationSecs::new(60.0).unwrap(),
            &ItspqConfig::default(),
        );
        assert!(profile.best().is_none());
        assert!(profile.feasible_runs().is_empty());
    }
}
