//! # itspq-core — IT-Graph and ITSPQ query processing
//!
//! Reproduction of the core contribution of *Shortest Path Queries for Indoor
//! Venues with Temporal Variations* (Liu et al., ICDE 2020):
//!
//! * [`ItGraph`] — the **indoor temporal-variation graph** `G_IT(V, E, L_V,
//!   L_E)`: partitions as vertices (labelled with partition type and distance
//!   matrix), door crossings as directed edges (labelled with door type and
//!   ATIs);
//! * [`SynEngine`] — method **ITG/S**: Algorithm 1 with the synchronous check
//!   of Algorithm 2 (`tarr ∈ ATIs`);
//! * [`AsynEngine`] — method **ITG/A**: Algorithm 1 over the reduced
//!   time-dependent graph of Algorithm 3, refreshed asynchronously at
//!   checkpoints per Algorithm 4;
//! * [`baselines`] — a temporal-oblivious static Dijkstra, a
//!   frozen-at-query-time snapshot Dijkstra and an exhaustive oracle for small
//!   instances;
//! * [`validate_path`] — an independent checker of the two ITSPQ rules
//!   (doors open at arrival; no private partitions except the endpoints');
//! * [`waiting`] — the paper's footnoted non-goal as an extension: earliest
//!   arrival when waiting at closed doors is allowed;
//! * [`ksp`] — `k` shortest valid paths (Yen's algorithm), for the
//!   alternative-route lists indoor LBS front-ends expect;
//! * [`profile`] — departure-time profiles ("when should I leave?"),
//!   checkpoint-aligned and refined to a chosen resolution;
//! * [`one_to_many`] — single-source valid-distance maps over all doors and
//!   partitions (evacuation/coverage analysis);
//! * [`ord`] — NaN-safe total-order comparisons every distance in this crate
//!   is ranked by (no `partial_cmp(..).unwrap()` anywhere in the search);
//! * [`server`] — [`VenueServer`], the concurrent batched query front-end:
//!   one `Arc`-shared venue, a worker pool, and the ITG/A reduced-graph
//!   cache amortised across threads.
//!
//! ## Ownership model
//!
//! The IT-Graph is immutable after construction and shared by reference
//! count: build it once with [`ItGraph::shared`] and hand the `Arc<ItGraph>`
//! to every engine and server (engine constructors also accept a plain
//! [`ItGraph`] and wrap it on the fly). Algorithms borrow `&ItGraph`. See
//! `ARCHITECTURE.md` at the repository root for the full data-flow and
//! contention story.
//!
//! ## Faithfulness switches
//!
//! The four-page paper leaves a few semantics implicit; they are exposed as
//! configuration instead of being silently resolved (see `DESIGN.md` §6):
//! [`ExpandPolicy`] selects the paper's visited-partition pruning or a full
//! Dijkstra relaxation, and [`AsynMode`] selects the paper's drop-on-refresh
//! behaviour or an exact re-check.
//!
//! ## Example
//!
//! ```
//! use indoor_space::paper_example;
//! use indoor_time::TimeOfDay;
//! use itspq_core::{ItGraph, ItspqConfig, Query, SynEngine};
//!
//! let ex = paper_example::build();
//! let graph = ItGraph::new(ex.space.clone());
//! let engine = SynEngine::new(graph, ItspqConfig::default());
//!
//! // Example 1 of the paper: at 9:00 the (p3, d15, d16, p4) shortcut is
//! // rejected (v15 is private) and the 12 m path through d18 wins.
//! let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0));
//! let result = engine.query(&q);
//! let path = result.path.expect("a path exists at 9:00");
//! assert!((path.length - 12.0).abs() < 1e-9);
//!
//! // At 23:30 d18 is closed and no valid route remains.
//! let q = Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30));
//! assert!(engine.query(&q).path.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod config;
pub mod engine_asyn;
pub mod engine_syn;
mod framework;
pub mod graph;
mod heap;
pub mod ksp;
pub mod one_to_many;
pub mod ord;
pub mod profile;
mod query;
mod reduced;
mod replay;
pub mod server;
mod stats;
mod validate;
pub mod waiting;

pub use config::{AsynMode, ExpandPolicy, ItspqConfig};
pub use engine_asyn::AsynEngine;
pub use engine_syn::SynEngine;
pub use graph::ItGraph;
pub use ksp::k_shortest_paths;
pub use ord::{cmp_dist, cmp_opt_len, min_dist, OrdF64};
pub use query::{DoorHop, GroupKey, Path, Query, QueryError, QueryOutcome, QueryResult};
pub use reduced::ReducedGraph;
pub use server::{BatchPlan, BatchStrategy, ServeMethod, ServerConfig, VenueServer};
pub use stats::{BatchStats, SearchStats};
pub use validate::{validate_path, PathViolation};
