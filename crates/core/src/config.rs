//! Configuration of the ITSPQ search.

use indoor_time::{Velocity, WALKING_SPEED};
use serde::{Deserialize, Serialize};

/// How Algorithm 1 expands partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpandPolicy {
    /// The paper's Algorithm 1 as written: each partition is expanded only
    /// from the first door that settles into it (lines 18–19), and a door
    /// entering the target partition only relaxes `pt` (lines 20–24).
    PaperPruned,
    /// Textbook Dijkstra over the door graph: every settled door expands all
    /// its enterable partitions and doors may be re-relaxed until settled.
    /// Guaranteed to find the shortest valid path under the paper's
    /// no-waiting, earliest-arrival check semantics.
    FullRelax,
}

/// How the asynchronous check (Algorithm 4) treats the relaxation that
/// triggers a graph refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsynMode {
    /// The paper's Algorithm 4: refresh the reduced graph and return `false`,
    /// dropping the triggering relaxation even if the door is open in the new
    /// interval.
    Faithful,
    /// Resolve every relaxation against the reduced graph of its *own*
    /// arrival interval (served from the engine cache). Equivalent to
    /// `Syn_Check` door-by-door, so ITG/A(Exact) always matches ITG/S —
    /// unlike `Faithful`, whose single advancing cursor can judge a
    /// relaxation against the wrong interval (see the `arrive_too_early`
    /// integration tests).
    Exact,
}

/// Tunables of the ITSPQ engines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItspqConfig {
    /// Walking speed used to turn distances into arrival times (paper: 5 km/h).
    pub velocity: Velocity,
    /// Partition-expansion policy of Algorithm 1.
    pub expand: ExpandPolicy,
    /// Refresh semantics of Algorithm 4 (ITG/A only).
    pub asyn_mode: AsynMode,
    /// Whether the ITG/A engine caches reduced graphs per checkpoint interval
    /// across queries (`false` re-runs `Graph_Update` from scratch each time,
    /// matching a cold Algorithm 3 invocation).
    pub cache_views: bool,
}

impl Default for ItspqConfig {
    fn default() -> Self {
        ItspqConfig {
            velocity: WALKING_SPEED,
            expand: ExpandPolicy::PaperPruned,
            asyn_mode: AsynMode::Faithful,
            cache_views: true,
        }
    }
}

impl ItspqConfig {
    /// The default configuration with [`ExpandPolicy::FullRelax`].
    #[must_use]
    pub fn full_relax() -> Self {
        ItspqConfig {
            expand: ExpandPolicy::FullRelax,
            ..Self::default()
        }
    }

    /// Returns a copy with the given velocity.
    #[must_use]
    pub fn with_velocity(mut self, velocity: Velocity) -> Self {
        self.velocity = velocity;
        self
    }

    /// Returns a copy with the given expansion policy.
    #[must_use]
    pub fn with_expand(mut self, expand: ExpandPolicy) -> Self {
        self.expand = expand;
        self
    }

    /// Returns a copy with the given asynchronous-check mode.
    #[must_use]
    pub fn with_asyn_mode(mut self, mode: AsynMode) -> Self {
        self.asyn_mode = mode;
        self
    }

    /// Returns a copy with reduced-graph caching toggled.
    #[must_use]
    pub fn with_cache_views(mut self, cache: bool) -> Self {
        self.cache_views = cache;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ItspqConfig::default();
        assert!((c.velocity.kmh() - 5.0).abs() < 1e-9);
        assert_eq!(c.expand, ExpandPolicy::PaperPruned);
        assert_eq!(c.asyn_mode, AsynMode::Faithful);
        assert!(c.cache_views);
    }

    #[test]
    fn builder_style_updates() {
        let c = ItspqConfig::full_relax()
            .with_asyn_mode(AsynMode::Exact)
            .with_cache_views(false)
            .with_velocity(Velocity::from_kmh(3.6).unwrap());
        assert_eq!(c.expand, ExpandPolicy::FullRelax);
        assert_eq!(c.asyn_mode, AsynMode::Exact);
        assert!(!c.cache_views);
        assert!((c.velocity.mps() - 1.0).abs() < 1e-12);
    }
}
