//! # itspq-lint — workspace static analysis for the ITSPQ reproduction
//!
//! A self-contained lexical analysis pass that enforces the invariants the
//! serving roadmap depends on: library code that cannot panic a worker pool,
//! float orderings that survive NaN, lock guards that never straddle a
//! cache build, scoped threads, and wall-clock-free algorithm code.
//!
//! ## Pipeline
//!
//! 1. [`lexer`] tokenises each file (comments, strings and raw strings are
//!    skipped *correctly* — a `unwrap()` inside a string is not a finding);
//! 2. [`source`] classifies the file (crate, lib/test/bench/example/vendor)
//!    and computes `#[cfg(test)]` regions so inline test modules are exempt;
//! 3. every [`rules::Rule`] scans the token stream and emits
//!    [`diag::Diagnostic`]s with `file:line:col` positions;
//! 4. [`allow`] parses `// itspq-lint: allow(<rule>, "<justification>")`
//!    directives — themselves checked: no justification, unknown rule or a
//!    stale (unused) allow is an `allow-discipline` error;
//! 5. [`engine`] aggregates per-file outcomes into a workspace [`Report`].
//!
//! ## Rules
//!
//! | rule | invariant |
//! |---|---|
//! | `no-panic-in-lib` | no `unwrap`/`expect`/`panic!`-family in library code of the algorithm crates |
//! | `float-total-order` | no `partial_cmp(..).unwrap()` chains, no `==`/`!=` against float literals |
//! | `lock-scope` | no `let`-bound lock guard living across a cache-build or closure call |
//! | `scoped-threads-only` | no `std::thread::spawn` outside `crates/bench` |
//! | `no-wall-clock-in-core` | no `Instant`/`SystemTime` in `crates/core` library code |
//!
//! See `ARCHITECTURE.md` (§ *Static analysis & invariants*) for the policy
//! and `cargo run -p itspq-lint -- --list-rules` for the live catalogue.

#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use allow::{collect_allows, Allow, ALLOW_RULE};
pub use diag::{Diagnostic, Severity};
pub use engine::{collect_workspace_allows, lint_source, lint_workspace, FileOutcome, Report};
pub use lexer::{lex, Token, TokenKind};
pub use rules::{all_rules, is_known_rule, Rule};
pub use source::{classify, FileCtx, FileKind, FileView, LIB_DISCIPLINE_CRATES};
