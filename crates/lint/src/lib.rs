//! # itspq-lint — workspace static analysis for the ITSPQ reproduction
//!
//! A self-contained lexical analysis pass that enforces the invariants the
//! serving roadmap depends on: library code that cannot panic a worker pool,
//! float orderings that survive NaN, lock guards that never straddle a
//! cache build, scoped threads, and wall-clock-free algorithm code.
//!
//! ## Pipeline
//!
//! 1. [`lexer`] tokenises each file (comments, strings and raw strings are
//!    skipped *correctly* — a `unwrap()` inside a string is not a finding);
//! 2. [`source`] classifies the file (crate, lib/test/bench/example/vendor)
//!    and computes `#[cfg(test)]` regions so inline test modules are exempt;
//! 3. [`parser`] builds a brace-matched item tree (modules, fns, impls,
//!    imports) over the token stream;
//! 4. every token-layer [`rules::Rule`] scans the file and emits
//!    [`diag::Diagnostic`]s with `file:line:col` positions;
//! 5. [`graph`] distils each file into function facts — calls, lock
//!    acquisitions with held-sets, panic sites — and aggregates them into a
//!    workspace symbol table, approximate call graph and lock graph over
//!    which the graph-layer [`rules::WorkspaceRule`]s run;
//! 6. [`allow`] parses `// itspq-lint: allow(<rule>, "<justification>")`
//!    directives — themselves checked: no justification, unknown rule or a
//!    stale (unused) allow is an `allow-discipline` error;
//! 7. [`engine`] suppresses, aggregates into a workspace [`Report`], and
//!    optionally caches per-file analyses by content hash so warm runs
//!    re-lex nothing.
//!
//! ## Rules
//!
//! Token layer (per file):
//!
//! | rule | invariant |
//! |---|---|
//! | `no-panic-in-lib` | no `unwrap`/`expect`/`panic!`-family in library code of the algorithm crates |
//! | `float-total-order` | no `partial_cmp(..).unwrap()` chains, no `==`/`!=` against float literals |
//! | `lock-scope` | no `let`-bound lock guard living across a cache-build or closure call |
//! | `scoped-threads-only` | no `std::thread::spawn` outside `crates/bench` |
//! | `no-wall-clock-in-core` | no `Instant`/`SystemTime` in `crates/core` library code |
//! | `nondet-iteration` | no `HashMap`/`HashSet` iteration in parity-critical modules |
//! | `float-determinism` | no `mul_add`, `partial_cmp` comparators or unordered float sums there |
//!
//! Graph layer (whole workspace):
//!
//! | rule | invariant |
//! |---|---|
//! | `lock-order` | the workspace lock-acquisition graph is acyclic |
//! | `panic-reachability` | disciplined lib fns cannot transitively reach a panic site |
//!
//! See `ARCHITECTURE.md` (§ *Static analysis & invariants*) for the policy
//! and `cargo run -p itspq-lint -- --list-rules` for the live catalogue.

#![forbid(unsafe_code)]

pub mod allow;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;

pub use allow::{collect_allows, Allow, ALLOW_RULE};
pub use diag::{Diagnostic, Severity};
pub use engine::{
    audit_allows, audit_workspace_allows, collect_workspace_allows, lint_files, lint_source,
    lint_workspace, lint_workspace_cached, AllowAudit, CacheStats, FileOutcome, Report,
};
pub use graph::{extract_facts, FnFact, Workspace};
pub use lexer::{lex, Token, TokenKind};
pub use parser::{parse, Item, ItemKind, ItemTree};
pub use rules::{all_rules, is_known_rule, workspace_rules, Rule, WorkspaceRule};
pub use source::{
    classify, FileCtx, FileKind, FileView, LIB_DISCIPLINE_CRATES, PARITY_CRITICAL_FILES,
};
