//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;

/// How serious a diagnostic is. Under `--deny` both levels fail the run;
/// without it the linter is advisory and only the summary differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth fixing, does not necessarily break the build contract.
    Warning,
    /// A violation of a workspace invariant.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding, anchored to `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced the finding (`no-panic-in-lib`, …, or
    /// `allow-discipline` for problems with the suppressions themselves).
    pub rule: &'static str,
    /// Severity level.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Sort key: by file, then position, then rule.
    #[must_use]
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.path.clone(), self.line, self.col, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.path, self.line, self.col, self.severity, self.rule, self.message
        )
    }
}

impl Diagnostic {
    /// Renders the diagnostic as a JSON object (one line, stable key
    /// order) for `--emit json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(self.rule),
            self.severity,
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_escapes_and_keeps_key_order() {
        let d = Diagnostic {
            rule: "no-panic-in-lib",
            severity: Severity::Error,
            path: "crates/core/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "say \"no\" to\tpanics\n".into(),
        };
        assert_eq!(
            d.to_json(),
            "{\"rule\":\"no-panic-in-lib\",\"severity\":\"error\",\
             \"path\":\"crates/core/src/a.rs\",\"line\":3,\"col\":7,\
             \"message\":\"say \\\"no\\\" to\\tpanics\\n\"}"
        );
    }

    #[test]
    fn renders_like_a_compiler_diagnostic() {
        let d = Diagnostic {
            rule: "no-panic-in-lib",
            severity: Severity::Error,
            path: "crates/core/src/heap.rs".into(),
            line: 32,
            col: 14,
            message: "`.expect(..)` in library code".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/heap.rs:32:14: error[no-panic-in-lib]: `.expect(..)` in library code"
        );
    }
}
